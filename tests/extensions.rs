//! Integration tests for the extension modules: self-timed variants,
//! gossiping, the Decay baseline, and tracing — exercised through the
//! facade exactly as a downstream user would.

use randcast::core::experiment::run_success_trials;
use randcast::core::gossip::GossipPlan;
use randcast::prelude::*;

#[test]
fn self_timed_omission_beats_indexed_on_shallow_graphs() {
    let g = generators::balanced_tree(2, 5); // n = 63, D = 5
    let p = 0.5;
    let st = SelfTimedPlan::omission(&g, g.node(0), p);
    let indexed = SimplePlan::omission_with_p(&g, g.node(0), p);
    assert!(st.horizon() < indexed.total_rounds() / 5);

    let est = run_success_trials(60, SeedSequence::new(1), |seed| {
        st.run(&g, FaultConfig::omission(p), SilentMpAdversary, seed, true)
            .all_correct(true)
    });
    assert!(est.rate() >= 0.95, "rate {}", est.rate());
}

#[test]
fn self_timed_sliding_majority_is_adversary_robust() {
    let g = generators::grid(3, 4);
    let p = 0.3;
    let plan = SelfTimedPlan::malicious(&g, g.node(0), p);
    let est = run_success_trials(60, SeedSequence::new(2), |seed| {
        plan.run(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, true)
            .all_correct(true)
    });
    assert!(est.rate() >= 0.95, "rate {}", est.rate());
}

#[test]
fn gossip_completes_on_the_zoo() {
    for g in [
        generators::wheel(10),
        generators::lollipop(5, 6),
        generators::double_star(4, 4),
        generators::circulant(12, &[1, 3]),
    ] {
        let p = 0.4;
        let plan = GossipPlan::new(&g, p);
        let est = run_success_trials(40, SeedSequence::new(3), |seed| {
            plan.run(&g, FaultConfig::omission(p), seed)
                .complete(g.node_count())
        });
        assert!(
            est.rate() >= 0.9,
            "n={}: rate {}",
            g.node_count(),
            est.rate()
        );
    }
}

#[test]
fn decay_baseline_completes_under_omission() {
    let g = generators::grid(5, 5);
    let d = traversal::radius_from(&g, g.node(0));
    let mut cfg = DecayConfig::classical(g.node_count(), d);
    cfg.epochs *= 2;
    let est = run_success_trials(60, SeedSequence::new(4), |seed| {
        run_decay(&g, g.node(0), cfg, FaultConfig::omission(0.4), seed).complete()
    });
    assert!(est.rate() >= 0.9, "rate {}", est.rate());
}

#[test]
fn tracing_observes_a_full_broadcast() {
    // Wrap a trivial flooding automaton and check the log sees every
    // delivery of the fault-free execution.
    struct Flood {
        informed: bool,
    }
    impl MpNode for Flood {
        type Msg = bool;
        fn send(&mut self, _round: usize) -> Outgoing<bool> {
            if self.informed {
                Outgoing::Broadcast(true)
            } else {
                Outgoing::Silent
            }
        }
        fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {
            self.informed = true;
        }
    }

    let g = generators::path(3);
    let log = TraceLog::new();
    let mut net = MpNetwork::new(&g, FaultConfig::fault_free(), 0, |v| {
        Traced::new(
            v,
            Flood {
                informed: v.index() == 0,
            },
            log.clone(),
        )
    });
    net.run(3);
    let recvs = log
        .events()
        .into_iter()
        .filter(|e| matches!(e, TraceEvent::MpRecv { .. }))
        .count();
    // Round 0: 0->1. Round 1: 0->1, 1->0, 1->2. Round 2: six deliveries
    // (all informed prefix flooding both directions along the path).
    assert!(recvs >= 6);
    assert!(net.node(g.node(3)).inner().informed);
}

#[test]
fn new_generators_compose_with_protocols() {
    for g in [
        generators::wheel(8),
        generators::lollipop(4, 5),
        generators::double_star(3, 6),
        generators::circulant(11, &[1, 2]),
    ] {
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 1, VoteMode::Any);
        let out = plan.run_mp(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, true);
        assert!(out.all_correct(true), "n={}", g.node_count());
        let sched = greedy_schedule(&g, g.node(0));
        assert!(
            sched.validate(&g, g.node(0)).is_ok(),
            "n={}",
            g.node_count()
        );
    }
}
