//! Workspace-level coverage for the paper's feasibility predicates
//! (Theorems 2.1–2.4), exercised through the `randcast::prelude`
//! re-exports exactly as downstream users see them.

use randcast::prelude::*;

/// `radio_threshold(Δ)` must solve `p = (1 − p)^{Δ+1}` to 1e-9 across a
/// wide degree sweep, including degenerate and large Δ.
#[test]
fn radio_threshold_solves_fixed_point_to_1e9() {
    for delta in (0usize..=64).chain([100, 200, 500]) {
        let t = radio_threshold(delta);
        let residual = (t - (1.0 - t).powi(delta as i32 + 1)).abs();
        assert!(residual < 1e-9, "Δ={delta}: residual {residual}");
        assert!(
            (0.0..=0.5).contains(&t),
            "Δ={delta}: threshold {t} out of (0, 1/2]"
        );
    }
}

/// The threshold strictly decreases in Δ: denser neighborhoods give the
/// jamming adversary strictly more leverage.
#[test]
fn radio_threshold_strictly_decreases_in_degree() {
    let mut last = radio_threshold(0);
    assert!((last - 0.5).abs() < 1e-9, "p*(0) must be exactly 1/2");
    for delta in 1usize..=128 {
        let t = radio_threshold(delta);
        assert!(t < last, "Δ={delta}: {t} !< {last}");
        last = t;
    }
    // And it vanishes asymptotically: well below 5% by Δ = 64.
    assert!(radio_threshold(64) < 0.05);
}

/// Known closed forms anchor the bisection: p*(1) = (3 − √5)/2.
#[test]
fn radio_threshold_known_closed_form() {
    let golden = (3.0 - 5.0f64.sqrt()) / 2.0;
    assert!((radio_threshold(1) - golden).abs() < 1e-9);
}

/// Theorem 2.1 boundaries: omission broadcast is feasible for every
/// p ∈ [0, 1) and at no other probability.
#[test]
fn omission_feasible_boundary_cases() {
    assert!(omission_feasible(0.0));
    assert!(omission_feasible(0.5));
    assert!(omission_feasible(1.0 - 1e-12));
    assert!(!omission_feasible(1.0));
    assert!(!omission_feasible(1.5));
    assert!(!omission_feasible(-1e-12));
    assert!(!omission_feasible(f64::NAN));
    assert!(!omission_feasible(f64::INFINITY));
}

/// Theorems 2.2–2.3 boundaries: malicious message-passing broadcast is
/// feasible iff p < 1/2, with the boundary itself infeasible.
#[test]
fn malicious_mp_feasible_boundary_cases() {
    assert!(malicious_mp_feasible(0.0));
    assert!(malicious_mp_feasible(0.25));
    assert!(malicious_mp_feasible(0.5 - 1e-12));
    assert!(!malicious_mp_feasible(0.5));
    assert!(!malicious_mp_feasible(0.75));
    assert!(!malicious_mp_feasible(-0.1));
    assert!(!malicious_mp_feasible(f64::NAN));
}

/// The radio predicate agrees with its own threshold on both sides, for
/// every degree, and Δ = 0 coincides with the MP malicious threshold.
#[test]
fn malicious_radio_feasible_brackets_threshold() {
    for delta in [0usize, 1, 2, 5, 10, 40] {
        let t = radio_threshold(delta);
        assert!(malicious_radio_feasible(t - 1e-6, delta), "Δ={delta}");
        assert!(!malicious_radio_feasible(t + 1e-6, delta), "Δ={delta}");
    }
    assert!(malicious_radio_feasible(0.499, 0));
    assert!(!malicious_radio_feasible(0.501, 0));
    assert!(!malicious_radio_feasible(f64::NAN, 3));
}
