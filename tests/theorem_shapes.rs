//! Integration tests asserting the *shapes* of the paper's quantitative
//! claims — who wins, where thresholds fall — with fixed seeds and
//! generous statistical tolerances so they are deterministic.

use randcast::core::experiment::run_success_trials;
use randcast::core::lower_bound::{min_reps_for_target, LayerSchedule};
use randcast::core::radio_sched::optimal_broadcast_time;
use randcast::prelude::*;

/// Theorem 2.2 vs 2.3: success is high below p = 1/2 and pinned at 1/2
/// at the threshold (the phase transition).
#[test]
fn mp_malicious_phase_transition_at_half() {
    let g = generators::path(6);
    let below = {
        let p = 0.35;
        let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
        run_success_trials(100, SeedSequence::new(1), |seed| {
            plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, true)
                .all_correct(true)
        })
        .rate()
    };
    let at = run_success_trials(400, SeedSequence::new(2), |seed| {
        run_two_node_majority(101, 0.5, seed % 2 == 0, seed)
    })
    .rate();
    assert!(below >= 0.95, "below threshold: {below}");
    assert!((at - 0.5).abs() < 0.08, "at threshold: {at}");
}

/// Theorem 2.4: on the star, the same algorithm passes below p*(Δ) and
/// collapses above it (run at matched round budgets).
#[test]
fn radio_malicious_phase_transition_at_p_star() {
    let delta = 4usize;
    let g = generators::star(delta);
    let p_star = radio_threshold(delta);

    let run_at = |p: f64, m: usize, seeds: u64| {
        let plan = SimplePlan::with_phase_len(&g, g.node(0), m, VoteMode::Majority);
        run_success_trials(100, SeedSequence::new(seeds), |seed| {
            plan.run_radio(
                &g,
                FaultConfig::malicious(p),
                LieOrJamAdversary::new(true),
                seed,
                true,
            )
            .all_correct(true)
        })
        .rate()
    };

    let below = run_at(p_star * 0.4, 101, 3);
    let above = run_at((p_star * 1.8).min(0.9), 101, 4);
    assert!(below >= 0.9, "below p*: {below}");
    assert!(above <= 0.6, "above p*: {above}");
}

/// Theorem 3.1 shape: flooding time is close to D/(1-p) + O(log n), far
/// below the naive n·m.
#[test]
fn flood_time_beats_naive_by_orders_of_magnitude() {
    let p = 0.4;

    // On a path (D = n) the separation is the log-n factor of the naive
    // phase length.
    let g = generators::path(100);
    let flood = FloodPlan::new(&g, g.node(0), p);
    let naive = SimplePlan::omission_with_p(&g, g.node(0), p);
    assert!(flood.horizon() * 2 < naive.total_rounds());

    // On a shallow graph (star: D = 1) the separation is nearly the full
    // n factor: O(log n) vs O(n log n).
    let star = generators::star(256);
    let flood = FloodPlan::new(&star, star.node(0), p);
    let naive = SimplePlan::omission_with_p(&star, star.node(0), p);
    assert!(flood.horizon() * 10 < naive.total_rounds());

    // And the O(D + log n) horizon suffices.
    let est = run_success_trials(60, SeedSequence::new(5), |seed| {
        flood.run(&star, FaultConfig::omission(p), seed).complete()
    });
    assert!(est.rate() >= 0.95, "rate {}", est.rate());
}

/// Theorem 3.1 lower-bound side: a horizon below D can never complete,
/// and a horizon below ~log n fails with noticeable probability even on
/// shallow graphs.
#[test]
fn flood_lower_bounds_bite() {
    // D bound: deterministic.
    let g = generators::path(30);
    let short = FloodPlan::with_horizon(&g, g.node(0), 29, FloodVariant::Tree);
    assert!(!short.run(&g, FaultConfig::fault_free(), 0).complete());

    // log n bound: with only 3 rounds at p = 0.7, the source's
    // transmitter silences everything with probability p³ ≈ 0.34 — far
    // above the almost-safety budget 1/n. (Note the per-*transmitter*
    // fault model: when the star center fails, all leaves miss together.)
    let star = generators::star(64);
    let tiny = FloodPlan::with_horizon(&star, star.node(0), 3, FloodVariant::Tree);
    let est = run_success_trials(400, SeedSequence::new(6), |seed| {
        tiny.run(&star, FaultConfig::omission(0.7), seed).complete()
    });
    let expected = 1.0 - 0.7f64.powi(3);
    assert!(
        (est.rate() - expected).abs() < 0.06,
        "rate {} vs analytic {expected}",
        est.rate()
    );
}

/// Theorem 3.2 shape: Kučera time stays linear in the line length at
/// fixed per-branch error.
#[test]
fn kucera_time_is_linear_in_length() {
    let p = 0.3;
    let t64 = KuceraPlan::for_line(64, p, 1e-6).expect("feasible").time() as f64;
    let t512 = KuceraPlan::for_line(512, p, 1e-6).expect("feasible").time() as f64;
    let ratio = (t512 / 512.0) / (t64 / 64.0);
    assert!(ratio < 2.5, "per-hop time ratio {ratio}");
}

/// Lemma 3.3: opt(G(m)) = m + 1, certified exhaustively for m ≤ 3 and by
/// the explicit schedule above.
#[test]
fn gm_optimum_is_m_plus_one() {
    for m in 1..=3 {
        let g = generators::lower_bound_graph(m);
        assert_eq!(optimal_broadcast_time(&g, g.node(0), m), None, "m={m}");
        assert_eq!(
            optimal_broadcast_time(&g, g.node(0), m + 1),
            Some(m + 1),
            "m={m}"
        );
    }
}

/// Theorem 3.3 shape: the minimal almost-safe τ on G(m), relative to
/// opt + log n, grows with m.
#[test]
fn gm_almost_safe_gap_grows() {
    let p = 0.5;
    let ratio = |m: usize| {
        let n = (1usize << m) + m;
        let (_, rounds) =
            min_reps_for_target(|r| LayerSchedule::singletons(m, r), p, 1.0 / n as f64);
        (rounds + 1) as f64 / ((m + 1) as f64 + (n as f64).log2())
    };
    let small = ratio(4);
    let large = ratio(12);
    assert!(
        large > small * 1.2,
        "gap must grow: small={small} large={large}"
    );
}

/// Theorem 3.4 shape: expanded-schedule length is |A|·m = O(opt · log n),
/// and it grows like log n for fixed topology class.
#[test]
fn expanded_schedule_length_scales_like_opt_log_n() {
    let p = 0.5;
    let small = {
        let g = generators::path(16);
        let base = path_schedule(16);
        ExpandedPlan::omission(&g, g.node(0), &base, p).total_rounds() as f64 / 16.0
    };
    let large = {
        let g = generators::path(256);
        let base = path_schedule(256);
        ExpandedPlan::omission(&g, g.node(0), &base, p).total_rounds() as f64 / 256.0
    };
    // Per-opt cost grows like log n: ratio ≈ log(256·?)/log(16·?) ≈ 2, not 16.
    let ratio = large / small;
    assert!((1.2..4.0).contains(&ratio), "ratio {ratio}");
}

/// E3 vs E4 contrast: at p = 0.75, full malicious two-node is pinned at
/// 1/2 while the limited-malicious datalink protocol exceeds 0.95.
#[test]
fn limited_vs_full_malicious_separation() {
    let p = 0.75;
    let full = run_success_trials(400, SeedSequence::new(7), |seed| {
        run_two_node_majority(101, p, seed % 2 == 0, seed)
    })
    .rate();
    let limited = run_success_trials(400, SeedSequence::new(8), |seed| {
        run_hello(150, p, seed % 2 == 0, seed)
    })
    .rate();
    assert!((full - 0.5).abs() < 0.08, "full: {full}");
    assert!(limited > 0.95, "limited: {limited}");
}
