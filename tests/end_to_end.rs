//! End-to-end integration tests: every algorithm on every graph family,
//! exercised through the facade crate's public API exactly as a
//! downstream user would.

use randcast::core::experiment::run_success_trials;
use randcast::prelude::*;

/// Small graph zoo shared by the tests.
fn zoo() -> Vec<(&'static str, Graph)> {
    let mut seq = SeedSequence::new(7);
    let mut rng = seq.nth_rng(0);
    seq = seq.child(1);
    let mut rng2 = seq.nth_rng(0);
    vec![
        ("path", generators::path(12)),
        ("cycle", generators::cycle(13)),
        ("star", generators::star(9)),
        ("grid", generators::grid(4, 5)),
        ("torus", generators::torus(4, 4)),
        ("hypercube", generators::hypercube(4)),
        ("tree", generators::balanced_tree(3, 2)),
        ("broom", generators::broom(6, 5)),
        ("caterpillar", generators::caterpillar(5, 2)),
        ("binomial", generators::binomial_tree(4)),
        ("random-tree", generators::random_tree(25, &mut rng)),
        ("gnp", generators::gnp_connected(20, 0.15, &mut rng2)),
        ("lower-bound", generators::lower_bound_graph(4)),
    ]
}

#[test]
fn simple_omission_mp_is_almost_safe_on_all_families() {
    for (name, g) in zoo() {
        let p = 0.5;
        let plan = SimplePlan::omission_with_p(&g, g.node(0), p);
        let est = run_success_trials(60, SeedSequence::new(1), |seed| {
            plan.run_mp(&g, FaultConfig::omission(p), SilentMpAdversary, seed, true)
                .all_correct(true)
        });
        assert!(
            est.rate() >= 1.0 - 2.0 / g.node_count() as f64 - 0.05,
            "{name}: rate {}",
            est.rate()
        );
    }
}

#[test]
fn simple_omission_radio_is_almost_safe_on_all_families() {
    for (name, g) in zoo() {
        let p = 0.5;
        let plan = SimplePlan::omission_with_p(&g, g.node(0), p);
        let est = run_success_trials(60, SeedSequence::new(2), |seed| {
            plan.run_radio(
                &g,
                FaultConfig::omission(p),
                SilentRadioAdversary,
                seed,
                true,
            )
            .all_correct(true)
        });
        assert!(
            est.rate() >= 1.0 - 2.0 / g.node_count() as f64 - 0.05,
            "{name}: rate {}",
            est.rate()
        );
    }
}

#[test]
fn simple_malicious_mp_survives_flip_on_all_families() {
    for (name, g) in zoo() {
        let p = 0.3;
        let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
        let est = run_success_trials(60, SeedSequence::new(3), |seed| {
            plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, true)
                .all_correct(true)
        });
        assert!(est.rate() >= 0.9, "{name}: rate {}", est.rate());
    }
}

#[test]
fn flood_completes_within_horizon_on_all_families() {
    for (name, g) in zoo() {
        let p = 0.4;
        let plan = FloodPlan::new(&g, g.node(0), p);
        let est = run_success_trials(60, SeedSequence::new(4), |seed| {
            plan.run(&g, FaultConfig::omission(p), seed).complete()
        });
        assert!(est.rate() >= 0.95, "{name}: rate {}", est.rate());
    }
}

#[test]
fn kucera_broadcast_succeeds_on_all_families() {
    for (name, g) in zoo() {
        let p = 0.35;
        let kb = KuceraBroadcast::new(&g, g.node(0), p).expect("p < 1/2 is feasible");
        let est = run_success_trials(40, SeedSequence::new(5), |seed| {
            kb.run(&g, p, FailureBehavior::Flip, seed, true)
                .all_correct(true)
        });
        assert!(est.rate() >= 0.9, "{name}: rate {}", est.rate());
    }
}

#[test]
fn expanded_radio_omission_succeeds_on_all_families() {
    for (name, g) in zoo() {
        let p = 0.4;
        let base = greedy_schedule(&g, g.node(0));
        base.validate(&g, g.node(0)).expect(name);
        let plan = ExpandedPlan::omission(&g, g.node(0), &base, p);
        let est = run_success_trials(60, SeedSequence::new(6), |seed| {
            plan.run(
                &g,
                FaultConfig::omission(p),
                SilentRadioAdversary,
                seed,
                true,
            )
            .all_correct(true)
        });
        assert!(est.rate() >= 0.9, "{name}: rate {}", est.rate());
    }
}

#[test]
fn expanded_radio_malicious_survives_lie_or_jam() {
    for (name, g) in zoo() {
        let p_star = radio_threshold(g.max_degree());
        let p = p_star * 0.3;
        let base = greedy_schedule(&g, g.node(0));
        let plan = ExpandedPlan::malicious(&g, g.node(0), &base, p);
        let est = run_success_trials(40, SeedSequence::new(7), |seed| {
            plan.run(
                &g,
                FaultConfig::malicious(p),
                LieOrJamAdversary::new(true),
                seed,
                true,
            )
            .all_correct(true)
        });
        assert!(est.rate() >= 0.85, "{name}: rate {}", est.rate());
    }
}

#[test]
fn feasibility_predicates_match_thresholds() {
    // The three regimes agree with the paper's table of results.
    assert!(omission_feasible(0.99));
    assert!(malicious_mp_feasible(0.49));
    assert!(!malicious_mp_feasible(0.5));
    for delta in [1usize, 4, 16] {
        let t = radio_threshold(delta);
        assert!(malicious_radio_feasible(t * 0.99, delta));
        assert!(!malicious_radio_feasible(t * 1.01, delta));
    }
}

#[test]
fn fault_free_everything_succeeds_deterministically() {
    for (name, g) in zoo() {
        let source = g.node(0);
        let plan = SimplePlan::with_phase_len(&g, source, 1, VoteMode::Any);
        assert!(
            plan.run_mp(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, true)
                .all_correct(true),
            "{name} mp"
        );
        assert!(
            plan.run_radio(&g, FaultConfig::fault_free(), SilentRadioAdversary, 0, true)
                .all_correct(true),
            "{name} radio"
        );
        let flood = FloodPlan::new(&g, source, 0.0);
        assert!(
            flood.run(&g, FaultConfig::fault_free(), 0).complete(),
            "{name} flood"
        );
    }
}

#[test]
fn both_source_bits_are_broadcast_faithfully() {
    let g = generators::grid(4, 4);
    let p = 0.3;
    let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
    for bit in [false, true] {
        let est = run_success_trials(40, SeedSequence::new(8), |seed| {
            plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, bit)
                .all_correct(bit)
        });
        assert!(est.rate() >= 0.9, "bit={bit}: rate {}", est.rate());
    }
}
