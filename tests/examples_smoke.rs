//! Compile-and-run smoke coverage for every documented quickstart in
//! `examples/`, so the examples can't silently rot.
//!
//! `cargo test` already compiles the examples; this suite additionally
//! executes each one and checks it exits cleanly with real output. The
//! examples are always run from the **release** profile: two of them do
//! real Monte-Carlo sweeps and take minutes unoptimized but seconds
//! optimized (and tier-1 builds release first, so the artifacts are
//! warm).

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: [&str; 5] = [
    "quickstart",
    "sensor_grid",
    "noisy_datalink",
    "hostile_backbone",
    "radio_lower_bound",
];

/// `target/release/examples`, derived from the test binary's own path so
/// CARGO_TARGET_DIR overrides are respected.
fn release_examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // <file>
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.pop(); // debug or release
    dir.join("release").join("examples")
}

#[test]
fn all_examples_run_cleanly() {
    let status = Command::new(env!("CARGO"))
        .args(["build", "--examples", "--release", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("spawn cargo build --examples --release");
    assert!(status.success(), "building the examples failed");

    let dir = release_examples_dir();
    for name in EXAMPLES {
        let bin = dir.join(name);
        let output = Command::new(&bin)
            .output()
            .unwrap_or_else(|e| panic!("running example {name} ({}): {e}", bin.display()));
        assert!(
            output.status.success(),
            "example {name} exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.lines().count() >= 3,
            "example {name} produced implausibly little output:\n{stdout}"
        );
    }
}
