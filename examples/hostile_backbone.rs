//! Scenario: command dissemination over a backbone with compromised
//! switches.
//!
//! ```sh
//! cargo run --release --example hostile_backbone
//! ```
//!
//! A command center must push an order across a deep hierarchical
//! backbone (a ternary tree). Some switching hardware is compromised: in
//! any time slot, each node's transmitter is hijacked with probability
//! `p` and then behaves arbitrarily (the paper's malicious transmission
//! failures — here, the flip adversary, the binding attack for majority
//! voting).
//!
//! The demo sweeps `p` across the Theorem 2.2/2.3 threshold `p = 1/2`
//! and shows the phase transition; it also contrasts the `O(D + log^α n)`
//! Kučera pipeline (Theorem 3.2) with the naive `n·m`-round
//! `Simple-Malicious` at equal safety.

use randcast::core::experiment::run_success_trials;
use randcast::prelude::*;
use randcast::stats::table::{fmt_prob, Table};

fn main() {
    let g = generators::balanced_tree(3, 4); // 121 nodes, depth 4
    let source = g.node(0);
    let n = g.node_count();
    let d = traversal::radius_from(&g, source);
    let trials = 100;
    let bit = true;

    println!("backbone: ternary tree, n = {n}, D = {d}\n");

    // --- The feasibility cliff at p = 1/2 (Theorems 2.2 / 2.3) ---------
    let mut table = Table::new(["p", "feasible?", "success (Simple-Malicious)"]);
    for p in [0.30, 0.40, 0.45, 0.50, 0.55] {
        let rate = if malicious_mp_feasible(p) {
            let plan = SimplePlan::malicious_mp(&g, source, p);
            // Near-threshold phase lengths are huge; keep the demo quick.
            let cell_trials = if plan.total_rounds() > 60_000 {
                25
            } else {
                trials
            };
            let est = run_success_trials(cell_trials, SeedSequence::new(7), |seed| {
                plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, bit)
                    .all_correct(bit)
            });
            est.rate()
        } else {
            // Infeasible regime: even two nodes cannot do better than a
            // coin flip (Theorem 2.3); demonstrate on the first link.
            // Cheap cells: use more trials so the ≈ 1/2 signal is clear.
            let est = run_success_trials(4 * trials, SeedSequence::new(8), |seed| {
                run_two_node_majority(301, p, bit, seed)
            });
            est.rate()
        };
        table.row([
            format!("{p:.2}"),
            malicious_mp_feasible(p).to_string(),
            fmt_prob(rate),
        ]);
    }
    println!("{}", table.render());

    // --- Fast vs naive in the feasible regime ---------------------------
    let p = 0.35;
    let naive = SimplePlan::malicious_mp(&g, source, p);
    let fast = KuceraBroadcast::new(&g, source, p).expect("p < 1/2 is feasible");
    let naive_est = run_success_trials(trials, SeedSequence::new(9), |seed| {
        naive
            .run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, bit)
            .all_correct(bit)
    });
    let fast_est = run_success_trials(trials, SeedSequence::new(10), |seed| {
        fast.run(&g, p, FailureBehavior::Flip, seed, bit)
            .all_correct(bit)
    });
    println!(
        "at p = {p}: naive Simple-Malicious: {} rounds, success {};",
        naive.total_rounds(),
        fmt_prob(naive_est.rate()),
    );
    println!(
        "          Kučera pipeline:        {} rounds, success {} \
         (O(D + polylog n) vs O(n log n))",
        fast.time(),
        fmt_prob(fast_est.rate()),
    );
}
