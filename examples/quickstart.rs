//! Quickstart: broadcast one bit across a lossy network, four ways.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the four scenarios of the paper on one small grid:
//! message passing vs radio × omission vs malicious failures.

use randcast::prelude::*;

fn main() {
    let g = generators::grid(4, 4);
    let source = g.node(0);
    let n = g.node_count();
    let bit = true;

    println!("network: 4x4 grid, n = {n}, Δ = {}", g.max_degree());
    println!(
        "radius from source D = {}\n",
        traversal::radius_from(&g, source)
    );

    // --- 1. Message passing + omission (Theorem 2.1 / 3.1) -------------
    let p = 0.4;
    let flood = FloodPlan::new(&g, source, p);
    let out = flood.run(&g, FaultConfig::omission(p), 1);
    println!(
        "MP + omission   (p = {p}): flooding informed {}/{} nodes in ≤ {} rounds \
         (completed at round {:?})",
        out.informed_count(),
        n,
        flood.horizon(),
        out.completion_round()
    );

    // --- 2. Message passing + malicious (Theorem 2.2) ------------------
    let p = 0.3; // feasible: p < 1/2
    assert!(malicious_mp_feasible(p));
    let plan = SimplePlan::malicious_mp(&g, source, p);
    let out = plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, 2, bit);
    println!(
        "MP + malicious  (p = {p}): Simple-Malicious delivered the bit to {}/{} nodes \
         in {} rounds (phase length m = {})",
        out.correct_count(bit),
        n,
        out.rounds,
        plan.phase_len()
    );

    // --- 3. Radio + omission (Theorem 3.4) -----------------------------
    let p = 0.4;
    let base = greedy_schedule(&g, source);
    let expanded = ExpandedPlan::omission(&g, source, &base, p);
    let out = expanded.run(&g, FaultConfig::omission(p), SilentRadioAdversary, 3, bit);
    println!(
        "radio + omission (p = {p}): Omission-Radio over a {}-round fault-free schedule, \
         expanded ×{} -> {}/{} correct",
        base.len(),
        expanded.phase_len(),
        out.correct_count(bit),
        n
    );

    // --- 4. Radio + malicious (Theorem 2.4) ----------------------------
    // Feasibility depends on the maximum degree: p must beat p*(Δ).
    let p_star = radio_threshold(g.max_degree());
    let p = (p_star * 0.4 * 100.0).round() / 100.0;
    assert!(malicious_radio_feasible(p, g.max_degree()));
    let plan = SimplePlan::malicious_radio(&g, source, p);
    let out = plan.run_radio(
        &g,
        FaultConfig::malicious(p),
        LieOrJamAdversary::new(bit),
        4,
        bit,
    );
    println!(
        "radio + malicious (p = {p}, p*(Δ) = {p_star:.4}): Simple-Malicious under the \
         lie-or-jam adversary -> {}/{} correct in {} rounds",
        out.correct_count(bit),
        n,
        out.rounds
    );
}
