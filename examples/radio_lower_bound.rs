//! Explorer for the radio lower-bound graph `G(m)` (Theorem 3.3).
//!
//! ```sh
//! cargo run --release --example radio_lower_bound
//! ```
//!
//! `G(m)` broadcasts in `opt = m + 1` fault-free rounds, yet almost-safe
//! broadcast needs `Ω(log n · log log n / log log log n)` rounds — so no
//! radio algorithm achieves `O(opt + log n)` in general. This example
//! builds `G(m)`, certifies `opt` (exhaustively for small `m`), and
//! searches two schedule families for the cheapest almost-safe schedule.

use randcast::core::lower_bound::{
    lemma33_schedule, lower_bound_curve, min_reps_for_target, LayerSchedule,
};
use randcast::core::radio_sched::optimal_broadcast_time;
use randcast::prelude::*;
use randcast::stats::table::{fmt_f2, Table};

fn main() {
    let p = 0.5;

    // --- Lemma 3.3: opt(G(m)) = m + 1 -----------------------------------
    println!("Lemma 3.3 — fault-free optimum on G(m):");
    for m in 1..=3 {
        let g = generators::lower_bound_graph(m);
        let sched = lemma33_schedule(m).to_radio_schedule();
        sched
            .validate(&g, g.node(0))
            .expect("m+1 schedule is valid");
        let opt = optimal_broadcast_time(&g, g.node(0), m + 1).expect("within m+1 rounds");
        println!(
            "  m = {m}: n = {:3}, explicit schedule = {} rounds, brute-force opt = {opt} \
             (no {m}-round schedule exists)",
            g.node_count(),
            sched.len(),
        );
        assert_eq!(opt, m + 1);
    }

    // --- Theorem 3.3: the almost-safe time blow-up ----------------------
    println!("\nTheorem 3.3 — minimal almost-safe rounds on G(m) at p = {p}:");
    let mut table = Table::new([
        "m",
        "n",
        "opt",
        "opt+log2(n)",
        "singleton τ",
        "scale τ",
        "τ/(opt+log n)",
        "τ/LBcurve",
    ]);
    for m in [4usize, 6, 8, 10, 12, 14] {
        let n = (1usize << m) + m;
        let target = 1.0 / n as f64;
        let opt = m + 1;
        let baseline = opt as f64 + (n as f64).log2();

        // Singleton family: b_1..b_m round-robin.
        let (_, singleton_rounds) =
            min_reps_for_target(|r| LayerSchedule::singletons(m, r), p, target);

        // Scale family: random subsets at log m scales.
        let mut seq = SeedSequence::new(42);
        let (_, scale_rounds) = min_reps_for_target(
            |r| {
                let mut rng = seq.nth_rng(r as u64);
                seq = seq.child(r as u64); // fresh subsets per probe
                LayerSchedule::scales(m, r, &mut rng)
            },
            p,
            target,
        );

        let best = singleton_rounds.min(scale_rounds) as f64;
        table.row([
            m.to_string(),
            n.to_string(),
            opt.to_string(),
            fmt_f2(baseline),
            singleton_rounds.to_string(),
            scale_rounds.to_string(),
            fmt_f2(best / baseline),
            fmt_f2(best / lower_bound_curve(n)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "τ/(opt + log n) keeps growing — O(opt + log n) is unattainable —\n\
         while τ/(log n · log log n / log log log n) stays bounded, matching Theorem 3.3."
    );
}
