//! Scenario: one bit over one terrible link.
//!
//! ```sh
//! cargo run --release --example noisy_datalink
//! ```
//!
//! Section 2.2.2 of the paper contrasts two single-link worlds:
//!
//! * **Full malicious** failures (a failure can make the link "speak out
//!   of turn"): for `p ≥ 1/2` no protocol beats a coin flip
//!   (Theorem 2.3). We run the paper's adversary and watch success pin
//!   to 1/2 no matter how many rounds we spend.
//! * **Limited malicious** failures (corrupt/drop only): the even/odd
//!   "hello" timing code delivers the bit for *any* `p < 1`, with error
//!   falling exponentially in the window size `m`.

use randcast::core::datalink::hello_error_bound;
use randcast::core::experiment::run_success_trials;
use randcast::prelude::*;
use randcast::stats::table::{fmt_prob, Table};

fn main() {
    let trials = 1000;

    println!("Theorem 2.3 — full malicious, p ≥ 1/2: success is pinned at 1/2");
    let mut table = Table::new(["p", "rounds", "success"]);
    for (p, rounds) in [(0.5, 51), (0.5, 501), (0.7, 501), (0.9, 2001)] {
        let est = run_success_trials(trials, SeedSequence::new(1), |seed| {
            run_two_node_majority(rounds, p, seed % 2 == 0, seed)
        });
        table.row([format!("{p}"), rounds.to_string(), fmt_prob(est.rate())]);
    }
    println!("{}", table.render());

    println!("§2.2.2 — limited malicious: the even/odd timing code works for any p < 1");
    let mut table = Table::new(["p", "m", "success", "analytic error (bit 0)"]);
    for (p, m) in [(0.5, 10), (0.8, 60), (0.9, 400), (0.95, 2000)] {
        let est = run_success_trials(trials, SeedSequence::new(2), |seed| {
            run_hello(m, p, seed % 2 == 0, seed)
        });
        table.row([
            format!("{p}"),
            m.to_string(),
            fmt_prob(est.rate()),
            format!("{:.2e}", hello_error_bound(m, p)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The out-of-turn capability is exactly what separates impossibility\n\
         from an arbitrarily reliable link."
    );
}
