//! Scenario: firmware rollout over a wireless sensor grid.
//!
//! ```sh
//! cargo run --release --example sensor_grid
//! ```
//!
//! A 12×12 grid of radio sensors must learn a one-bit command from the
//! gateway in the corner. Every sensor's transmitter glitches
//! independently with probability `p` each slot (interference, duty
//! cycling). This is exactly the paper's radio model; we compare
//!
//! * the naive `Simple-Omission` schedule (`n · m` slots, Theorem 2.1),
//! * `Omission-Radio` over a greedy fault-free schedule
//!   (`opt_greedy · m` slots, Theorem 3.4),
//!
//! and report measured success rates against the almost-safety target
//! `1 − 1/n`.

use randcast::core::experiment::{run_success_trials, AlmostSafeRow};
use randcast::prelude::*;
use randcast::stats::table::{fmt_prob, Table};

fn main() {
    let g = generators::grid(12, 12);
    let source = g.node(0);
    let n = g.node_count();
    let trials = 300;
    let bit = true;

    println!(
        "sensor grid: n = {n}, D = {}, Δ = {}, almost-safe target {:.4}\n",
        traversal::radius_from(&g, source),
        g.max_degree(),
        1.0 - 1.0 / n as f64
    );

    let base = greedy_schedule(&g, source);
    println!("greedy fault-free schedule: {} slots\n", base.len());

    let mut table = Table::new(["p", "algorithm", "slots", "success", "target", "verdict"]);
    for p in [0.2, 0.5, 0.8] {
        let naive = SimplePlan::omission_with_p(&g, source, p);
        let est = run_success_trials(trials, SeedSequence::new(100), |seed| {
            naive
                .run_radio(
                    &g,
                    FaultConfig::omission(p),
                    SilentRadioAdversary,
                    seed,
                    bit,
                )
                .all_correct(bit)
        });
        let row = AlmostSafeRow::judge(est, n);
        table.row([
            format!("{p}"),
            "Simple-Omission".into(),
            naive.total_rounds().to_string(),
            fmt_prob(est.rate()),
            fmt_prob(row.target()),
            row.label(),
        ]);

        let robust = ExpandedPlan::omission(&g, source, &base, p);
        let est = run_success_trials(trials, SeedSequence::new(200), |seed| {
            robust
                .run(
                    &g,
                    FaultConfig::omission(p),
                    SilentRadioAdversary,
                    seed,
                    bit,
                )
                .all_correct(bit)
        });
        let row = AlmostSafeRow::judge(est, n);
        table.row([
            format!("{p}"),
            "Omission-Radio".into(),
            robust.total_rounds().to_string(),
            fmt_prob(est.rate()),
            fmt_prob(row.target()),
            row.label(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Omission-Radio reaches the same safety with a fraction of the slots —\n\
         the O(opt·log n) vs O(n·log n) separation of Theorem 3.4."
    );
}
