//! Shared plumbing for the reproduction experiment binaries (`exp_e1` …
//! `exp_e10`) and the Criterion benches.
//!
//! Each binary regenerates one result of Pelc & Peleg (PODC'05 / TCS'07);
//! the mapping from binaries to theorems is the per-experiment index in
//! `DESIGN.md`. Every binary accepts the shared sweep CLI parsed by
//! [`Cli`]:
//!
//! ```text
//! --quick        reduced trial counts and sweep extents (smoke runs)
//! --trials N     Monte-Carlo trials per cell (overrides --quick's count)
//! --threads N    worker threads (default: one per CPU)
//! --shards K     frontier shards per trial (default: auto by graph size)
//! --seed S       root seed; all cell/trial randomness derives from it
//! --json PATH    also write the structured JSON report to PATH
//! ```
//!
//! Unknown flags are rejected with usage text — a typo like `--qiuck`
//! aborts instead of silently running the full sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_core::sweep::{default_threads, CellResult, Sweep, SweepResult};
use randcast_engine::fault::FaultConfig;
use randcast_stats::quantile::QuantileSummary;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_f2, Table};

/// Root seed used when `--seed` is not given.
pub const DEFAULT_SEED: u64 = 2005;

/// Trials per cell without `--quick` / `--trials`.
pub const DEFAULT_TRIALS: usize = 400;

/// Trials per cell under `--quick`.
pub const QUICK_TRIALS: usize = 60;

/// CLI usage text shared by all experiment binaries.
pub const USAGE: &str =
    "usage: exp_* [--quick] [--trials N] [--threads N] [--shards K] [--store ram|disk] [--seed S] [--json PATH]

  --quick        reduced trial counts and sweep extents (smoke runs)
  --trials N     Monte-Carlo trials per table cell (default 400; 60 with --quick)
  --threads N    worker threads for the sweep driver (default: one per CPU)
  --shards K     frontier shards per batched trial; outcome-neutral
                 (default: auto — monolithic below ~8M nodes)
  --store KIND   shard-store backend for the out-of-core trials of the
                 scale binaries: `disk` (segment files, the default) or
                 `ram` (in-memory split); outcome-neutral
  --prefetch V   `on` (default) overlaps the next segment read with the
                 current shard's compute in the out-of-core trials;
                 `off` loads segments synchronously; outcome-neutral
  --sweep-only   run only the sweep part of binaries with an extra
                 out-of-core part (CI's speedup probe times the sweep
                 without paying for the 10^8 trials)
  --seed S       root seed; every cell and trial derives from it (default 2005)
  --json PATH    also write the structured JSON report to PATH
  --help         print this message";

/// Shard-store backend selected by `--store` for the out-of-core
/// trials of the scale binaries. Ram-vs-Disk is outcome-neutral (the
/// engines pin bit-identity between the two), so the flag only moves
/// the peak-RSS/wall trade-off — and gives CI a lever to diff the two
/// paths' reports byte-for-byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StoreKind {
    /// In-RAM sharded adjacency (`ShardStore::Ram`).
    Ram,
    /// Disk-backed segment files (`ShardStore::Disk`) — the default,
    /// and the only backend that holds the 10⁸ RSS budget.
    #[default]
    Disk,
}

/// Parsed shared CLI for the experiment binaries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cli {
    /// Monte-Carlo trials per table cell.
    pub trials: usize,
    /// Whether `--trials` was given explicitly (an explicit count wins
    /// over per-binary floors/caps — see [`cell_trials`](Self::cell_trials)).
    pub trials_overridden: bool,
    /// Divisor for sweep extents (1 = full, 2 under `--quick`).
    pub scale: usize,
    /// Worker threads for the sweep driver.
    pub threads: usize,
    /// Frontier shards per batched trial (`None` = auto by graph
    /// size). Sharding is outcome-neutral, so this only moves the
    /// peak-RSS/wall trade-off.
    pub shards: Option<usize>,
    /// Shard-store backend for the out-of-core trials of the scale
    /// binaries (`--store ram|disk`; default disk). Outcome-neutral.
    pub store: StoreKind,
    /// Pipelined segment prefetch for the out-of-core trials of the
    /// scale binaries (`--prefetch on|off`; default on). A background
    /// reader overlaps the next segment's read with the current
    /// shard's compute; outcome-neutral either way.
    pub prefetch: bool,
    /// Skip the out-of-core part of binaries that have one
    /// (`--sweep-only`) — CI's multi-thread speedup probe times the
    /// sweep alone.
    pub sweep_only: bool,
    /// Root seed for all randomness.
    pub seed: u64,
    /// Where to write the JSON report, if requested.
    pub json: Option<PathBuf>,
}

/// A rejected command line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CliError {
    /// `--help` was requested.
    Help,
    /// The arguments were invalid; the payload explains why.
    Bad(String),
}

impl Cli {
    /// Parses the given arguments (program name already stripped).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Help`] for `--help`/`-h`, and
    /// [`CliError::Bad`] for unknown flags, missing values, or
    /// malformed numbers.
    pub fn parse<I>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut cli = Cli {
            trials: DEFAULT_TRIALS,
            trials_overridden: false,
            scale: 1,
            threads: default_threads(),
            shards: None,
            store: StoreKind::default(),
            prefetch: true,
            sweep_only: false,
            seed: DEFAULT_SEED,
            json: None,
        };
        let mut explicit_trials = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help),
                "--quick" => {
                    cli.trials = QUICK_TRIALS;
                    cli.scale = 2;
                }
                "--trials" => {
                    let n = parse_value(&arg, args.next())?;
                    if n == 0 {
                        return Err(CliError::Bad("--trials must be positive".into()));
                    }
                    explicit_trials = Some(n);
                }
                "--threads" => {
                    let n: usize = parse_value(&arg, args.next())?;
                    if n == 0 {
                        return Err(CliError::Bad("--threads must be positive".into()));
                    }
                    cli.threads = n;
                }
                "--shards" => {
                    let k: usize = parse_value(&arg, args.next())?;
                    if k == 0 {
                        return Err(CliError::Bad("--shards must be positive".into()));
                    }
                    cli.shards = Some(k);
                }
                "--store" => {
                    let raw = args
                        .next()
                        .ok_or_else(|| CliError::Bad("--store needs a value".into()))?;
                    cli.store = match raw.as_str() {
                        "ram" => StoreKind::Ram,
                        "disk" => StoreKind::Disk,
                        other => {
                            return Err(CliError::Bad(format!(
                                "invalid value `{other}` for --store (expected `ram` or `disk`)"
                            )));
                        }
                    };
                }
                "--prefetch" => {
                    let raw = args
                        .next()
                        .ok_or_else(|| CliError::Bad("--prefetch needs a value".into()))?;
                    cli.prefetch = match raw.as_str() {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(CliError::Bad(format!(
                                "invalid value `{other}` for --prefetch (expected `on` or `off`)"
                            )));
                        }
                    };
                }
                "--sweep-only" => cli.sweep_only = true,
                "--seed" => cli.seed = parse_value(&arg, args.next())?,
                "--json" => {
                    let path = args
                        .next()
                        .ok_or_else(|| CliError::Bad("--json needs a path".into()))?;
                    cli.json = Some(PathBuf::from(path));
                }
                other => {
                    return Err(CliError::Bad(format!("unknown argument `{other}`")));
                }
            }
        }
        if let Some(n) = explicit_trials {
            cli.trials = n;
            cli.trials_overridden = true;
        }
        Ok(cli)
    }

    /// The trial count for one cell. Binaries pass their `preferred`
    /// adjustment of [`trials`](Self::trials) (floors for
    /// weak-signal experiments, caps for expensive cells); an explicit
    /// `--trials N` on the command line wins over the adjustment, so
    /// the flag's contract — N trials per cell — always holds.
    #[must_use]
    pub fn cell_trials(&self, preferred: usize) -> usize {
        if self.trials_overridden {
            self.trials
        } else {
            preferred
        }
    }

    /// The root seed sequence all sweeps derive from.
    #[must_use]
    pub fn seeds(&self) -> SeedSequence {
        SeedSequence::new(self.seed)
    }

    /// Creates a [`Sweep`] configured with this CLI's seed root,
    /// thread count, and (if `--shards` was given) a fixed shard
    /// count for every cell's batched trials.
    #[must_use]
    pub fn sweep(&self, experiment: &str) -> Sweep<'static> {
        let mut sweep = Sweep::new(experiment, self.seeds()).with_threads(self.threads);
        if let Some(k) = self.shards {
            sweep = sweep.with_shards(ShardSpec::Fixed(k));
        }
        sweep
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the probe is unavailable
/// (non-Linux platforms, or an unreadable/unparsable status file).
///
/// `VmHWM` is the kernel's high-water mark for resident pages, which
/// is exactly the number the scale experiments budget: it captures the
/// worst moment of the run (graph construction or the widest frontier
/// pass), not the instantaneous RSS at sample time.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kib * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Formats a byte count as GiB with two decimals, or `"-"` when the
/// probe was unavailable.
#[must_use]
pub fn fmt_gib(bytes: Option<u64>) -> String {
    #[allow(clippy::cast_precision_loss)]
    bytes.map_or_else(
        || "-".into(),
        |b| format!("{:.2} GiB", b as f64 / f64::from(1u32 << 30)),
    )
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, CliError> {
    let raw = value.ok_or_else(|| CliError::Bad(format!("{flag} needs a value")))?;
    raw.parse()
        .map_err(|_| CliError::Bad(format!("invalid value `{raw}` for {flag}")))
}

/// Parses `std::env::args()`, printing usage and exiting on `--help` or
/// bad arguments (exit code 2, matching conventional CLI behavior).
#[must_use]
pub fn cli() -> Cli {
    match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(CliError::Help) => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Err(CliError::Bad(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Prints the sweep's tables and writes the JSON report if `--json` was
/// given.
pub fn emit(cli: &Cli, result: &SweepResult) {
    print!("{}", result.report().render_tables());
    write_json(cli, result);
}

/// Writes the JSON report to the `--json` path (creating parent
/// directories), if one was given.
///
/// # Panics
///
/// Panics if the file cannot be written — experiment output is the
/// whole point of the run, so failures must be loud.
pub fn write_json(cli: &Cli, result: &SweepResult) {
    let Some(path) = &cli.json else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
        }
    }
    std::fs::write(path, result.report().to_json())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Populates `sweep` with the shared large-`n` scale grid: for every
/// `n` in `sizes`, the three scalable families — `Gnp` (avg. degree 8),
/// `RandomGeometric` (degree 12, possibly disconnected), and
/// `PreferentialAttachment` (m = 4), construction-seeded from `seeds`
/// — each swept over every `p` in `ps` as omission faults under
/// `algorithm` in `model`. Cells are added declaratively
/// ([`Sweep::try_scenario`]), so the sweep driver's per-`(family,
/// seed)` cache builds each graph **once**, in parallel, and shares it
/// across the family's `p` cells (at `n = 10⁶` the build dominates
/// sweep setup); `trials_for(n)` gives the per-cell trial count.
/// Returns the scenario list parallel to the sweep's cells, for
/// [`scale_table`].
///
/// Used by `exp_scale_flood`, `exp_scale_radio`, and
/// `exp_scale_simple`, which differ only in the algorithm/model,
/// construction seeds, trial scaling, and prose.
///
/// # Panics
///
/// Panics if the (algorithm, model, fault) combination is invalid for
/// the scale families (see `Scenario::validate`).
pub fn scale_sweep(
    sweep: &mut Sweep<'static>,
    sizes: &[usize],
    ps: &[f64],
    seeds: [u64; 3],
    algorithm: Algorithm,
    model: Model,
    trials_for: impl Fn(usize) -> usize,
) -> Vec<Scenario> {
    let mut specs = Vec::new();
    for &n in sizes {
        let families = [
            GraphFamily::Gnp {
                n,
                avg_deg: 8,
                seed: seeds[0],
            },
            GraphFamily::RandomGeometric {
                n,
                deg: 12,
                seed: seeds[1],
            },
            GraphFamily::PreferentialAttachment {
                n,
                m: 4,
                seed: seeds[2],
            },
        ];
        let trials = trials_for(n);
        for family in families {
            for &p in ps {
                let scenario = Scenario {
                    graph: family,
                    algorithm,
                    model,
                    fault: FaultConfig::omission(p),
                    shards: ShardSpec::Auto,
                };
                specs.push(scenario);
                sweep
                    .try_scenario(scenario, trials)
                    .unwrap_or_else(|e| panic!("invalid scale-sweep scenario: {e}"));
            }
        }
    }
    specs
}

/// Renders the shared large-`n` scale-sweep table (one row per cell):
/// completion-time quantiles, mean informed fraction, and the median
/// almost-complete (`1 − 1/n`) time. Used by `exp_scale_flood` and
/// `exp_scale_radio`, whose cells differ only in the algorithm swept.
///
/// `specs` must parallel `cells` (one scenario per swept cell, in
/// order).
#[must_use]
pub fn scale_table(specs: &[Scenario], cells: &[CellResult]) -> Table {
    let mut table = Table::new([
        "graph",
        "n",
        "p",
        "horizon",
        "T p50",
        "T p90",
        "T max",
        "informed frac",
        "almost-T p50",
    ]);
    for (scenario, cell) in specs.iter().zip(cells) {
        let rounds: Vec<f64> = cell.outcomes.iter().filter_map(|o| o.rounds).collect();
        let almost: Vec<f64> = cell
            .outcomes
            .iter()
            .filter_map(|o| o.almost_rounds)
            .collect();
        let rq = QuantileSummary::from_unsorted(&rounds);
        let aq = QuantileSummary::from_unsorted(&almost);
        let fmt_q = |q: Option<QuantileSummary>, pick: fn(QuantileSummary) -> f64| {
            q.map_or_else(|| "-".into(), |s| fmt_f2(pick(s)))
        };
        let param = |key: &str| {
            cell.params
                .iter()
                .find(|(k, _)| k == key)
                .map_or_else(|| "-".into(), |(_, v)| v.clone())
        };
        table.row([
            scenario.graph.label(),
            param("n"),
            format!("{}", scenario.fault.p),
            param("rounds"),
            fmt_q(rq, |s| s.p50),
            fmt_q(rq, |s| s.p90),
            fmt_q(rq, |s| s.max),
            cell.mean_informed_frac
                .map_or_else(|| "-".into(), |f| format!("{f:.5}")),
            fmt_q(aq, |s| s.p50),
        ]);
    }
    table
}

/// Prints the standard experiment header.
pub fn banner(id: &str, claim: &str) {
    println!("== {id} ==");
    println!("{claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        Cli::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_without_args() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.trials, DEFAULT_TRIALS);
        assert_eq!(cli.scale, 1);
        assert_eq!(cli.seed, DEFAULT_SEED);
        assert!(cli.threads >= 1);
        assert_eq!(cli.json, None);
    }

    #[test]
    fn quick_shrinks_effort() {
        let cli = parse(&["--quick"]).unwrap();
        assert_eq!(cli.trials, QUICK_TRIALS);
        assert_eq!(cli.scale, 2);
    }

    #[test]
    fn explicit_trials_override_quick_in_any_order() {
        let a = parse(&["--quick", "--trials", "17"]).unwrap();
        let b = parse(&["--trials", "17", "--quick"]).unwrap();
        assert_eq!(a.trials, 17);
        assert_eq!(b.trials, 17);
        assert_eq!(a.scale, 2);
    }

    #[test]
    fn all_flags_parse() {
        let cli = parse(&[
            "--trials",
            "99",
            "--threads",
            "3",
            "--seed",
            "7",
            "--json",
            "out/x.json",
        ])
        .unwrap();
        assert_eq!(cli.trials, 99);
        assert_eq!(cli.threads, 3);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.json, Some(PathBuf::from("out/x.json")));
    }

    /// Regression: a typo like `--qiuck` must abort with usage, not
    /// silently run the full 400-trial sweep.
    #[test]
    fn unknown_flags_are_rejected() {
        for bad in [&["--qiuck"][..], &["--quick", "--virbose"], &["extra"]] {
            match parse(bad) {
                Err(CliError::Bad(msg)) => assert!(msg.contains("unknown"), "{msg}"),
                other => panic!("{bad:?} not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn missing_and_malformed_values_are_rejected() {
        assert!(matches!(parse(&["--trials"]), Err(CliError::Bad(_))));
        assert!(matches!(
            parse(&["--trials", "zero"]),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(parse(&["--trials", "0"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--threads", "0"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--seed", "-1"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--json"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn help_is_distinguished() {
        assert_eq!(parse(&["--help"]), Err(CliError::Help));
        assert_eq!(parse(&["-h"]), Err(CliError::Help));
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().shards, None);
        assert_eq!(parse(&["--shards", "4"]).unwrap().shards, Some(4));
        assert!(matches!(parse(&["--shards", "0"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--shards"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn store_flag_parses_and_rejects_junk() {
        assert_eq!(parse(&[]).unwrap().store, StoreKind::Disk);
        assert_eq!(parse(&["--store", "ram"]).unwrap().store, StoreKind::Ram);
        assert_eq!(parse(&["--store", "disk"]).unwrap().store, StoreKind::Disk);
        assert!(matches!(parse(&["--store", "tape"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--store"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn prefetch_flag_parses_and_rejects_junk() {
        assert!(parse(&[]).unwrap().prefetch);
        assert!(parse(&["--prefetch", "on"]).unwrap().prefetch);
        assert!(!parse(&["--prefetch", "off"]).unwrap().prefetch);
        assert!(matches!(
            parse(&["--prefetch", "maybe"]),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(parse(&["--prefetch"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn sweep_only_flag_parses() {
        assert!(!parse(&[]).unwrap().sweep_only);
        assert!(parse(&["--sweep-only"]).unwrap().sweep_only);
    }

    #[test]
    fn rss_probe_reports_a_sane_high_water_mark() {
        let Some(bytes) = peak_rss_bytes() else {
            return; // non-Linux: the probe is an explicit no-op
        };
        // A running test binary resides in at least a mebibyte and
        // (here) well under a terabyte.
        assert!(bytes > 1 << 20, "VmHWM {bytes} implausibly small");
        assert!(bytes < 1 << 40, "VmHWM {bytes} implausibly large");
    }

    #[test]
    fn gib_formatting_handles_missing_probe() {
        assert_eq!(fmt_gib(None), "-");
        assert_eq!(fmt_gib(Some(3 << 29)), "1.50 GiB");
    }

    #[test]
    fn sweep_helper_uses_cli_settings() {
        let cli = parse(&["--threads", "2", "--seed", "5"]).unwrap();
        let sweep = cli.sweep("x");
        assert_eq!(sweep.threads(), 2);
        assert_eq!(cli.seeds(), SeedSequence::new(5));
    }

    /// An explicit `--trials` beats the floors/caps binaries apply to
    /// the default count (e.g. E3's `.max(300)` signal floor).
    #[test]
    fn explicit_trials_win_over_binary_adjustments() {
        let default_cli = parse(&["--quick"]).unwrap();
        assert_eq!(default_cli.cell_trials(default_cli.trials.max(300)), 300);
        let explicit = parse(&["--trials", "10"]).unwrap();
        assert_eq!(explicit.cell_trials(explicit.trials.max(300)), 10);
        assert_eq!(explicit.cell_trials(explicit.trials.min(5)), 10);
    }
}
