//! Shared plumbing for the reproduction experiment binaries (`exp_e1` …
//! `exp_e10`) and the Criterion benches.
//!
//! Each binary regenerates one result of Pelc & Peleg (PODC'05 / TCS'07);
//! the mapping from binaries to theorems is the per-experiment index in
//! `DESIGN.md`. All binaries accept `--quick` to shrink trial counts for
//! smoke runs, and print Markdown tables compatible with
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use randcast_graph::{generators, Graph};

/// Trial counts for an experiment, switchable by `--quick`.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    /// Monte-Carlo trials per table cell.
    pub trials: usize,
    /// Divisor for sweep extents (1 = full).
    pub scale: usize,
}

/// Parses CLI args: `--quick` selects the reduced effort.
#[must_use]
pub fn effort() -> Effort {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        Effort {
            trials: 60,
            scale: 2,
        }
    } else {
        Effort {
            trials: 400,
            scale: 1,
        }
    }
}

/// The standard graph suite used by several experiments: name plus
/// constructor, all with source node 0.
#[must_use]
pub fn standard_suite() -> Vec<(&'static str, Graph)> {
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(12345);
    vec![
        ("path-32", generators::path(32)),
        ("grid-8x8", generators::grid(8, 8)),
        ("tree-2-6", generators::balanced_tree(2, 6)),
        ("hypercube-6", generators::hypercube(6)),
        ("rand-tree-64", generators::random_tree(64, &mut rng)),
        ("G(5)", generators::lower_bound_graph(5)),
    ]
}

/// Prints the standard experiment header.
pub fn banner(id: &str, claim: &str) {
    println!("== {id} ==");
    println!("{claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_connected_and_nontrivial() {
        for (name, g) in standard_suite() {
            assert!(g.node_count() >= 33, "{name}");
            assert!(randcast_graph::traversal::is_connected(&g), "{name}");
        }
    }
}
