//! E4 — §2.2.2 remark: under *limited* malicious failures (no speaking
//! out of turn), the even/odd "hello" timing protocol broadcasts a bit
//! over a single link for **any** `p < 1`, with error `e^{−Θ(m)}`.
//!
//! Sweeps `p` and the window size `m`; reports the measured success rate
//! per bit value and the analytic error bound for bit 0 (bit 1 is
//! decoded correctly deterministically).

use randcast_bench::{banner, cli, emit};
use randcast_core::datalink::{hello_error_bound, run_hello};
use randcast_core::sweep::TrialOutcome;

fn main() {
    let cli = cli();
    banner(
        "E4 (§2.2.2)",
        "Even/odd datalink protocol: limited malicious, any p < 1; error e^{-Θ(m)}.",
    );
    let mut sweep = cli.sweep("e4_datalink");
    for p in [0.3, 0.5, 0.7, 0.9] {
        for m in [5usize, 20, 80, 320] {
            for bit in [true, false] {
                let analytic = if bit {
                    "-".to_string() // bit 1 is decoded deterministically
                } else {
                    format!("{:.3e}", hello_error_bound(m, p))
                };
                sweep.cell(
                    [
                        ("p", format!("{p}")),
                        ("m", m.to_string()),
                        ("bit", u8::from(bit).to_string()),
                        ("analytic err", analytic),
                    ],
                    cli.trials,
                    None,
                    move |seed, _rng| TrialOutcome::pass(run_hello(m, p, bit, seed)),
                );
            }
        }
    }
    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: bit 1 always correct; bit 0 error tracks the analytic bound and\n\
         decays exponentially in m at every p < 1 — no threshold, unlike Theorem 2.3."
    );
}
