//! E4 — §2.2.2 remark: under *limited* malicious failures (no speaking
//! out of turn), the even/odd "hello" timing protocol broadcasts a bit
//! over a single link for **any** `p < 1`, with error `e^{−Θ(m)}`.
//!
//! Sweeps `p` and the window size `m`; reports the measured success rate
//! per bit value and the analytic error bound for bit 0 (bit 1 is
//! decoded correctly deterministically).

use randcast_bench::{banner, effort};
use randcast_core::datalink::{hello_error_bound, run_hello};
use randcast_core::experiment::run_success_trials;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "E4 (§2.2.2)",
        "Even/odd datalink protocol: limited malicious, any p < 1; error e^{-Θ(m)}.",
    );
    let mut table = Table::new([
        "p",
        "m",
        "success(bit=1)",
        "success(bit=0)",
        "analytic err(bit=0)",
    ]);
    for p in [0.3, 0.5, 0.7, 0.9] {
        for m in [5usize, 20, 80, 320] {
            let ones = run_success_trials(e.trials, SeedSequence::new(50), |seed| {
                run_hello(m, p, true, seed)
            });
            let zeros = run_success_trials(e.trials, SeedSequence::new(51), |seed| {
                run_hello(m, p, false, seed)
            });
            table.row([
                format!("{p}"),
                m.to_string(),
                fmt_prob(ones.rate()),
                fmt_prob(zeros.rate()),
                format!("{:.3e}", hello_error_bound(m, p)),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected: bit 1 always correct; bit 0 error tracks the analytic bound and\n\
         decays exponentially in m at every p < 1 — no threshold, unlike Theorem 2.3."
    );
}
