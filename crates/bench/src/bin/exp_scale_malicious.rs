//! SCALE — malicious broadcasting at large `n` through the adversary
//! fast-path kernels (the [`FaultModel`] layer behind
//! `simple_fast` / `flood_fast` / `radio_fast`).
//!
//! Three sections:
//!
//! 1. **Scale grid** — `Simple-Malicious` (Theorem 2.2, majority
//!    voting), tree flooding under the flip adversary (the negative
//!    side of Theorem 2.3: flooding has no vote, so correctness decays
//!    geometrically with depth), and Decay under limited-malicious
//!    value corruption, on connected Erdős–Rényi and
//!    preferential-attachment graphs up to `n = 10⁶` (`--quick` caps
//!    at `n = 10⁴`). Every cell sits at `n ≥ 4096`, so the harness
//!    **auto-selects** the fast path — the same dispatch a user's
//!    `Algorithm::Simple` scenario takes.
//! 2. **Feasibility threshold** — with the phase length *fixed* at `m`
//!    instead of scaled with `p`, the Hoeffding bound on a corrupted
//!    majority puts the per-phase failure near
//!    `exp(−2 m (1/2 − p)²)`; the union bound collapses at the margin
//!    `(1/2 − p*) = sqrt(ln n / (2 m))`. Cells walk `p` across `p*`,
//!    tracing the success rate from ≈1 to ≈0 — the malicious analogue
//!    of `exp_scale_simple`'s omission bracket, honoring Theorem 2.2's
//!    `p < 1/2` wall.
//! 3. **Placement study** (stdout only, not part of the JSON report) —
//!    i.i.d. omission vs the cut-maximizing [`WorstCasePlacement`]
//!    adversary at the same corruption budget on tree flooding: an
//!    iid-silenced node merely retries next round, while a crash
//!    *placed* at a subtree-maximizing site severs its whole subtree,
//!    so the same mass concentrated adversarially destroys almost all
//!    of the informed set.
//!
//! [`FaultModel`]: randcast_engine::kernel::FaultModel
//! [`WorstCasePlacement`]: randcast_engine::kernel::WorstCasePlacement

use randcast_bench::{banner, cli, scale_table, write_json};
use randcast_core::scenario::{fmt_p, Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_engine::fault::{FaultConfig, FaultKind};
use randcast_engine::flood_fast::{FastFlood, FastFloodVariant};
use randcast_engine::kernel::{
    CorruptionKind, FaultModel, FaultTapes, Omission, WorstCasePlacement, LANES,
};
use randcast_graph::{generators, CsrGraph};
use randcast_stats::table::{fmt_f2, Table};

fn main() {
    let cli = cli();
    banner(
        "SCALE (malicious fast paths)",
        "Majority-vote Simple-Malicious, flip-adversary flooding, and limited-malicious \
         Decay on gnp / preferential-attachment graphs up to n = 10^6 through the \
         auto-selected adversary kernels, plus fixed-m cells bracketing the Theorem 2.2 \
         collapse at (1/2 - p*) = sqrt(ln n / 2m) and an iid-vs-placed corruption study.",
    );
    let quick = cli.scale > 1;
    let sizes: &[usize] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut sweep = cli.sweep("scale_malicious");

    // Section 1: the scale grid. Families stay connected by
    // construction (the random-geometric family would force the
    // *Fast algorithms and bypass the auto-dispatch under test).
    // Simple's Theorem 2.2 schedule is n·m with m = ln n/(1/2-p)², so
    // its p list stays below the wall; flooding and Decay corrupt
    // values, not deliveries, and tolerate any rate.
    let cells: &[(Algorithm, Model, FaultKind, &[f64])] = &[
        (
            Algorithm::Simple,
            Model::Mp,
            FaultKind::Malicious,
            if quick { &[0.3] } else { &[0.1, 0.3] },
        ),
        (
            Algorithm::Flood { horizon_scale: 1 },
            Model::Mp,
            FaultKind::Malicious,
            if quick { &[0.3] } else { &[0.1, 0.3, 0.6] },
        ),
        (
            Algorithm::Decay { epoch_factor: 3 },
            Model::Radio,
            FaultKind::LimitedMalicious,
            if quick { &[0.3] } else { &[0.1, 0.3] },
        ),
    ];
    let mut specs = Vec::new();
    for &n in sizes {
        let families = [
            GraphFamily::Gnp {
                n,
                avg_deg: 8,
                seed: 67,
            },
            GraphFamily::PreferentialAttachment { n, m: 4, seed: 69 },
        ];
        // Simple-Malicious trials cost n·m model coins, the most
        // expensive cells here — counts scale down with n; an explicit
        // --trials wins as everywhere.
        let trials = cli.cell_trials(if quick {
            cli.trials.min(8)
        } else {
            (1_000_000 / n).clamp(4, 16)
        });
        for family in families {
            for &(algorithm, model, kind, ps) in cells {
                for &p in ps {
                    let scenario = Scenario {
                        graph: family,
                        algorithm,
                        model,
                        fault: FaultConfig::new(kind, p)
                            .unwrap_or_else(|e| panic!("invalid fault rate: {e}")),
                        shards: ShardSpec::Auto,
                    };
                    specs.push(scenario);
                    sweep
                        .try_scenario(scenario, trials)
                        .unwrap_or_else(|e| panic!("invalid scale-malicious scenario: {e}"));
                }
            }
        }
    }

    // Section 2: the fixed-m feasibility bracket (Theorem 2.2's p < 1/2
    // wall). With m fixed, the majority vote's per-phase failure is
    // ≈ exp(-2m(1/2-p)²); n phases collapse once the margin 1/2 - p
    // crosses sqrt(ln n / 2m). Explicit phase_len bypasses the
    // prescription (and its feasibility assertion) by design.
    let bracket_n = if quick { 10_000 } else { 1_000_000 };
    let m = if quick { 121 } else { 441 };
    let margin_star = ((bracket_n as f64).ln() / (2.0 * m as f64)).sqrt();
    let p_star = 0.5 - margin_star;
    let bracket_family = GraphFamily::Gnp {
        n: bracket_n,
        avg_deg: 8,
        seed: 67, // shares the main grid's built graph via the cache
    };
    let bracket_trials = cli.cell_trials(if quick { cli.trials.min(8) } else { 8 });
    let mut bracket_specs = Vec::new();
    for factor in [1.3, 1.15, 1.0, 0.85, 0.7] {
        let p = 0.5 - margin_star * factor;
        let scenario = Scenario {
            graph: bracket_family,
            algorithm: Algorithm::SimpleFast { phase_len: Some(m) },
            model: Model::Mp,
            fault: FaultConfig::malicious(p),
            shards: ShardSpec::Auto,
        };
        bracket_specs.push(scenario);
        sweep
            .try_scenario_with(
                scenario,
                bracket_trials,
                vec![
                    ("p*".into(), format!("{p_star:.4}")),
                    ("margin/margin*".into(), format!("{factor}")),
                ],
            )
            .unwrap_or_else(|e| panic!("invalid bracket scenario: {e}"));
    }

    let result = sweep.run();
    let (grid_cells, bracket_cells) = result.cells.split_at(specs.len());

    println!("{}", scale_table(&specs, grid_cells).render());

    let mut bracket = Table::new([
        "margin/margin*",
        "p",
        "m",
        "successes",
        "trials",
        "rate",
        "frac",
    ]);
    for (scenario, cell) in bracket_specs.iter().zip(bracket_cells) {
        let param = |key: &str| {
            cell.params
                .iter()
                .find(|(k, _)| k == key)
                .map_or_else(|| "-".into(), |(_, v)| v.clone())
        };
        bracket.row([
            param("margin/margin*"),
            fmt_p(scenario.fault.p.get()),
            param("m"),
            cell.estimate.successes().to_string(),
            cell.estimate.trials().to_string(),
            fmt_f2(cell.estimate.rate()),
            cell.mean_informed_frac
                .map_or_else(|| "-".into(), |f| format!("{f:.5}")),
        ]);
    }
    println!("{}", bracket.render());

    placement_study(if quick { 8 } else { 20 }, cli.seed);

    write_json(&cli, &result);
    println!(
        "expected: Simple-Malicious with the Theorem 2.2 schedule stays almost-safe at\n\
         every size while flip-adversary flooding — voteless — sees its correct\n\
         fraction collapse toward 1/2 with depth (Theorem 2.3's lesson) and\n\
         limited-malicious Decay loses exactly the poisoned adoptions; with m fixed\n\
         the success rate walks from ~1 to ~0 as the margin crosses\n\
         sqrt(ln n / 2m); and at equal budget the cut-maximizing crash placement\n\
         severs almost the whole tree while iid omission costs nothing."
    );
}

/// Section 3: iid flip corruption vs the cut-maximizing placement at
/// the same budget, on tree flooding over a 64×64 grid (n = 4096 — the
/// auto-dispatch floor). Stdout only: the placement adversary is a
/// study instrument, not part of the reproducible JSON surface.
fn placement_study(blocks: u64, seed: u64) {
    let g = generators::grid(64, 64);
    let n = g.node_count();
    let csr = CsrGraph::from(&g);
    let flood = FastFlood::new(csr, g.node(0), 256, FastFloodVariant::Tree);

    let mut table = Table::new(["budget", "iid informed frac", "placed informed frac"]);
    for &p in &[0.01, 0.03, 0.1] {
        // Silent corruption makes the leverage visible: an iid omission
        // node merely retries next round, while a *placed* crash at a
        // subtree-maximizing site severs its whole subtree for good.
        let iid = Omission::new(p);
        let mut placed = WorstCasePlacement::new(p, CorruptionKind::Silent);
        flood.preprocess(&mut placed);
        let mean_frac = |model: &dyn FaultModel| {
            let mut informed = 0usize;
            for block in 0..blocks {
                let tapes = FaultTapes::new(seed.wrapping_add(block));
                let batch = flood.run_batch_model(model, &tapes);
                for lane in 0..LANES as u32 {
                    informed += batch.informed_count(lane);
                }
            }
            informed as f64 / (blocks as usize * LANES * n) as f64
        };
        table.row([
            fmt_p(p),
            format!("{:.4}", mean_frac(&iid)),
            format!("{:.4}", mean_frac(&placed)),
        ]);
    }
    println!("iid vs worst-case placement (tree flood, grid 64x64):");
    println!("{}", table.render());
}
