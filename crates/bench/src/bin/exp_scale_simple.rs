//! SCALE — large-`n` Simple broadcast (the paper's headline protocol)
//! on scalable random-graph families, through the geometric-draw
//! fast-path kernel.
//!
//! Sweeps `Simple-Omission` completion under omission faults over
//! Erdős–Rényi, random-geometric, and preferential-attachment graphs
//! up to `n = 10⁶` (`--quick` caps at `n = 10⁴` for CI) with the
//! Theorem 2.1 phase length `m = ⌈2 ln n / ln(1/p)⌉`, reporting the
//! success rate, the correct fraction, and the schedule length
//! `n · m` — the `Θ(n log n)` complexity the paper trades against
//! flooding's `Θ(D + log n)`. The random-geometric cells sit *below*
//! their connectivity threshold: the verdict column honestly reads
//! `FAIL` for full broadcast while the correct fraction stays near 1 —
//! the almost-complete regime, not a bug.
//!
//! A second section brackets the **feasibility threshold**: with the
//! phase length *fixed* at `m` instead of scaled with `p`, per-node
//! relay failure is `p^m` and the union bound collapses at
//! `p* = n^{−1/m}` — cells at `p*·{0.85, 0.95, 1, 1.05, 1.15}` walk
//! the success rate from ≈1 to ≈0 around it.

use randcast_bench::{banner, cli, scale_sweep, scale_table, write_json};
use randcast_core::scenario::{fmt_p, Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_engine::fault::FaultConfig;
use randcast_stats::quantile::QuantileSummary;
use randcast_stats::table::{fmt_f2, Table};

fn main() {
    let cli = cli();
    banner(
        "SCALE (fast-path simple)",
        "Geometric-draw Simple-Omission broadcast on gnp / random-geometric / \
         preferential-attachment graphs up to n = 10^6, plus feasibility-threshold \
         cells bracketing the fixed-m collapse at p* = n^(-1/m).",
    );
    let quick = cli.scale > 1;
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let ps: &[f64] = if quick { &[0.3] } else { &[0.1, 0.3, 0.6] };

    let mut sweep = cli.sweep("scale_simple");
    let specs = scale_sweep(
        &mut sweep,
        sizes,
        ps,
        [97, 98, 99],
        Algorithm::SimpleFast { phase_len: None },
        Model::Mp,
        // A Simple trial costs one geometric draw per internal node —
        // O(n) — so counts can stay flood-like; an explicit --trials
        // wins as everywhere.
        |n| {
            cli.cell_trials(if quick {
                cli.trials.min(8)
            } else {
                (1_000_000 / n).clamp(4, 24)
            })
        },
    );

    // Feasibility-threshold bracket: fix m, sweep p across the collapse
    // point p* = n^(-1/m) (Theorem 2.1 run *without* rescaling m).
    let bracket_n = if quick { 10_000 } else { 1_000_000 };
    let m = 20usize;
    let p_star = (bracket_n as f64).powf(-1.0 / m as f64);
    let bracket_family = GraphFamily::Gnp {
        n: bracket_n,
        avg_deg: 8,
        seed: 97, // shares the main grid's built graph via the cache
    };
    let bracket_trials = cli.cell_trials(if quick { cli.trials.min(8) } else { 12 });
    let mut bracket_specs = Vec::new();
    for factor in [0.85, 0.95, 1.0, 1.05, 1.15] {
        let p = (p_star * factor).min(0.999);
        let scenario = Scenario {
            graph: bracket_family,
            algorithm: Algorithm::SimpleFast { phase_len: Some(m) },
            model: Model::Mp,
            fault: FaultConfig::omission(p),
            shards: ShardSpec::Auto,
        };
        bracket_specs.push(scenario);
        sweep
            .try_scenario_with(
                scenario,
                bracket_trials,
                vec![
                    ("p*".into(), format!("{p_star:.4}")),
                    ("p/p*".into(), format!("{factor}")),
                ],
            )
            .unwrap_or_else(|e| panic!("invalid bracket scenario: {e}"));
    }

    let result = sweep.run();
    let (grid_cells, bracket_cells) = result.cells.split_at(specs.len());

    println!("{}", scale_table(&specs, grid_cells).render());

    let mut bracket = Table::new(["p/p*", "p", "m", "successes", "trials", "rate", "frac"]);
    for (scenario, cell) in bracket_specs.iter().zip(bracket_cells) {
        let param = |key: &str| {
            cell.params
                .iter()
                .find(|(k, _)| k == key)
                .map_or_else(|| "-".into(), |(_, v)| v.clone())
        };
        bracket.row([
            param("p/p*"),
            fmt_p(scenario.fault.p.get()),
            param("m"),
            cell.estimate.successes().to_string(),
            cell.estimate.trials().to_string(),
            fmt_f2(cell.estimate.rate()),
            cell.mean_informed_frac
                .map_or_else(|| "-".into(), |f| format!("{f:.5}")),
        ]);
    }
    println!("{}", bracket.render());
    // Keep the completion-time quantiles honest: Simple's schedule is
    // fixed-length, so T collapses to n·m on success — report it once.
    let t: Vec<f64> = grid_cells
        .iter()
        .flat_map(|c| c.outcomes.iter().filter_map(|o| o.rounds))
        .collect();
    if let Some(q) = QuantileSummary::from_unsorted(&t) {
        println!("schedule lengths across successful cells: p50 {}\n", q.p50);
    }

    write_json(&cli, &result);
    println!(
        "expected: with the prescribed m = ceil(2 ln n / ln(1/p)) every connected cell\n\
         is almost-safe at every size (the n·m schedule is the price); the\n\
         random-geometric cells below their connectivity threshold never finish the\n\
         full broadcast (verdict FAIL) yet hold correct fractions near 1; and with m\n\
         fixed at 20 the success rate collapses from ~1 to ~0 across p* = n^(-1/m)."
    );
}
