//! E9 — Theorem 3.3 (Lemma 3.4): on `G(m)`, almost-safe radio broadcast
//! needs `Ω(log n · log log n / log log log n)` rounds — in particular,
//! `O(opt + log n)` is impossible, separating radio from message passing
//! (where Theorem 3.1 gives `O(D + log n)`).
//!
//! For each `m`, searches two schedule families for the minimal length
//! `τ` whose hit-count union bound `Σ_v p^{h_v}` drops below `1/n`, then
//! verifies the chosen schedule by Monte-Carlo simulation of the omission
//! process. Reports `τ` against `opt + log₂ n` (ratio grows ⇒ the target
//! is unattainable) and against the paper's lower-bound curve (ratio
//! stays bounded).

use randcast_bench::{banner, effort};
use randcast_core::experiment::run_success_trials;
use randcast_core::lower_bound::{lower_bound_curve, min_reps_for_target, LayerSchedule};
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_f2, fmt_prob, Table};

fn main() {
    let e = effort();
    let p = 0.5;
    banner(
        "E9 (Theorem 3.3)",
        "G(m): minimal almost-safe radio rounds vs opt + log n — the gap grows.",
    );
    let mut table = Table::new([
        "m",
        "n",
        "opt",
        "opt+log2 n",
        "singleton τ",
        "scale τ",
        "best τ / (opt+log n)",
        "best τ / LB-curve",
        "MC success@best",
    ]);
    let ms: Vec<usize> = if e.scale == 1 {
        vec![4, 6, 8, 10, 12, 14]
    } else {
        vec![4, 6, 8, 10]
    };
    for m in ms {
        let n = (1usize << m) + m;
        let target = 1.0 / n as f64;
        let opt = m + 1;
        let baseline = opt as f64 + (n as f64).log2();

        let (single_reps, single_rounds) =
            min_reps_for_target(|r| LayerSchedule::singletons(m, r), p, target);
        let mut seq = SeedSequence::new(90);
        let (scale_reps, scale_rounds) = min_reps_for_target(
            |r| {
                let mut rng = seq.nth_rng(r as u64);
                seq = seq.child(r as u64);
                LayerSchedule::scales(m, r, &mut rng)
            },
            p,
            target,
        );

        // Monte-Carlo check of the better schedule: success ≥ 1 - 1/n.
        let (best_rounds, best): (usize, LayerSchedule) = if scale_rounds < single_rounds {
            let mut rng = SeedSequence::new(91).nth_rng(0);
            (scale_rounds, LayerSchedule::scales(m, scale_reps, &mut rng))
        } else {
            (single_rounds, LayerSchedule::singletons(m, single_reps))
        };
        let mc_trials = if m <= 10 { e.trials } else { e.trials / 4 };
        let est = run_success_trials(mc_trials.max(40), SeedSequence::new(92), |seed| {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            best.simulate_omission(p, &mut rng)
        });

        let best_tau = best_rounds as f64 + 1.0; // + the source round
        table.row([
            m.to_string(),
            n.to_string(),
            opt.to_string(),
            fmt_f2(baseline),
            (single_rounds + 1).to_string(),
            (scale_rounds + 1).to_string(),
            fmt_f2(best_tau / baseline),
            fmt_f2(best_tau / lower_bound_curve(n)),
            fmt_prob(est.rate()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected: τ/(opt + log n) increases with m — no schedule family can stay\n\
         within O(opt + log n) — while τ/(log n·log log n/log log log n) stays bounded;\n\
         the Monte-Carlo column confirms the chosen schedules really are almost-safe\n\
         (the hit-count union bound is conservative, so MC success exceeds 1 − 1/n)."
    );
}
