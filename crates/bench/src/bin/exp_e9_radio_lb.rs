//! E9 — Theorem 3.3 (Lemma 3.4): on `G(m)`, almost-safe radio broadcast
//! needs `Ω(log n · log log n / log log log n)` rounds — in particular,
//! `O(opt + log n)` is impossible, separating radio from message passing
//! (where Theorem 3.1 gives `O(D + log n)`).
//!
//! For each `m`, searches two schedule families for the minimal length
//! `τ` whose hit-count union bound `Σ_v p^{h_v}` drops below `1/n`, then
//! verifies the chosen schedule by Monte-Carlo simulation of the omission
//! process. Reports `τ` against `opt + log₂ n` (ratio grows ⇒ the target
//! is unattainable) and against the paper's lower-bound curve (ratio
//! stays bounded).

use randcast_bench::{banner, cli, emit};
use randcast_core::lower_bound::{lower_bound_curve, min_reps_for_target, LayerSchedule};
use randcast_core::sweep::TrialOutcome;
use randcast_stats::table::fmt_f2;

fn main() {
    let cli = cli();
    let p = 0.5;
    banner(
        "E9 (Theorem 3.3)",
        "G(m): minimal almost-safe radio rounds vs opt + log n — the gap grows.",
    );
    let ms: Vec<usize> = if cli.scale == 1 {
        vec![4, 6, 8, 10, 12, 14]
    } else {
        vec![4, 6, 8, 10]
    };
    let mut sweep = cli.sweep("e9_radio_lb");
    for m in ms {
        let n = (1usize << m) + m;
        let target = 1.0 / n as f64;
        let opt = m + 1;
        let baseline = opt as f64 + (n as f64).log2();

        let (single_reps, single_rounds) =
            min_reps_for_target(|r| LayerSchedule::singletons(m, r), p, target);
        // The schedule-family search derives its randomness from the
        // root --seed (one child stream per m).
        let mut seq = cli.seeds().child(0x5EA7C).child(m as u64);
        let (scale_reps, scale_rounds) = min_reps_for_target(
            |r| {
                let mut rng = seq.nth_rng(r as u64);
                seq = seq.child(r as u64);
                LayerSchedule::scales(m, r, &mut rng)
            },
            p,
            target,
        );

        // Monte-Carlo check of the better schedule: success ≥ 1 - 1/n.
        let (best_rounds, best): (usize, LayerSchedule) = if scale_rounds < single_rounds {
            let mut rng = cli.seeds().child(0xC4053).child(m as u64).nth_rng(0);
            (scale_rounds, LayerSchedule::scales(m, scale_reps, &mut rng))
        } else {
            (single_rounds, LayerSchedule::singletons(m, single_reps))
        };
        let trials = cli.cell_trials(if m <= 10 { cli.trials } else { cli.trials / 4 }.max(40));

        let best_tau = best_rounds as f64 + 1.0; // + the source round
        sweep.cell(
            [
                ("m", m.to_string()),
                ("n", n.to_string()),
                ("opt", opt.to_string()),
                ("opt+log2 n", fmt_f2(baseline)),
                ("singleton τ", (single_rounds + 1).to_string()),
                ("scale τ", (scale_rounds + 1).to_string()),
                ("best τ / (opt+log n)", fmt_f2(best_tau / baseline)),
                ("best τ / LB-curve", fmt_f2(best_tau / lower_bound_curve(n))),
            ],
            trials,
            Some(n),
            move |_seed, rng| TrialOutcome::pass(best.simulate_omission(p, rng)),
        );
    }
    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: τ/(opt + log n) increases with m — no schedule family can stay\n\
         within O(opt + log n) — while τ/(log n·log log n/log log log n) stays bounded;\n\
         the Monte-Carlo rate column confirms the chosen schedules really are almost-safe\n\
         (the hit-count union bound is conservative, so MC success exceeds 1 − 1/n)."
    );
}
