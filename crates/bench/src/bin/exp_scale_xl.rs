//! SCALE-XL — sharded frontier passes and out-of-core CSR at the
//! 10⁷–10⁸ node scale, under explicit wall-clock and peak-RSS
//! reporting.
//!
//! Two parts:
//!
//! 1. **Sweep** (JSON-reported): Flood / Radio(Decay) / Simple fast
//!    paths on one `G(n, 8/n)` family through the standard sweep
//!    driver. At full scale the grid tops out at `n = 10⁷`, where the
//!    harness's auto-sharding (`ShardSpec::Auto`, ≥ ~8M nodes) engages
//!    on its own; `--shards K` forces a count at any size — sharding
//!    is outcome-neutral, so the JSON is byte-identical either way
//!    (CI's shards-1-vs-4 determinism gate diffs exactly this
//!    report).
//! 2. **Out-of-core trials** (printed + JSON rows): one scalar trial
//!    plus one 64-lane batched block per kernel — flood, radio under
//!    the classical Decay schedule, and Simple over a sharded BFS tree
//!    — against a *single* shared adjacency store, handed from kernel
//!    to kernel without a rebuild. The batched blocks amortize every
//!    segment load over 64 bit-sliced trials, so their *per-trial*
//!    wall is the headline number of the part-2 table.
//!    With `--store disk` (the default) the adjacency *never resides
//!    in RAM*: `gnp_edges` streams the edge run into a [`SpillSink`],
//!    `finalize` counting-sorts it into per-shard CSR segment files,
//!    and the kernels replay trials loading one segment at a time
//!    (with `--prefetch on`, the default, a background reader overlaps
//!    the next segment's read with the current shard's compute).
//!    `--store ram` splits the same edge stream in memory
//!    ([`ShardStore::Ram`]) — the in-core control arm of CI's
//!    Ram-vs-Disk determinism gate, which diffs the normalized JSON of
//!    both runs byte-for-byte. At full scale this is the `n = 10⁸`
//!    (mean degree 8, ~4·10⁸ half-edges ≈ 13 GB of segments) block of
//!    the scale table in `README.md`; `--quick` shrinks it to
//!    `n = 2·10⁵` so CI still walks the spill → finalize → stream →
//!    BFS-tree path end to end.
//!
//! Peak RSS is reported from `VmHWM` (Linux; `-` elsewhere), which
//! captures the worst moment of the whole process — for part 2 that
//! is the widest counting-sort bucket plus the resident bitsets, NOT
//! the full adjacency, which is the point of the exercise.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use randcast_bench::{banner, cli, fmt_gib, peak_rss_bytes, write_json, Cli, StoreKind};
use randcast_core::decay::DecayConfig;
use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_core::sweep::{CellKind, CellResult, TrialOutcome};
use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::ShardedFlood;
use randcast_engine::radio_fast::{FastRadioSchedule, ShardedRadio};
use randcast_engine::simple_fast::ShardedSimple;
use randcast_graph::generators::gnp_edges;
use randcast_graph::shard::{
    default_scratch_dir, EdgeSink, ShardError, ShardPlan, ShardStore, ShardedBfsTree, ShardedCsr,
    SpillSink,
};
use randcast_graph::CsrGraph;
use randcast_stats::chernoff::phase_len_omission;
use randcast_stats::estimate::SuccessEstimate;
use randcast_stats::quantile::QuantileSummary;
use randcast_stats::table::{fmt_f2, Table};

/// Failure probability for every XL cell — the mid-regime value the
/// smaller scale sweeps center on.
const P: f64 = 0.3;

fn main() {
    let cli = cli();
    banner(
        "SCALE-XL (sharded + out-of-core)",
        "Shard-at-a-time frontier passes at n = 10^6..10^7 through the sweep driver,\n\
         plus out-of-core flood/radio/Simple trials at n = 10^8 whose CSR streams from disk.",
    );
    let quick = cli.scale > 1;

    // Part 1: the sweep grid. Auto-sharding engages by itself at 10^7;
    // --shards K forces the matter at any size (outcome-neutral).
    let sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let engines: [(&str, Algorithm, Model); 3] = [
        (
            "flood",
            Algorithm::FloodFast { horizon_scale: 1 },
            Model::Mp,
        ),
        (
            "radio",
            Algorithm::DecayFast { epoch_factor: 2 },
            Model::Radio,
        ),
        (
            "simple",
            Algorithm::SimpleFast { phase_len: None },
            Model::Mp,
        ),
    ];

    let mut sweep = cli.sweep("scale_xl");
    let mut specs = Vec::new();
    for &n in sizes {
        let family = GraphFamily::Gnp {
            n,
            avg_deg: 8,
            seed: 97,
        };
        // Trials shrink with n: one 64-lane block per 10^6 cell, a
        // pair of scalar-tail trials at 10^7 (an explicit --trials
        // wins, as everywhere).
        let trials = cli.cell_trials(if quick {
            cli.trials.min(4)
        } else if n >= 10_000_000 {
            2
        } else {
            64
        });
        for (label, algorithm, model) in engines {
            let scenario = Scenario {
                graph: family,
                algorithm,
                model,
                fault: FaultConfig::omission(P),
                shards: ShardSpec::Auto,
            };
            specs.push((label, scenario));
            sweep
                .try_scenario(scenario, trials)
                .unwrap_or_else(|e| panic!("invalid scale-xl scenario: {e}"));
        }
    }
    let sweep_start = Instant::now();
    let mut result = sweep.run();
    let sweep_wall = sweep_start.elapsed();

    println!("{}", xl_table(&specs, &result.cells).render());
    println!(
        "sweep wall {:.1}s, peak RSS so far {}",
        sweep_wall.as_secs_f64(),
        fmt_gib(peak_rss_bytes()),
    );
    println!();

    // Part 2: the out-of-core trials. --quick shrinks them rather than
    // skipping, so CI walks the spill -> finalize -> stream -> BFS-tree
    // path every run; --sweep-only skips them outright (CI's speedup
    // probe times part 1 at full scale without paying for 10^8). The
    // synthetic per-trial rows land in the same JSON report as part 1
    // (before write_json), so the Ram-vs-Disk and shards determinism
    // gates cover the out-of-core path end to end.
    if !cli.sweep_only {
        let n: usize = if quick { 200_000 } else { 100_000_000 };
        out_of_core_trials(&cli, n, quick, &mut result.cells);
    }
    write_json(&cli, &result);
}

/// The in-RAM [`EdgeSink`] for `--store ram`: collects the same edge
/// stream the disk path spills, for a monolithic CSR build split along
/// the identical shard plan.
struct CollectSink(Vec<(u32, u32)>);

impl EdgeSink for CollectSink {
    fn edge(&mut self, u: u64, v: u64) -> Result<(), ShardError> {
        debug_assert!(u < u64::from(u32::MAX) && v < u64::from(u32::MAX));
        #[allow(clippy::cast_possible_truncation)]
        self.0.push((u as u32, v as u32));
        Ok(())
    }
}

/// Streams a `G(n, 8/n)` edge run into the store `--store` selects,
/// builds the sharded BFS tree for Simple, then runs one trial per
/// kernel against the same adjacency store — flood first, then radio
/// (Decay), with the store handed from kernel to kernel, and finally
/// Simple's phase walk over the directed child segments. Prints
/// wall/RSS metrics and appends one report row per trial to `cells`
/// (store- and shard-agnostic fields only, so CI's determinism gates
/// can diff the normalized JSON byte-for-byte).
fn out_of_core_trials(cli: &Cli, n: usize, quick: bool, cells: &mut Vec<CellResult>) {
    #[allow(clippy::cast_precision_loss)]
    let nf = n as f64;
    let q = (8.0 / (nf - 1.0)).min(1.0);
    // One shard per GiB of adjacency by default; --shards K overrides.
    // Quick runs force 3 shards so CI always walks a genuinely
    // multi-segment store (for_budget would pick 1 at 2·10^5).
    let plan = match cli.shards {
        Some(k) => ShardPlan::uniform(n, k),
        None if quick => ShardPlan::uniform(n, 3),
        None => ShardPlan::for_budget(n, 8 * n as u64, 1 << 30),
    };
    let shards = plan.shard_count();
    let store_label = match cli.store {
        StoreKind::Ram => "ram",
        StoreKind::Disk => "disk",
    };

    let build_start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cli.seed ^ 0x0107_e8ed);
    let (store, edges) = match cli.store {
        StoreKind::Disk => {
            let mut sink = SpillSink::create(default_scratch_dir(), plan)
                .unwrap_or_else(|e| panic!("cannot create spill sink: {e}"));
            gnp_edges(&mut sink, n, q, &mut rng)
                .unwrap_or_else(|e| panic!("edge stream failed: {e}"));
            let disk = sink
                .finalize()
                .unwrap_or_else(|e| panic!("spill finalize failed: {e}"));
            let edges = disk.edge_count();
            (ShardStore::Disk(disk), edges)
        }
        StoreKind::Ram => {
            let mut sink = CollectSink(Vec::new());
            gnp_edges(&mut sink, n, q, &mut rng)
                .unwrap_or_else(|e| panic!("edge stream failed: {e}"));
            let csr = CsrGraph::from_edges(n, &sink.0);
            drop(sink);
            let sharded = ShardedCsr::split(&csr, plan);
            let edges = sharded.edge_count() as u64;
            (ShardStore::Ram(sharded), edges)
        }
    };
    let build_wall = build_start.elapsed();

    // The BFS tree for Simple runs over the same store by reference
    // (level-synchronous shard passes), spilling directed child
    // segments of its own.
    let tree_start = Instant::now();
    let tree = ShardedBfsTree::build(&store, 0, default_scratch_dir())
        .unwrap_or_else(|e| panic!("sharded BFS build failed: {e}"));
    let tree_wall = tree_start.elapsed();
    let reachable = tree.reachable();
    let (order, children) = tree.into_parts();

    // Theorem 3.1 shape without a resident graph: estimate the
    // diameter of the giant component of G(n, 8/n) as 3·ln n / ln 8
    // (generous; the trials stop early once nothing can change).
    let d_est = (3.0 * nf.ln() / 8f64.ln()).ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let horizon = ((2.0 * (d_est + 4.0 * nf.ln()) / (1.0 - P)).ceil() as usize).max(1);

    let prefetch_label = if cli.prefetch { "on" } else { "off" };
    println!(
        "out-of-core trials: n = {n}, mean degree 8, p = {P}, {shards} shard(s), store = {store_label}, prefetch = {prefetch_label}"
    );
    let mut setup = Table::new(["build metric", "value"]);
    setup
        .row(["adjacency edges", &format!("{edges}")])
        .row([
            "segment bytes",
            &fmt_gib(Some(8 * edges + 4 * (n as u64 + shards as u64))),
        ])
        .row([
            "adjacency build wall",
            &format!("{:.1}s", build_wall.as_secs_f64()),
        ])
        .row(["BFS tree wall", &format!("{:.1}s", tree_wall.as_secs_f64())])
        .row(["tree reachable", &format!("{reachable}")])
        .row(["peak RSS so far", &fmt_gib(peak_rss_bytes())]);
    println!("{}", setup.render());

    let mut trials = Table::new([
        "kernel",
        "rounds budget",
        "wall",
        "per-trial wall",
        "prefetch",
        "completed round",
        "informed frac",
        "almost-complete",
        "peak RSS so far",
    ]);
    let fmt_round = |r: Option<usize>| r.map_or_else(|| "-".into(), |r| r.to_string());

    // Flood: the store moves in and comes back out for radio.
    let flood = ShardedFlood::new(store, 0, horizon).with_prefetch(cli.prefetch);
    let flood_start = Instant::now();
    let fout = flood
        .run_lane(P, cli.seeds().nth_seed(0), 0)
        .unwrap_or_else(|e| panic!("out-of-core flood trial failed: {e}"));
    let flood_wall = flood_start.elapsed();
    trials.row([
        "flood".into(),
        format!("{horizon}"),
        format!("{:.1}s", flood_wall.as_secs_f64()),
        format!("{:.2}s", flood_wall.as_secs_f64()),
        prefetch_label.into(),
        fmt_round(fout.completion_round()),
        format!("{:.6}", fout.informed_fraction()),
        fmt_round(fout.almost_complete_round()),
        fmt_gib(peak_rss_bytes()),
    ]);
    cells.push(oc_cell(
        "flood",
        n,
        fout.completion_round(),
        fout.informed_fraction(),
        fout.almost_complete_round(),
        flood_wall,
    ));

    // 64-lane batched block over the same store: every segment load is
    // amortized across the lanes, so the per-trial wall collapses.
    let fb_start = Instant::now();
    let fbatch = flood
        .run_batch(P, cli.seeds().nth_seed(3), reachable)
        .unwrap_or_else(|e| panic!("out-of-core flood batch failed: {e}"));
    let fb_wall = fb_start.elapsed();
    let fb_lanes = lane_stats(|l| {
        (
            fbatch.completion_round(l),
            fbatch.informed_fraction(l),
            fbatch.almost_complete_round(l),
        )
    });
    batch_row(
        &mut trials,
        "flood x64",
        horizon,
        fb_wall,
        prefetch_label,
        &fb_lanes,
    );
    cells.push(oc_batch_cell("flood", n, &fb_lanes, fb_wall));
    let store = flood.into_store();

    // Radio under the classical Decay schedule: epoch length
    // ⌈log₂ n⌉ + 1, epochs 2·(d + log₂ n) — the global collision
    // counter and epoch-exhaustion sweep run across segment loads.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let decay = DecayConfig::classical(n, d_est as usize);
    let radio = ShardedRadio::new(
        store,
        0,
        decay.total_rounds(),
        FastRadioSchedule::Decay {
            epoch_len: decay.epoch_len,
        },
    )
    .with_prefetch(cli.prefetch)
    .with_threads(cli.threads);
    let radio_start = Instant::now();
    let rout = radio
        .run_lane(P, cli.seeds().nth_seed(1), 0)
        .unwrap_or_else(|e| panic!("out-of-core radio trial failed: {e}"));
    let radio_wall = radio_start.elapsed();
    trials.row([
        "radio/decay".into(),
        format!("{}", decay.total_rounds()),
        format!("{:.1}s", radio_wall.as_secs_f64()),
        format!("{:.2}s", radio_wall.as_secs_f64()),
        prefetch_label.into(),
        fmt_round(rout.completion_round()),
        format!("{:.6}", rout.informed_fraction()),
        fmt_round(rout.almost_complete_round()),
        fmt_gib(peak_rss_bytes()),
    ]);
    cells.push(oc_cell(
        "radio",
        n,
        rout.completion_round(),
        rout.informed_fraction(),
        rout.almost_complete_round(),
        radio_wall,
    ));

    let rb_start = Instant::now();
    let rbatch = radio
        .run_batch(P, cli.seeds().nth_seed(4))
        .unwrap_or_else(|e| panic!("out-of-core radio batch failed: {e}"));
    let rb_wall = rb_start.elapsed();
    let rb_lanes = lane_stats(|l| {
        (
            rbatch.completion_round(l),
            rbatch.informed_fraction(l),
            rbatch.almost_complete_round(l),
        )
    });
    batch_row(
        &mut trials,
        "radio/decay x64",
        decay.total_rounds(),
        rb_wall,
        prefetch_label,
        &rb_lanes,
    );
    cells.push(oc_batch_cell("radio", n, &rb_lanes, rb_wall));
    drop(radio); // releases the adjacency store (and its scratch dir)

    // Simple: the (level, id)-sorted phase walk over the directed
    // child segments the BFS build spilled.
    let m = phase_len_omission(n.max(2), P);
    let simple =
        ShardedSimple::new(ShardStore::Disk(children), order, 0, m).with_prefetch(cli.prefetch);
    let simple_start = Instant::now();
    let sout = simple
        .run_lane(P, cli.seeds().nth_seed(2), 0)
        .unwrap_or_else(|e| panic!("out-of-core simple trial failed: {e}"));
    let simple_wall = simple_start.elapsed();
    trials.row([
        "simple".into(),
        format!("{}", sout.total_rounds()),
        format!("{:.1}s", simple_wall.as_secs_f64()),
        format!("{:.2}s", simple_wall.as_secs_f64()),
        prefetch_label.into(),
        fmt_round(sout.completion_round()),
        format!("{:.6}", sout.correct_fraction()),
        fmt_round(sout.almost_complete_round()),
        fmt_gib(peak_rss_bytes()),
    ]);
    cells.push(oc_cell(
        "simple",
        n,
        sout.completion_round(),
        sout.correct_fraction(),
        sout.almost_complete_round(),
        simple_wall,
    ));

    let sb_start = Instant::now();
    let sbatch = simple
        .run_batch(P, cli.seeds().nth_seed(5))
        .unwrap_or_else(|e| panic!("out-of-core simple batch failed: {e}"));
    let sb_wall = sb_start.elapsed();
    let sb_lanes = lane_stats(|l| {
        (
            sbatch.completion_round(l),
            sbatch.correct_fraction(l),
            sbatch.almost_complete_round(l),
        )
    });
    batch_row(
        &mut trials,
        "simple x64",
        sbatch.total_rounds(),
        sb_wall,
        prefetch_label,
        &sb_lanes,
    );
    cells.push(oc_batch_cell("simple", n, &sb_lanes, sb_wall));

    println!("{}", trials.render());
    println!(
        "expected: the giant component of G(n, 8/n) covers ~0.9997 of the nodes; flood\n\
         covers it in ~D/(1-p) + O(log n) rounds, Decay in O((D + log n) log n), and\n\
         Simple's fixed n·m schedule ends almost-complete. Peak RSS stays near the\n\
         resident bitsets + one shard segment, far below the full adjacency."
    );
}

/// One synthetic report row for an out-of-core trial. Only store- and
/// shard-agnostic fields: the Ram-vs-Disk and shards determinism gates
/// diff this JSON byte-for-byte (`wall_ms` is zeroed by
/// `json_validate --normalize`).
fn oc_cell(
    engine: &str,
    n: usize,
    completed: Option<usize>,
    informed_frac: f64,
    almost: Option<usize>,
    wall: Duration,
) -> CellResult {
    let success = completed.is_some();
    #[allow(clippy::cast_precision_loss)]
    let rounds = completed.map(|r| r as f64);
    #[allow(clippy::cast_precision_loss)]
    let almost_rounds = almost.map(|r| r as f64);
    CellResult {
        kind: CellKind::MonteCarlo,
        params: vec![
            ("engine".into(), format!("{engine}/out-of-core")),
            ("n".into(), format!("{n}")),
        ],
        estimate: SuccessEstimate::new(usize::from(success), 1),
        row: None,
        mean_rounds: rounds,
        mean_informed_frac: Some(informed_frac),
        wall_ms: wall.as_secs_f64() * 1000.0,
        outcomes: vec![TrialOutcome {
            success,
            rounds,
            informed_frac: Some(informed_frac),
            almost_rounds,
        }],
    }
}

/// Per-lane `(completion round, informed/correct fraction,
/// almost-complete round)` of one 64-lane batched block.
type LaneStats = (Option<usize>, f64, Option<usize>);

/// Collects the per-lane stats of a 64-lane batched block.
fn lane_stats(per_lane: impl Fn(u32) -> LaneStats) -> Vec<LaneStats> {
    (0..64).map(per_lane).collect()
}

/// One printed row for a batched block: total and per-trial wall, lane
/// medians for the round columns, lane mean for the fraction.
fn batch_row(
    trials: &mut Table,
    kernel: &str,
    budget: usize,
    wall: Duration,
    prefetch: &str,
    lanes: &[LaneStats],
) {
    #[allow(clippy::cast_precision_loss)]
    let completed: Vec<f64> = lanes
        .iter()
        .filter_map(|&(c, _, _)| c.map(|r| r as f64))
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let almost: Vec<f64> = lanes
        .iter()
        .filter_map(|&(_, _, a)| a.map(|r| r as f64))
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let mean_frac = lanes.iter().map(|(_, f, _)| f).sum::<f64>() / lanes.len() as f64;
    let fmt_p50 = |q: Option<QuantileSummary>| {
        q.map_or_else(|| "-".into(), |s| format!("p50 {}", fmt_f2(s.p50)))
    };
    #[allow(clippy::cast_precision_loss)]
    trials.row([
        kernel.into(),
        format!("{budget}"),
        format!("{:.1}s", wall.as_secs_f64()),
        format!("{:.2}s", wall.as_secs_f64() / lanes.len() as f64),
        prefetch.into(),
        fmt_p50(QuantileSummary::from_unsorted(&completed)),
        format!("{mean_frac:.6}"),
        fmt_p50(QuantileSummary::from_unsorted(&almost)),
        fmt_gib(peak_rss_bytes()),
    ]);
}

/// One synthetic report row for a 64-lane batched block: one
/// [`TrialOutcome`] per lane. Like [`oc_cell`], only store-, shard-,
/// thread-, and prefetch-agnostic fields, so the determinism gates
/// diff the normalized JSON byte-for-byte across every knob.
fn oc_batch_cell(engine: &str, n: usize, lanes: &[LaneStats], wall: Duration) -> CellResult {
    #[allow(clippy::cast_precision_loss)]
    let outcomes: Vec<TrialOutcome> = lanes
        .iter()
        .map(|&(completed, frac, almost)| TrialOutcome {
            success: completed.is_some(),
            rounds: completed.map(|r| r as f64),
            informed_frac: Some(frac),
            almost_rounds: almost.map(|r| r as f64),
        })
        .collect();
    let successes = outcomes.iter().filter(|o| o.success).count();
    let rounds: Vec<f64> = outcomes.iter().filter_map(|o| o.rounds).collect();
    #[allow(clippy::cast_precision_loss)]
    let mean_rounds =
        (!rounds.is_empty()).then(|| rounds.iter().sum::<f64>() / rounds.len() as f64);
    #[allow(clippy::cast_precision_loss)]
    let mean_frac =
        outcomes.iter().filter_map(|o| o.informed_frac).sum::<f64>() / outcomes.len() as f64;
    CellResult {
        kind: CellKind::MonteCarlo,
        params: vec![
            ("engine".into(), format!("{engine}/out-of-core-batch")),
            ("n".into(), format!("{n}")),
            ("lanes".into(), format!("{}", lanes.len())),
        ],
        estimate: SuccessEstimate::new(successes, outcomes.len()),
        row: None,
        mean_rounds,
        mean_informed_frac: Some(mean_frac),
        wall_ms: wall.as_secs_f64() * 1000.0,
        outcomes,
    }
}

/// One row per swept cell: engine, n, completion quantiles, informed
/// fraction, almost-complete median.
fn xl_table(specs: &[(&str, Scenario)], cells: &[CellResult]) -> Table {
    let mut table = Table::new([
        "engine",
        "n",
        "p",
        "horizon",
        "T p50",
        "T max",
        "informed frac",
        "almost-T p50",
    ]);
    for ((label, scenario), cell) in specs.iter().zip(cells) {
        let rounds: Vec<f64> = cell.outcomes.iter().filter_map(|o| o.rounds).collect();
        let almost: Vec<f64> = cell
            .outcomes
            .iter()
            .filter_map(|o| o.almost_rounds)
            .collect();
        let rq = QuantileSummary::from_unsorted(&rounds);
        let aq = QuantileSummary::from_unsorted(&almost);
        let fmt_q = |q: Option<QuantileSummary>, pick: fn(QuantileSummary) -> f64| {
            q.map_or_else(|| "-".into(), |s| fmt_f2(pick(s)))
        };
        let param = |key: &str| {
            cell.params
                .iter()
                .find(|(k, _)| k == key)
                .map_or_else(|| "-".into(), |(_, v)| v.clone())
        };
        table.row([
            (*label).to_owned(),
            param("n"),
            format!("{}", scenario.fault.p),
            param("rounds"),
            fmt_q(rq, |s| s.p50),
            fmt_q(rq, |s| s.max),
            cell.mean_informed_frac
                .map_or_else(|| "-".into(), |f| format!("{f:.5}")),
            fmt_q(aq, |s| s.p50),
        ]);
    }
    table
}
