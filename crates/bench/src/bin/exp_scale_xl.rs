//! SCALE-XL — sharded frontier passes and out-of-core CSR at the
//! 10⁷–10⁸ node scale, under explicit wall-clock and peak-RSS
//! reporting.
//!
//! Two parts:
//!
//! 1. **Sweep** (JSON-reported): Flood / Radio(Decay) / Simple fast
//!    paths on one `G(n, 8/n)` family through the standard sweep
//!    driver. At full scale the grid tops out at `n = 10⁷`, where the
//!    harness's auto-sharding (`ShardSpec::Auto`, ≥ ~8M nodes) engages
//!    on its own; `--shards K` forces a count at any size — sharding
//!    is outcome-neutral, so the JSON is byte-identical either way
//!    (CI's shards-1-vs-4 determinism gate diffs exactly this
//!    report).
//! 2. **Out-of-core trial** (printed): one flood trial whose
//!    adjacency *never resides in RAM* — `gnp_edges` streams the edge
//!    run into a [`SpillSink`], `finalize` counting-sorts it into
//!    per-shard CSR segment files, and [`ShardedFlood`] replays the
//!    trial loading one segment at a time. At full scale this is the
//!    `n = 10⁸` (mean degree 8, ~4·10⁸ half-edges ≈ 12.8 GB of
//!    segments) trial of the scale table in `README.md`; `--quick`
//!    shrinks it to `n = 2·10⁵` so CI still exercises the spill →
//!    finalize → stream path end to end.
//!
//! Peak RSS is reported from `VmHWM` (Linux; `-` elsewhere), which
//! captures the worst moment of the whole process — for part 2 that
//! is the widest counting-sort bucket plus the resident bitsets, NOT
//! the full adjacency, which is the point of the exercise.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use randcast_bench::{banner, cli, fmt_gib, peak_rss_bytes, write_json};
use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_core::sweep::CellResult;
use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::ShardedFlood;
use randcast_graph::generators::gnp_edges;
use randcast_graph::shard::{default_scratch_dir, ShardPlan, ShardStore, SpillSink};
use randcast_stats::quantile::QuantileSummary;
use randcast_stats::table::{fmt_f2, Table};

/// Failure probability for every XL cell — the mid-regime value the
/// smaller scale sweeps center on.
const P: f64 = 0.3;

fn main() {
    let cli = cli();
    banner(
        "SCALE-XL (sharded + out-of-core)",
        "Shard-at-a-time frontier passes at n = 10^6..10^7 through the sweep driver,\n\
         plus one out-of-core flood trial at n = 10^8 whose CSR streams from disk.",
    );
    let quick = cli.scale > 1;

    // Part 1: the sweep grid. Auto-sharding engages by itself at 10^7;
    // --shards K forces the matter at any size (outcome-neutral).
    let sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let engines: [(&str, Algorithm, Model); 3] = [
        (
            "flood",
            Algorithm::FloodFast { horizon_scale: 1 },
            Model::Mp,
        ),
        (
            "radio",
            Algorithm::DecayFast { epoch_factor: 2 },
            Model::Radio,
        ),
        (
            "simple",
            Algorithm::SimpleFast { phase_len: None },
            Model::Mp,
        ),
    ];

    let mut sweep = cli.sweep("scale_xl");
    let mut specs = Vec::new();
    for &n in sizes {
        let family = GraphFamily::Gnp {
            n,
            avg_deg: 8,
            seed: 97,
        };
        // Trials shrink with n: one 64-lane block per 10^6 cell, a
        // pair of scalar-tail trials at 10^7 (an explicit --trials
        // wins, as everywhere).
        let trials = cli.cell_trials(if quick {
            cli.trials.min(4)
        } else if n >= 10_000_000 {
            2
        } else {
            64
        });
        for (label, algorithm, model) in engines {
            let scenario = Scenario {
                graph: family,
                algorithm,
                model,
                fault: FaultConfig::omission(P),
                shards: ShardSpec::Auto,
            };
            specs.push((label, scenario));
            sweep
                .try_scenario(scenario, trials)
                .unwrap_or_else(|e| panic!("invalid scale-xl scenario: {e}"));
        }
    }
    let sweep_start = Instant::now();
    let result = sweep.run();
    let sweep_wall = sweep_start.elapsed();

    println!("{}", xl_table(&specs, &result.cells).render());
    println!(
        "sweep wall {:.1}s, peak RSS so far {}",
        sweep_wall.as_secs_f64(),
        fmt_gib(peak_rss_bytes()),
    );
    println!();
    write_json(&cli, &result);

    // Part 2: the out-of-core trial. Skipped only if disk spill is
    // impossible; --quick shrinks it rather than skipping so CI walks
    // the spill -> finalize -> stream path every run.
    let n: usize = if quick { 200_000 } else { 100_000_000 };
    out_of_core_flood(&cli, n, quick);
}

/// Streams a `G(n, 8/n)` edge run to disk, finalizes per-shard CSR
/// segments, and floods from node 0 with the adjacency paged in one
/// shard at a time. Prints wall/RSS for both the build and the trial.
fn out_of_core_flood(cli: &randcast_bench::Cli, n: usize, quick: bool) {
    #[allow(clippy::cast_precision_loss)]
    let nf = n as f64;
    let q = (8.0 / (nf - 1.0)).min(1.0);
    // One shard per GiB of adjacency by default; --shards K overrides.
    // Quick runs force 3 shards so CI always walks a genuinely
    // multi-segment disk store (for_budget would pick 1 at 2·10^5).
    let plan = match cli.shards {
        Some(k) => ShardPlan::uniform(n, k),
        None if quick => ShardPlan::uniform(n, 3),
        None => ShardPlan::for_budget(n, 8 * n as u64, 1 << 30),
    };
    let shards = plan.shard_count();

    let build_start = Instant::now();
    let mut sink = SpillSink::create(default_scratch_dir(), plan)
        .unwrap_or_else(|e| panic!("cannot create spill sink: {e}"));
    let mut rng = SmallRng::seed_from_u64(cli.seed ^ 0x0107_e8ed);
    gnp_edges(&mut sink, n, q, &mut rng).unwrap_or_else(|e| panic!("edge stream failed: {e}"));
    let disk = sink
        .finalize()
        .unwrap_or_else(|e| panic!("spill finalize failed: {e}"));
    let build_wall = build_start.elapsed();
    let entries = disk.edge_count();

    // Theorem 3.1 shape without a resident graph: estimate the
    // diameter of the giant component of G(n, 8/n) as 3·ln n / ln 8
    // (generous; the trial stops early once the frontier dies).
    let d_est = (3.0 * nf.ln() / 8f64.ln()).ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let horizon = ((2.0 * (d_est + 4.0 * nf.ln()) / (1.0 - P)).ceil() as usize).max(1);

    let flood = ShardedFlood::new(ShardStore::Disk(disk), 0, horizon);
    let trial_start = Instant::now();
    let out = flood
        .run_lane(P, cli.seeds().nth_seed(0), 0)
        .unwrap_or_else(|e| panic!("out-of-core trial failed: {e}"));
    let trial_wall = trial_start.elapsed();

    println!("out-of-core flood: n = {n}, mean degree 8, p = {P}, {shards} shard(s)");
    let mut table = Table::new(["metric", "value"]);
    #[allow(clippy::cast_precision_loss)]
    table
        .row(["adjacency entries", &format!("{entries}")])
        .row([
            "segment bytes",
            &fmt_gib(Some(4 * entries + 4 * (n as u64 + shards as u64))),
        ])
        .row(["build wall", &format!("{:.1}s", build_wall.as_secs_f64())])
        .row(["trial wall", &format!("{:.1}s", trial_wall.as_secs_f64())])
        .row(["horizon", &format!("{horizon}")])
        .row([
            "completed round",
            &out.completion_round()
                .map_or_else(|| "-".into(), |r| r.to_string()),
        ])
        .row([
            "informed fraction",
            &format!("{:.6}", out.informed_fraction()),
        ])
        .row([
            "almost-complete round",
            &out.almost_complete_round()
                .map_or_else(|| "-".into(), |r| r.to_string()),
        ])
        .row(["peak RSS (VmHWM)", &fmt_gib(peak_rss_bytes())]);
    println!("{}", table.render());
    println!(
        "expected: the giant component of G(n, 8/n) covers ~0.9997 of the nodes and\n\
         floods it in ~D/(1-p) + O(log n) rounds; peak RSS stays near the resident\n\
         bitsets + one shard segment, far below the full adjacency."
    );
}

/// One row per swept cell: engine, n, completion quantiles, informed
/// fraction, almost-complete median.
fn xl_table(specs: &[(&str, Scenario)], cells: &[CellResult]) -> Table {
    let mut table = Table::new([
        "engine",
        "n",
        "p",
        "horizon",
        "T p50",
        "T max",
        "informed frac",
        "almost-T p50",
    ]);
    for ((label, scenario), cell) in specs.iter().zip(cells) {
        let rounds: Vec<f64> = cell.outcomes.iter().filter_map(|o| o.rounds).collect();
        let almost: Vec<f64> = cell
            .outcomes
            .iter()
            .filter_map(|o| o.almost_rounds)
            .collect();
        let rq = QuantileSummary::from_unsorted(&rounds);
        let aq = QuantileSummary::from_unsorted(&almost);
        let fmt_q = |q: Option<QuantileSummary>, pick: fn(QuantileSummary) -> f64| {
            q.map_or_else(|| "-".into(), |s| fmt_f2(pick(s)))
        };
        let param = |key: &str| {
            cell.params
                .iter()
                .find(|(k, _)| k == key)
                .map_or_else(|| "-".into(), |(_, v)| v.clone())
        };
        table.row([
            (*label).to_owned(),
            param("n"),
            format!("{}", scenario.fault.p),
            param("rounds"),
            fmt_q(rq, |s| s.p50),
            fmt_q(rq, |s| s.max),
            cell.mean_informed_frac
                .map_or_else(|| "-".into(), |f| format!("{f:.5}")),
            fmt_q(aq, |s| s.p50),
        ]);
    }
    table
}
