//! SCALE — large-`n` flood throughput on scalable random-graph
//! families, through the bitset fast-path engine.
//!
//! Sweeps `Flood-Omission` completion time over Erdős–Rényi,
//! random-geometric, and preferential-attachment graphs up to `n = 10⁶`
//! (`--quick` caps at `n = 10⁴` for CI), reporting the distribution of
//! completion rounds (median / p90 / max), the mean informed fraction,
//! and the almost-complete (`1 − 1/n`) time — the regime of rapid
//! almost-complete broadcasting in faulty networks. The
//! random-geometric cells sit *below* their connectivity threshold at
//! large `n`, so their verdict column honestly reads `FAIL` for full
//! broadcast while the informed fraction stays near 1: that gap is the
//! almost-complete story, not a bug.

use randcast_bench::{banner, cli, write_json};
use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario};
use randcast_engine::fault::FaultConfig;
use randcast_stats::quantile::QuantileSummary;
use randcast_stats::table::{fmt_f2, Table};

fn main() {
    let cli = cli();
    banner(
        "SCALE (fast-path flood)",
        "Bitset-frontier flooding on gnp / random-geometric / preferential-attachment \
         graphs up to n = 10^6.",
    );
    let quick = cli.scale > 1;
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let ps: &[f64] = if quick { &[0.3] } else { &[0.1, 0.3, 0.6] };

    let mut sweep = cli.sweep("scale_flood");
    let mut specs = Vec::new();
    for &n in sizes {
        let families = [
            GraphFamily::Gnp {
                n,
                avg_deg: 8,
                seed: 97,
            },
            GraphFamily::RandomGeometric {
                n,
                deg: 12,
                seed: 98,
            },
            GraphFamily::PreferentialAttachment { n, m: 4, seed: 99 },
        ];
        // Trials scale down with n so full sweeps stay tractable; an
        // explicit --trials wins as everywhere.
        let trials = cli.cell_trials(if quick {
            cli.trials.min(8)
        } else {
            (2_000_000 / n).clamp(4, 48)
        });
        for family in families {
            // One build per (family, n): the same fixed-seed graph
            // serves every p cell (at n = 10⁶ the build dominates).
            let built = family.build();
            for &p in ps {
                let scenario = Scenario {
                    graph: family,
                    algorithm: Algorithm::FloodFast { horizon_scale: 1 },
                    model: Model::Mp,
                    fault: FaultConfig::omission(p),
                };
                specs.push(scenario);
                let prepared = scenario
                    .try_prepare_on(built.clone())
                    .expect("static scale-flood scenarios are valid");
                sweep.prepared(prepared, trials, Vec::new());
            }
        }
    }
    let result = sweep.run();

    let mut table = Table::new([
        "graph",
        "n",
        "p",
        "horizon",
        "T p50",
        "T p90",
        "T max",
        "informed frac",
        "almost-T p50",
    ]);
    for (scenario, cell) in specs.iter().zip(&result.cells) {
        let rounds: Vec<f64> = cell.outcomes.iter().filter_map(|o| o.rounds).collect();
        let almost: Vec<f64> = cell
            .outcomes
            .iter()
            .filter_map(|o| o.almost_rounds)
            .collect();
        let rq = QuantileSummary::from_unsorted(&rounds);
        let aq = QuantileSummary::from_unsorted(&almost);
        let fmt_q = |q: Option<QuantileSummary>, pick: fn(QuantileSummary) -> f64| {
            q.map_or_else(|| "-".into(), |s| fmt_f2(pick(s)))
        };
        let horizon = cell
            .params
            .iter()
            .find(|(k, _)| k == "rounds")
            .map_or_else(|| "-".into(), |(_, v)| v.clone());
        table.row([
            scenario.graph.label(),
            cell.params
                .iter()
                .find(|(k, _)| k == "n")
                .map_or_else(|| "-".into(), |(_, v)| v.clone()),
            format!("{}", scenario.fault.p),
            horizon,
            fmt_q(rq, |s| s.p50),
            fmt_q(rq, |s| s.p90),
            fmt_q(rq, |s| s.max),
            cell.mean_informed_frac
                .map_or_else(|| "-".into(), |f| format!("{f:.5}")),
            fmt_q(aq, |s| s.p50),
        ]);
    }
    println!("{}", table.render());
    write_json(&cli, &result);
    println!(
        "expected: completion time tracks D/(1-p) + O(log n) on every family; the\n\
         random-geometric cells below their connectivity threshold never finish the\n\
         full broadcast (verdict FAIL) yet hold informed fractions near 1 and reach\n\
         them in near-optimal time — the almost-complete broadcasting regime."
    );
}
