//! SCALE — large-`n` flood throughput on scalable random-graph
//! families, through the bitset fast-path engine.
//!
//! Sweeps `Flood-Omission` completion time over Erdős–Rényi,
//! random-geometric, and preferential-attachment graphs up to `n = 10⁶`
//! (`--quick` caps at `n = 10⁴` for CI), reporting the distribution of
//! completion rounds (median / p90 / max), the mean informed fraction,
//! and the almost-complete (`1 − 1/n`) time — the regime of rapid
//! almost-complete broadcasting in faulty networks. The
//! random-geometric cells sit *below* their connectivity threshold at
//! large `n`, so their verdict column honestly reads `FAIL` for full
//! broadcast while the informed fraction stays near 1: that gap is the
//! almost-complete story, not a bug.

use randcast_bench::{banner, cli, scale_sweep, scale_table, write_json};
use randcast_core::scenario::{Algorithm, Model};

fn main() {
    let cli = cli();
    banner(
        "SCALE (fast-path flood)",
        "Bitset-frontier flooding on gnp / random-geometric / preferential-attachment \
         graphs up to n = 10^6.",
    );
    let quick = cli.scale > 1;
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let ps: &[f64] = if quick { &[0.3] } else { &[0.1, 0.3, 0.6] };

    let mut sweep = cli.sweep("scale_flood");
    let specs = scale_sweep(
        &mut sweep,
        sizes,
        ps,
        [97, 98, 99],
        Algorithm::FloodFast { horizon_scale: 1 },
        Model::Mp,
        // Trials scale down with n so full sweeps stay tractable; an
        // explicit --trials wins as everywhere.
        |n| {
            cli.cell_trials(if quick {
                cli.trials.min(8)
            } else {
                (2_000_000 / n).clamp(4, 48)
            })
        },
    );
    let result = sweep.run();

    println!("{}", scale_table(&specs, &result.cells).render());
    write_json(&cli, &result);
    println!(
        "expected: completion time tracks D/(1-p) + O(log n) on every family; the\n\
         random-geometric cells below their connectivity threshold never finish the\n\
         full broadcast (verdict FAIL) yet hold informed fractions near 1 and reach\n\
         them in near-optimal time — the almost-complete broadcasting regime."
    );
}
