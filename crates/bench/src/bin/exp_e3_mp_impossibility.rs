//! E3 — Theorem 2.3: with malicious failures at `p ≥ 1/2`, no
//! message-passing algorithm is almost-safe; the two-node adversary pins
//! success at 1/2.
//!
//! Runs the repetition-with-majority receiver on the two-node graph
//! against the paper's opposite-message (flip) adversary. For `p > 1/2`
//! the throttling reduction brings the effective rate to exactly 1/2,
//! under which the received bits are i.i.d. uniform: success cannot leave
//! 1/2 *no matter how many rounds are spent* — that is the signature of
//! infeasibility, as opposed to the feasible regime where more rounds
//! drive success toward 1.

use randcast_bench::{banner, effort};
use randcast_core::datalink::run_two_node_majority;
use randcast_core::experiment::run_success_trials;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "E3 (Theorem 2.3)",
        "Two-node graph, malicious p >= 1/2: success pinned at 1/2 at every horizon.",
    );
    let trials = e.trials.max(300); // the interesting signal is a rate near 0.5
    let mut table = Table::new(["p", "rounds", "success", "note"]);
    for p in [0.5, 0.6, 0.75, 0.9] {
        for rounds in [11usize, 101, 1001] {
            let est = run_success_trials(trials, SeedSequence::new(40), |seed| {
                run_two_node_majority(rounds, p, seed % 2 == 0, seed)
            });
            table.row([
                format!("{p}"),
                rounds.to_string(),
                fmt_prob(est.rate()),
                if p > 0.5 { "throttled to 1/2" } else { "" }.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected: every success rate ≈ 0.5 — spending 100x more rounds buys nothing,\n\
         matching the posterior argument P(M0 | σ) = 1/2 of Theorem 2.3.\n\
         Contrast with E2, where below the threshold success approaches 1."
    );
}
