//! E3 — Theorem 2.3: with malicious failures at `p ≥ 1/2`, no
//! message-passing algorithm is almost-safe; the two-node adversary pins
//! success at 1/2.
//!
//! Runs the repetition-with-majority receiver on the two-node graph
//! against the paper's opposite-message (flip) adversary. For `p > 1/2`
//! the throttling reduction brings the effective rate to exactly 1/2,
//! under which the received bits are i.i.d. uniform: success cannot leave
//! 1/2 *no matter how many rounds are spent* — that is the signature of
//! infeasibility, as opposed to the feasible regime where more rounds
//! drive success toward 1.

use randcast_bench::{banner, cli, emit};
use randcast_core::datalink::run_two_node_majority;
use randcast_core::sweep::TrialOutcome;

fn main() {
    let cli = cli();
    banner(
        "E3 (Theorem 2.3)",
        "Two-node graph, malicious p >= 1/2: success pinned at 1/2 at every horizon.",
    );
    // The interesting signal is a rate near 0.5, so floor the default
    // trial count (an explicit --trials still wins).
    let trials = cli.cell_trials(cli.trials.max(300));
    let mut sweep = cli.sweep("e3_mp_impossibility");
    for p in [0.5, 0.6, 0.75, 0.9] {
        for rounds in [11usize, 101, 1001] {
            let note = if p > 0.5 { "throttled to 1/2" } else { "" };
            sweep.cell(
                [
                    ("p", format!("{p}")),
                    ("rounds", rounds.to_string()),
                    ("note", note.to_string()),
                ],
                trials,
                None,
                move |seed, _rng| {
                    TrialOutcome::pass(run_two_node_majority(rounds, p, seed % 2 == 0, seed))
                },
            );
        }
    }
    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: every success rate ≈ 0.5 — spending 100x more rounds buys nothing,\n\
         matching the posterior argument P(M0 | σ) = 1/2 of Theorem 2.3.\n\
         Contrast with E2, where below the threshold success approaches 1."
    );
}
