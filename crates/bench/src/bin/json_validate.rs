//! Validates sweep JSON reports produced by the experiment binaries'
//! `--json` flag (used by CI before uploading them as artifacts).
//!
//! ```sh
//! json_validate out/*.json
//! ```
//!
//! Exits 0 iff every file parses against the report schema; prints one
//! summary line per file.

use randcast_stats::report::SweepReport;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: json_validate FILE.json...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| SweepReport::from_json(&text).map_err(|e| e.to_string()));
        match outcome {
            Ok(report) => {
                println!(
                    "{path}: ok — experiment `{}`, {} cells",
                    report.experiment,
                    report.cells.len()
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
