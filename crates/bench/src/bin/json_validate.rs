//! Validates sweep JSON reports produced by the experiment binaries'
//! `--json` flag (used by CI before uploading them as artifacts).
//!
//! ```sh
//! json_validate out/*.json              # schema check only
//! json_validate --normalize a.json b.json
//! ```
//!
//! Exits 0 iff every file parses against the report schema; prints one
//! summary line per file. With `--normalize`, each valid file is
//! rewritten in place with the one nondeterministic field (`wall_ms`)
//! zeroed: two normalized reports from the same binary, seed, and
//! sweep extents are **byte-identical regardless of `--threads`** —
//! CI's determinism gate runs a sweep twice and `diff`s the results.

use randcast_stats::report::SweepReport;

const USAGE: &str = "usage: json_validate [--normalize] FILE.json...";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `--normalize` is accepted anywhere; any other flag-like argument
    // is rejected with usage (the workspace-wide unknown-flag contract)
    // rather than mistaken for a file path.
    let normalize = raw.iter().any(|a| a == "--normalize");
    let mut args = Vec::new();
    for arg in raw {
        if arg == "--normalize" {
            continue;
        }
        if arg.starts_with("--") {
            eprintln!("error: unknown argument `{arg}`\n\n{USAGE}");
            std::process::exit(2);
        }
        args.push(arg);
    }
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| SweepReport::from_json(&text).map_err(|e| e.to_string()));
        match outcome {
            Ok(mut report) => {
                if normalize {
                    for cell in &mut report.cells {
                        cell.wall_ms = 0.0;
                    }
                    if let Err(e) = std::fs::write(path, report.to_json()) {
                        eprintln!("{path}: cannot rewrite — {e}");
                        failed = true;
                        continue;
                    }
                }
                println!(
                    "{path}: ok — experiment `{}`, {} cells{}",
                    report.experiment,
                    report.cells.len(),
                    if normalize { ", normalized" } else { "" }
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
