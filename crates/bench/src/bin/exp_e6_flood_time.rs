//! E6 — Theorem 3.1: with node-omission failures, message-passing
//! broadcast completes in `Θ(D + log n)` rounds (BFS-tree flooding), and
//! this is optimal.
//!
//! Measures the empirical completion round of `Flood-Omission` across
//! growing paths (maximal `D`) and grids, checks the `D/(1−p) + O(log n)`
//! shape, and contrasts the naive `Simple-Omission` time `n·m` — the
//! `Θ(D + log n)` vs `Θ(n log n)` separation.

use randcast_bench::{banner, cli, write_json};
use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_core::simple::SimplePlan;
use randcast_engine::fault::FaultConfig;
use randcast_graph::traversal;
use randcast_stats::table::{fmt_f2, Table};

fn main() {
    let cli = cli();
    banner(
        "E6 (Theorem 3.1)",
        "Flood-Omission completes in Θ(D + log n); naive Simple-Omission needs n·m.",
    );
    let p = 0.4;
    let mut families = Vec::new();
    for len in [16usize, 32, 64, 128, 256] {
        families.push(GraphFamily::Path(len));
    }
    for side in [6usize, 12, 18] {
        families.push(GraphFamily::Grid(side, side));
    }
    families.push(GraphFamily::BalancedTree(2, 8));

    let mut sweep = cli.sweep("e6_flood_time");
    let mut analytics = Vec::new(); // (n, D, base, naive) per cell, sweep order
    for family in &families {
        let g = family.build();
        let d = traversal::radius_from(&g, g.node(0));
        let base = d as f64 / (1.0 - p);
        let naive = SimplePlan::omission_with_p(&g, g.node(0), p).total_rounds();
        analytics.push((g.node_count(), d, base, naive));
        sweep.scenario_with(
            Scenario {
                graph: *family,
                algorithm: Algorithm::Flood { horizon_scale: 2 }, // generous horizon
                model: Model::Mp,
                fault: FaultConfig::omission(p),
                shards: ShardSpec::Auto,
            },
            cli.trials,
            vec![
                ("D".into(), d.to_string()),
                ("D/(1-p)".into(), fmt_f2(base)),
                ("naive n·m".into(), naive.to_string()),
            ],
        );
    }
    let result = sweep.run();

    let mut table = Table::new([
        "graph",
        "n",
        "D",
        "mean T",
        "max T",
        "D/(1-p)",
        "(T-D/(1-p))/ln n",
        "naive n·m",
    ]);
    for ((family, cell), &(n, d, base, naive)) in families.iter().zip(&result.cells).zip(&analytics)
    {
        assert_eq!(
            cell.estimate.successes(),
            cell.estimate.trials(),
            "{}: generous horizon must complete",
            family.label()
        );
        let mean = cell.mean_rounds.expect("completed trials report rounds");
        let max = cell
            .outcomes
            .iter()
            .filter_map(|o| o.rounds)
            .fold(0.0f64, f64::max);
        table.row([
            family.label(),
            n.to_string(),
            d.to_string(),
            fmt_f2(mean),
            fmt_f2(max),
            fmt_f2(base),
            fmt_f2((mean - base) / (n as f64).ln()),
            naive.to_string(),
        ]);
    }
    println!("{}", table.render());
    write_json(&cli, &result);
    println!(
        "expected: mean T tracks D/(1-p) plus a term bounded by a constant multiple of\n\
         ln n (the residual column stays small and roughly flat), while the naive\n\
         algorithm's n·m column explodes — the Θ(D + log n) vs Θ(n log n) separation.\n\
         Lower bounds: T ≥ D always; T ≥ Ω(log n) since the source must win ~log n coins."
    );
}
