//! E6 — Theorem 3.1: with node-omission failures, message-passing
//! broadcast completes in `Θ(D + log n)` rounds (BFS-tree flooding), and
//! this is optimal.
//!
//! Measures the empirical completion round of `Flood-Omission` across
//! growing paths (maximal `D`) and grids, checks the `D/(1−p) + O(log n)`
//! shape, and contrasts the naive `Simple-Omission` time `n·m` — the
//! `Θ(D + log n)` vs `Θ(n log n)` separation.

use randcast_bench::{banner, effort};
use randcast_core::flood::{FloodPlan, FloodVariant};
use randcast_core::simple::SimplePlan;
use randcast_engine::fault::FaultConfig;
use randcast_graph::{generators, traversal, Graph};
use randcast_stats::estimate::Running;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_f2, Table};

fn measure(g: &Graph, p: f64, trials: usize, horizon: usize) -> (Running, usize) {
    let plan = FloodPlan::with_horizon(g, g.node(0), horizon, FloodVariant::Tree);
    let seeds = SeedSequence::new(70);
    let mut acc = Running::new();
    let mut incomplete = 0usize;
    for i in 0..trials {
        let out = plan.run(g, FaultConfig::omission(p), seeds.nth_seed(i as u64));
        match out.completion_round() {
            Some(r) => acc.push(r as f64),
            None => incomplete += 1,
        }
    }
    (acc, incomplete)
}

fn main() {
    let e = effort();
    banner(
        "E6 (Theorem 3.1)",
        "Flood-Omission completes in Θ(D + log n); naive Simple-Omission needs n·m.",
    );
    let p = 0.4;
    let mut table = Table::new([
        "graph",
        "n",
        "D",
        "mean T",
        "max T",
        "D/(1-p)",
        "(T-D/(1-p))/ln n",
        "naive n·m",
    ]);
    let mut graphs: Vec<(String, Graph)> = Vec::new();
    for len in [16usize, 32, 64, 128, 256] {
        graphs.push((format!("path-{len}"), generators::path(len)));
    }
    for side in [6usize, 12, 18] {
        graphs.push((format!("grid-{side}x{side}"), generators::grid(side, side)));
    }
    graphs.push(("tree-2-8".into(), generators::balanced_tree(2, 8)));

    for (name, g) in &graphs {
        let n = g.node_count();
        let d = traversal::radius_from(g, g.node(0));
        let generous = FloodPlan::new(g, g.node(0), p).horizon() * 2;
        let (acc, incomplete) = measure(g, p, e.trials, generous);
        assert_eq!(incomplete, 0, "{name}: generous horizon must complete");
        let base = d as f64 / (1.0 - p);
        let naive = SimplePlan::omission_with_p(g, g.node(0), p).total_rounds();
        table.row([
            name.clone(),
            n.to_string(),
            d.to_string(),
            fmt_f2(acc.mean()),
            fmt_f2(acc.max()),
            fmt_f2(base),
            fmt_f2((acc.mean() - base) / (n as f64).ln()),
            naive.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected: mean T tracks D/(1-p) plus a term bounded by a constant multiple of\n\
         ln n (the residual column stays small and roughly flat), while the naive\n\
         algorithm's n·m column explodes — the Θ(D + log n) vs Θ(n log n) separation.\n\
         Lower bounds: T ≥ D always; T ≥ Ω(log n) since the source must win ~log n coins."
    );
}
