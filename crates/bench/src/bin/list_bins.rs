//! Prints the name of every experiment binary (`exp_*`) in this
//! package, one per line — generated from the `src/bin` directory at
//! run time, so CI's sweep loop can never silently drop a new binary
//! from the JSON-artifact matrix the way a hand-maintained shell list
//! could.
//!
//! ```sh
//! for bin in $(cargo run --release -p randcast_bench --bin list_bins); do
//!     cargo run --release --bin "$bin" -- --quick --json "out/$bin.json"
//! done
//! ```

fn main() {
    for name in experiment_bins(concat!(env!("CARGO_MANIFEST_DIR"), "/src/bin")) {
        println!("{name}");
    }
}

/// The sorted `exp_*` binary names under `bin_dir` (every `.rs` file in
/// `src/bin` is a binary target under Cargo's auto-discovery).
fn experiment_bins(bin_dir: &str) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(bin_dir)
        .unwrap_or_else(|e| panic!("cannot read {bin_dir}: {e}"))
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            let stem = path.file_stem()?.to_str()?;
            (path.extension()?.to_str()? == "rs" && stem.starts_with("exp_"))
                .then(|| stem.to_owned())
        })
        .collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_every_experiment_binary() {
        let names = experiment_bins(concat!(env!("CARGO_MANIFEST_DIR"), "/src/bin"));
        // Sorted, exp_-prefixed, and covering the known suite.
        assert!(names.windows(2).all(|w| w[0] < w[1]), "{names:?}");
        assert!(names.iter().all(|n| n.starts_with("exp_")));
        for required in [
            "exp_e1_simple_omission",
            "exp_e10_radio_robust",
            "exp_decay_baseline",
            "exp_scale_flood",
            "exp_scale_radio",
        ] {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
        // Helpers must not leak into the sweep matrix.
        for helper in ["json_validate", "list_bins", "bench_gate"] {
            assert!(!names.iter().any(|n| n == helper));
        }
    }
}
