//! E8 — Lemma 3.3: the lower-bound graph `G(m)` has fault-free radio
//! broadcast time exactly `opt = m + 1`.
//!
//! * The explicit schedule (source, then each bit node alone) is
//!   validated for a range of `m`.
//! * For small `m`, exhaustive search over *all* schedules certifies
//!   that no `m`-round schedule exists.
//! * The greedy scheduler is compared against the optimum.

use randcast_bench::banner;
use randcast_core::lower_bound::lemma33_schedule;
use randcast_core::radio_sched::{greedy_schedule, optimal_broadcast_time};
use randcast_graph::generators;
use randcast_stats::table::Table;

fn main() {
    banner(
        "E8 (Lemma 3.3)",
        "G(m): fault-free radio broadcast takes exactly m + 1 rounds.",
    );
    let mut table = Table::new([
        "m",
        "n",
        "explicit (m+1)",
        "valid?",
        "greedy len",
        "brute-force opt",
    ]);
    for m in 1..=10usize {
        let g = generators::lower_bound_graph(m);
        let explicit = lemma33_schedule(m).to_radio_schedule();
        let valid = explicit.validate(&g, g.node(0)).is_ok();
        let greedy = greedy_schedule(&g, g.node(0));
        let opt = if m <= 3 {
            // Exhaustive certification: search up to m rounds fails, m+1
            // succeeds.
            assert_eq!(
                optimal_broadcast_time(&g, g.node(0), m),
                None,
                "m={m}: an m-round schedule must not exist"
            );
            optimal_broadcast_time(&g, g.node(0), m + 1)
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into())
        } else {
            "(n/a)".into()
        };
        table.row([
            m.to_string(),
            g.node_count().to_string(),
            explicit.len().to_string(),
            valid.to_string(),
            greedy.len().to_string(),
            opt,
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected: the explicit schedule is valid with m + 1 rounds for every m; for\n\
         m ≤ 3 brute force proves no m-round schedule exists (so opt = m + 1 exactly);\n\
         greedy matches or comes close."
    );
}
