//! E8 — Lemma 3.3: the lower-bound graph `G(m)` has fault-free radio
//! broadcast time exactly `opt = m + 1`.
//!
//! * The explicit schedule (source, then each bit node alone) is
//!   validated for a range of `m`.
//! * For small `m`, exhaustive search over *all* schedules certifies
//!   that no `m`-round schedule exists.
//! * The greedy scheduler is compared against the optimum.
//!
//! Every check is deterministic, so each cell runs a single "trial"
//! whose success means all of the row's certifications held.

use randcast_bench::{banner, cli, emit};
use randcast_core::lower_bound::lemma33_schedule;
use randcast_core::radio_sched::{greedy_schedule, optimal_broadcast_time};
use randcast_core::sweep::TrialOutcome;
use randcast_graph::generators;

fn main() {
    let cli = cli();
    banner(
        "E8 (Lemma 3.3)",
        "G(m): fault-free radio broadcast takes exactly m + 1 rounds.",
    );
    let mut sweep = cli.sweep("e8_opt_gm");
    for m in 1..=10usize {
        let g = generators::lower_bound_graph(m);
        let explicit = lemma33_schedule(m).to_radio_schedule();
        let greedy = greedy_schedule(&g, g.node(0));
        let explicit_len = explicit.len();
        let greedy_len = greedy.len();
        let n = g.node_count();
        let opt_label = if m <= 3 {
            (m + 1).to_string()
        } else {
            "(n/a)".into()
        };
        sweep.cell(
            [
                ("m", m.to_string()),
                ("n", n.to_string()),
                ("explicit (m+1)", explicit_len.to_string()),
                ("greedy len", greedy_len.to_string()),
                ("brute-force opt", opt_label),
            ],
            1,
            None,
            move |_seed, _rng| {
                let g = generators::lower_bound_graph(m);
                let source = g.node(0);
                let mut ok = explicit.validate(&g, source).is_ok() && explicit.len() == m + 1;
                if m <= 3 {
                    // Exhaustive certification: search up to m rounds
                    // fails, m + 1 succeeds.
                    ok &= optimal_broadcast_time(&g, source, m).is_none();
                    ok &= optimal_broadcast_time(&g, source, m + 1) == Some(m + 1);
                }
                TrialOutcome::with_rounds(ok, explicit_len as f64)
            },
        );
    }
    let result = sweep.run();
    assert!(
        result.cells.iter().all(|c| c.estimate.rate() == 1.0),
        "a Lemma 3.3 certification failed"
    );
    emit(&cli, &result);
    println!(
        "expected: the explicit schedule is valid with m + 1 rounds for every m (rate 1\n\
         in every row); for m ≤ 3 brute force proves no m-round schedule exists (so\n\
         opt = m + 1 exactly); greedy matches or comes close."
    );
}
