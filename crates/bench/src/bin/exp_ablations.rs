//! Ablations — the design choices the paper's proofs lean on, knocked
//! out one at a time (A1–A5 in `DESIGN.md`).
//!
//! * **A2** phase-length constant: halving the Chernoff-prescribed
//!   `m = ⌈c log n⌉` breaks almost-safety; doubling wastes time.
//! * **A3** Kučera composition structure: raw serialization is
//!   unrecoverable; flat bottom+top amplification costs `Θ(L log L)` vs
//!   interleaved \[CO1\]/\[CO2\]'s `O(L)` (constant per-hop cost).
//! * **A4** adversary strength on `Simple-Malicious` near `p = 1/2`:
//!   silent < random-bit < flip (flip is the binding attack).
//! * **A5** schedule shape on `G(m)`: singleton rounds vs multi-scale
//!   random subsets (the gap the Thm 3.3 lower bound formalizes).
//!
//! (A1, any-vote vs majority under a flip adversary, is asserted as a
//! unit test in `radio_robust`; its numbers appear in E10's module.)

use randcast_bench::{banner, cli, emit};
use randcast_core::kucera::Plan;
use randcast_core::lower_bound::{min_reps_for_target, LayerSchedule};
use randcast_core::simple::{SimplePlan, VoteMode};
use randcast_core::sweep::TrialOutcome;
use randcast_engine::adversary::{FlipMpAdversary, RandomBitMpAdversary};
use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::{MpAdversary, SilentMpAdversary};
use randcast_graph::generators;
use randcast_stats::chernoff;
use randcast_stats::table::fmt_f2;

fn main() {
    let cli = cli();
    banner(
        "Ablations",
        "Knocking out the proofs' design choices one at a time.",
    );
    let mut sweep = cli.sweep("ablations");

    // --- A2: the phase-length constant ---------------------------------
    // (grid-6x6, omission p = 0.6, m vs the Chernoff prescription m*)
    {
        let g = generators::grid(6, 6);
        let n = g.node_count();
        let p = 0.6;
        let m_star = chernoff::phase_len_omission(n, p);
        for factor in [0.25, 0.5, 1.0, 2.0] {
            let m = ((m_star as f64 * factor).round() as usize).max(1);
            let plan = SimplePlan::with_phase_len(&g, g.node(0), m, VoteMode::Any);
            let g = g.clone();
            sweep.cell(
                [
                    ("section", "A2".to_string()),
                    ("m / m*", format!("{factor}")),
                    ("m", m.to_string()),
                    ("rounds", plan.total_rounds().to_string()),
                ],
                cli.trials,
                Some(n),
                move |seed, _rng| {
                    TrialOutcome::pass(
                        plan.run_mp(&g, FaultConfig::omission(p), SilentMpAdversary, seed, true)
                            .all_correct(true),
                    )
                },
            );
        }
    }

    // --- A3: composition structure (analytic) ---------------------------
    for l in [64usize, 256, 1024] {
        let interleaved = Plan::for_line(l, 0.3, 1e-6).expect("p = 0.3 is feasible");
        a3_cell(&mut sweep, l, "CO1+CO2 interleaved (planner)", &interleaved);
        // Flat structure: amplify each hop once at the bottom (to a
        // union-bound budget of 0.05 over the whole line), one serial
        // pass, one top-level majority. Costs Θ(L log L): the bottom
        // repetition factor must grow with L.
        let bottom_top = Plan::basic(0.3)
            .amplify_to(0.05 / l as f64)
            .expect("amplifying a basic hop is feasible")
            .serial(l)
            .amplify_to(1e-6)
            .expect("amplifying the stitched line is feasible");
        a3_cell(&mut sweep, l, "CO2 bottom, CO1 once, CO2 top", &bottom_top);
    }
    // Serial-first: raw hops drive the error past 1/2, where no amount
    // of repetition can recover (majority amplification diverges).
    let serial_first = Plan::basic(0.3).serial(64);
    sweep.analytic([
        ("section", "A3".to_string()),
        ("L", "64".to_string()),
        ("construction", "CO1 only (raw hops)".to_string()),
        ("time", serial_first.time().to_string()),
        ("time/L", fmt_f2(1.0)),
        (
            "error bound",
            format!("{:.4} — unrecoverable (≥ 1/2)", serial_first.error_bound()),
        ),
    ]);

    // --- A4: adversary strength -----------------------------------------
    // Simple-Malicious (MP) on path-12 at p = 0.45.
    {
        let p = 0.45;
        a4_cell(
            &mut sweep,
            &cli,
            "silent (≡ omission)",
            SilentMpAdversary,
            p,
        );
        a4_cell(&mut sweep, &cli, "random bit", RandomBitMpAdversary, p);
        a4_cell(&mut sweep, &cli, "flip (worst case)", FlipMpAdversary, p);
    }

    // --- A5: schedule shape on G(m) --------------------------------------
    // (p = 0.5, union-bound target 1/n; analytic search)
    for m in [6usize, 10, 14] {
        let n = (1usize << m) + m;
        let target = 1.0 / n as f64;
        let (_, single) = min_reps_for_target(|r| LayerSchedule::singletons(m, r), 0.5, target);
        let mut seq = cli.seeds().child(0xA5).child(m as u64);
        let (_, scale) = min_reps_for_target(
            |r| {
                let mut rng = seq.nth_rng(r as u64);
                seq = seq.child(r as u64);
                LayerSchedule::scales(m, r, &mut rng)
            },
            0.5,
            target,
        );
        sweep.analytic([
            ("section", "A5".to_string()),
            ("m", m.to_string()),
            ("singleton rounds", single.to_string()),
            ("scale rounds", scale.to_string()),
            ("ratio", fmt_f2(single as f64 / scale as f64)),
        ]);
    }

    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: A2 — below m* the success cliff appears; A3 — raw serialization is\n\
         unrecoverable (error ≥ 1/2) so amplification structure is mandatory; the flat\n\
         bottom+top structure costs Θ(L log L) (per-hop cost creeping up with L) while\n\
         interleaving holds a constant per-hop cost; A4 — flip is the binding adversary\n\
         near the threshold; A5 — multi-scale schedules beat singletons by a growing\n\
         factor (≈ m / log m)."
    );
}

fn a3_cell(sweep: &mut randcast_core::sweep::Sweep<'_>, l: usize, construction: &str, plan: &Plan) {
    sweep.analytic([
        ("section", "A3".to_string()),
        ("L", l.to_string()),
        ("construction", construction.to_string()),
        ("time", plan.time().to_string()),
        ("time/L", fmt_f2(plan.time() as f64 / l as f64)),
        ("error bound", format!("{:.1e}", plan.error_bound())),
    ]);
}

fn a4_cell<'a, A>(
    sweep: &mut randcast_core::sweep::Sweep<'a>,
    cli: &randcast_bench::Cli,
    name: &str,
    adversary: A,
    p: f64,
) where
    A: MpAdversary<bool> + Copy + Sync + 'a,
{
    let g = generators::path(12);
    let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
    sweep.cell(
        [
            ("section", "A4".to_string()),
            ("adversary", name.to_string()),
        ],
        cli.trials,
        None,
        move |seed, _rng| {
            TrialOutcome::pass(
                plan.run_mp(&g, FaultConfig::malicious(p), adversary, seed, true)
                    .all_correct(true),
            )
        },
    );
}
