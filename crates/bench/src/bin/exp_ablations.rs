//! Ablations — the design choices the paper's proofs lean on, knocked
//! out one at a time (A1–A5 in `DESIGN.md`).
//!
//! * **A2** phase-length constant: halving the Chernoff-prescribed
//!   `m = ⌈c log n⌉` breaks almost-safety; doubling wastes time.
//! * **A3** Kučera composition structure: raw serialization is
//!   unrecoverable; flat bottom+top amplification costs `Θ(L log L)` vs
//!   interleaved \[CO1\]/\[CO2\]'s `O(L)` (constant per-hop cost).
//! * **A4** adversary strength on `Simple-Malicious` near `p = 1/2`:
//!   silent < random-bit < flip (flip is the binding attack).
//! * **A5** schedule shape on `G(m)`: singleton rounds vs multi-scale
//!   random subsets (the gap the Thm 3.3 lower bound formalizes).
//!
//! (A1, any-vote vs majority under a flip adversary, is asserted as a
//! unit test in `radio_robust`; its numbers appear in E10's module.)

use randcast_bench::{banner, effort};
use randcast_core::experiment::run_success_trials;
use randcast_core::kucera::Plan;
use randcast_core::lower_bound::{min_reps_for_target, LayerSchedule};
use randcast_core::simple::{SimplePlan, VoteMode};
use randcast_engine::adversary::{FlipMpAdversary, RandomBitMpAdversary};
use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::SilentMpAdversary;
use randcast_graph::generators;
use randcast_stats::chernoff;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_f2, fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "Ablations",
        "Knocking out the proofs' design choices one at a time.",
    );

    // --- A2: the phase-length constant ---------------------------------
    println!("A2. phase length m vs the Chernoff prescription (grid-6x6, omission p = 0.6):");
    let g = generators::grid(6, 6);
    let n = g.node_count();
    let p = 0.6;
    let m_star = chernoff::phase_len_omission(n, p);
    let mut t = Table::new(["m / m*", "m", "rounds", "success", "target 1-1/n"]);
    for factor in [0.25, 0.5, 1.0, 2.0] {
        let m = ((m_star as f64 * factor).round() as usize).max(1);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), m, VoteMode::Any);
        let est = run_success_trials(e.trials, SeedSequence::new(110), |seed| {
            plan.run_mp(&g, FaultConfig::omission(p), SilentMpAdversary, seed, true)
                .all_correct(true)
        });
        t.row([
            format!("{factor}"),
            m.to_string(),
            plan.total_rounds().to_string(),
            fmt_prob(est.rate()),
            fmt_prob(1.0 - 1.0 / n as f64),
        ]);
    }
    println!("{}", t.render());

    // --- A3: composition structure --------------------------------------
    println!("A3. Kučera composition structure (p = 0.3, target error 1e-6):");
    let mut t = Table::new(["L", "construction", "time", "time/L", "error bound"]);
    for l in [64usize, 256, 1024] {
        let interleaved = Plan::for_line(l, 0.3, 1e-6);
        t.row([
            l.to_string(),
            "CO1+CO2 interleaved (planner)".to_string(),
            interleaved.time().to_string(),
            fmt_f2(interleaved.time() as f64 / l as f64),
            format!("{:.1e}", interleaved.error_bound()),
        ]);
        // Flat structure: amplify each hop once at the bottom (to a
        // union-bound budget of 0.05 over the whole line), one serial
        // pass, one top-level majority. Costs Θ(L log L): the bottom
        // repetition factor must grow with L.
        let bottom_top = Plan::basic(0.3)
            .amplify_to(0.05 / l as f64)
            .serial(l)
            .amplify_to(1e-6);
        t.row([
            l.to_string(),
            "CO2 bottom, CO1 once, CO2 top".to_string(),
            bottom_top.time().to_string(),
            fmt_f2(bottom_top.time() as f64 / l as f64),
            format!("{:.1e}", bottom_top.error_bound()),
        ]);
    }
    // Serial-first: raw hops drive the error past 1/2, where no amount
    // of repetition can recover (majority amplification diverges).
    let serial_first = Plan::basic(0.3).serial(64);
    t.row([
        "64".to_string(),
        "CO1 only (raw hops)".to_string(),
        serial_first.time().to_string(),
        fmt_f2(1.0),
        format!("{:.4} — unrecoverable (≥ 1/2)", serial_first.error_bound()),
    ]);
    println!("{}", t.render());

    // --- A4: adversary strength -----------------------------------------
    println!("A4. Simple-Malicious (MP) vs adversary strength (path-12, p = 0.45):");
    let g = generators::path(12);
    let p = 0.45;
    let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
    let mut t = Table::new(["adversary", "success"]);
    let silent = run_success_trials(e.trials, SeedSequence::new(111), |seed| {
        plan.run_mp(&g, FaultConfig::malicious(p), SilentMpAdversary, seed, true)
            .all_correct(true)
    });
    let random = run_success_trials(e.trials, SeedSequence::new(112), |seed| {
        plan.run_mp(
            &g,
            FaultConfig::malicious(p),
            RandomBitMpAdversary,
            seed,
            true,
        )
        .all_correct(true)
    });
    let flip = run_success_trials(e.trials, SeedSequence::new(113), |seed| {
        plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, true)
            .all_correct(true)
    });
    t.row(["silent (≡ omission)".to_string(), fmt_prob(silent.rate())]);
    t.row(["random bit".to_string(), fmt_prob(random.rate())]);
    t.row(["flip (worst case)".to_string(), fmt_prob(flip.rate())]);
    println!("{}", t.render());

    // --- A5: schedule shape on G(m) --------------------------------------
    println!("A5. G(m) schedule shape at p = 0.5 (union-bound target 1/n):");
    let mut t = Table::new(["m", "singleton rounds", "scale rounds", "ratio"]);
    for m in [6usize, 10, 14] {
        let n = (1usize << m) + m;
        let target = 1.0 / n as f64;
        let (_, single) = min_reps_for_target(|r| LayerSchedule::singletons(m, r), 0.5, target);
        let mut seq = SeedSequence::new(114);
        let (_, scale) = min_reps_for_target(
            |r| {
                let mut rng = seq.nth_rng(r as u64);
                seq = seq.child(r as u64);
                LayerSchedule::scales(m, r, &mut rng)
            },
            0.5,
            target,
        );
        t.row([
            m.to_string(),
            single.to_string(),
            scale.to_string(),
            fmt_f2(single as f64 / scale as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected: A2 — below m* the success cliff appears; A3 — raw serialization is\n\
         unrecoverable (error ≥ 1/2) so amplification structure is mandatory; the flat\n\
         bottom+top structure costs Θ(L log L) (per-hop cost creeping up with L) while\n\
         interleaving holds a constant per-hop cost; A4 — flip is the binding adversary\n\
         near the threshold; A5 — multi-scale schedules beat singletons by a growing\n\
         factor (≈ m / log m)."
    );
}
