//! E1 — Theorem 2.1: `Simple-Omission` is almost-safe for any `p < 1`,
//! in both the message-passing and the radio model.
//!
//! For each graph in the standard suite and each failure probability,
//! runs `Simple-Omission` with the prescribed phase length
//! `m = ⌈2 ln n / ln(1/p)⌉` and reports the measured success rate against
//! the almost-safety target `1 − 1/n`.

use randcast_bench::{banner, cli, emit};
use randcast_core::scenario::{standard_families, Algorithm, Model, Scenario, ShardSpec};
use randcast_engine::fault::FaultConfig;

fn main() {
    let cli = cli();
    banner(
        "E1 (Theorem 2.1)",
        "Simple-Omission: almost-safe for every p < 1 in both models; time n·m.",
    );
    let mut sweep = cli.sweep("e1_simple_omission");
    for family in standard_families() {
        for p in [0.3, 0.6, 0.9] {
            for model in [Model::Mp, Model::Radio] {
                sweep.scenario(
                    Scenario {
                        graph: family,
                        algorithm: Algorithm::Simple,
                        model,
                        fault: FaultConfig::omission(p),
                        shards: ShardSpec::Auto,
                    },
                    cli.trials,
                );
            }
        }
    }
    let result = sweep.run();
    emit(&cli, &result);
    println!("expected: every row passes (success ≥ 1 − 1/n) — feasibility holds for all p < 1.");
}
