//! E1 — Theorem 2.1: `Simple-Omission` is almost-safe for any `p < 1`,
//! in both the message-passing and the radio model.
//!
//! For each graph in the standard suite and each failure probability,
//! runs `Simple-Omission` with the prescribed phase length
//! `m = ⌈2 ln n / ln(1/p)⌉` and reports the measured success rate against
//! the almost-safety target `1 − 1/n`.

use randcast_bench::{banner, effort, standard_suite};
use randcast_core::experiment::{run_success_trials, AlmostSafeRow};
use randcast_core::simple::SimplePlan;
use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::SilentMpAdversary;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "E1 (Theorem 2.1)",
        "Simple-Omission: almost-safe for every p < 1 in both models; time n·m.",
    );
    let mut table = Table::new([
        "graph", "n", "p", "m", "rounds", "model", "success", "target", "verdict",
    ]);
    let bit = true;
    for (name, g) in standard_suite() {
        let n = g.node_count();
        let source = g.node(0);
        for p in [0.3, 0.6, 0.9] {
            let plan = SimplePlan::omission_with_p(&g, source, p);
            let fault = FaultConfig::omission(p);

            let mp = run_success_trials(e.trials, SeedSequence::new(10), |seed| {
                plan.run_mp(&g, fault, SilentMpAdversary, seed, bit)
                    .all_correct(bit)
            });
            let row = AlmostSafeRow::judge(mp, n);
            table.row([
                name.to_string(),
                n.to_string(),
                format!("{p}"),
                plan.phase_len().to_string(),
                plan.total_rounds().to_string(),
                "mp".into(),
                fmt_prob(mp.rate()),
                fmt_prob(row.target()),
                row.label(),
            ]);

            let radio = run_success_trials(e.trials, SeedSequence::new(20), |seed| {
                plan.run_radio(&g, fault, SilentRadioAdversary, seed, bit)
                    .all_correct(bit)
            });
            let row = AlmostSafeRow::judge(radio, n);
            table.row([
                name.to_string(),
                n.to_string(),
                format!("{p}"),
                plan.phase_len().to_string(),
                plan.total_rounds().to_string(),
                "radio".into(),
                fmt_prob(radio.rate()),
                fmt_prob(row.target()),
                row.label(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("expected: every row passes (success ≥ 1 − 1/n) — feasibility holds for all p < 1.");
}
