//! SCALE — large-`n` radio broadcast (Decay) on scalable random-graph
//! families, through the bitset collision-counting fast-path kernel.
//!
//! Sweeps Decay completion time under omission faults over Erdős–Rényi,
//! random-geometric, and preferential-attachment graphs up to `n = 10⁶`
//! (`--quick` caps at `n = 10⁴` for CI), reporting the distribution of
//! completion rounds (median / p90 / max), the mean informed fraction,
//! and the almost-complete (`1 − 1/n`) time. This is the radio-model
//! sibling of `exp_scale_flood`: the sizes where the `Θ(D + log n)` vs
//! `Θ((D + log n) · log n)` asymptotics of the radio back-off are
//! actually visible, and where the random-geometric cells sit *below*
//! their connectivity threshold — the verdict column honestly reads
//! `FAIL` for full broadcast while the informed fraction stays near 1.
//! That gap is the almost-complete broadcasting regime, not a bug.

use randcast_bench::{banner, cli, scale_sweep, scale_table, write_json};
use randcast_core::scenario::{Algorithm, Model};

fn main() {
    let cli = cli();
    banner(
        "SCALE (fast-path radio)",
        "Collision-counting Decay broadcast on gnp / random-geometric / \
         preferential-attachment graphs up to n = 10^6.",
    );
    let quick = cli.scale > 1;
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let ps: &[f64] = if quick { &[0.3] } else { &[0.1, 0.3, 0.6] };

    let mut sweep = cli.sweep("scale_radio");
    let specs = scale_sweep(
        &mut sweep,
        sizes,
        ps,
        [87, 88, 89],
        // Factor 3 keeps completion probable through the p = 0.6 cells
        // (omission scales the effective transmission probability by
        // 1 − p).
        Algorithm::DecayFast { epoch_factor: 3 },
        Model::Radio,
        // Radio trials cost ~log n more than flood trials (the decay
        // back-off), so counts scale down harder with n; an explicit
        // --trials wins as everywhere.
        |n| {
            cli.cell_trials(if quick {
                cli.trials.min(8)
            } else {
                (1_000_000 / n).clamp(2, 24)
            })
        },
    );
    let result = sweep.run();

    println!("{}", scale_table(&specs, &result.cells).render());
    write_json(&cli, &result);
    println!(
        "expected: completion time tracks (D + log n)·log n / (1-p) on every family —\n\
         the extra log n over flooding is the decay back-off paying for collision\n\
         freedom; the random-geometric cells below their connectivity threshold never\n\
         finish the full broadcast (verdict FAIL) yet hold informed fractions near 1."
    );
}
