//! E5 — Theorem 2.4: malicious radio broadcast is feasible iff
//! `p < p*(Δ)`, the fixed point of `p = (1 − p)^{Δ+1}`.
//!
//! Three sections (one table each):
//!
//! * the threshold table `p*(Δ)` and the clean-reception rate at it;
//! * **infeasibility probes** on the paper's star (source = leaf,
//!   receiver = center): the lie-or-jam adversary makes clean lies
//!   arrive at rate `p` and clean truths at rate `q = (1 − p)^{Δ+1}`;
//!   at and beyond the threshold, majority decoding degrades to a coin
//!   flip or worse, and no horizon helps;
//! * the **feasible side** (`p = 0.5·p*`): `Simple-Malicious` with the
//!   prescribed phase length passes the almost-safety bar on stars.

use randcast_bench::{banner, cli, emit};
use randcast_core::feasibility::{radio_clean_reception_prob, radio_threshold};
use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_core::sweep::TrialOutcome;
use randcast_engine::adversary::LieOrJamAdversary;
use randcast_engine::fault::FaultConfig;
use randcast_engine::radio::{RadioAction, RadioNetwork, RadioNode};
use randcast_graph::generators;

/// The Theorem 2.4 star experiment: leaf `1` repeats the source bit every
/// round; everyone else listens; the center (node 0) majority-decodes.
struct StarNode {
    is_speaker: bool,
    ones: usize,
    total: usize,
}

impl RadioNode for StarNode {
    type Msg = bool;
    fn act(&mut self, _round: usize) -> RadioAction<bool> {
        if self.is_speaker {
            RadioAction::Transmit(true)
        } else {
            RadioAction::Listen
        }
    }
    fn recv(&mut self, _round: usize, heard: Option<bool>) {
        if let Some(b) = heard {
            self.total += 1;
            self.ones += usize::from(b);
        }
    }
}

/// One trial: does the center's majority equal the source bit (`true`)?
fn center_decodes(delta: usize, p: f64, rounds: usize, seed: u64) -> bool {
    let g = generators::star(delta);
    let mut net = RadioNetwork::with_adversary(
        &g,
        FaultConfig::malicious(p),
        LieOrJamAdversary::new(true),
        seed,
        |v| StarNode {
            is_speaker: v.index() == 1,
            ones: 0,
            total: 0,
        },
    );
    net.run(rounds);
    let c = net.node(g.node(0));
    2 * c.ones > c.total
}

fn main() {
    let cli = cli();
    banner(
        "E5 (Theorem 2.4)",
        "Radio malicious threshold p*(Δ): p = (1-p)^(Δ+1).",
    );
    let mut sweep = cli.sweep("e5_radio_threshold");

    // Threshold table (analytic rows — no trials).
    for delta in [1usize, 2, 4, 8, 16, 32] {
        let p = radio_threshold(delta);
        sweep.analytic([
            ("Δ", delta.to_string()),
            ("p*(Δ)", format!("{p:.6}")),
            (
                "q(p*) = (1-p*)^(Δ+1)",
                format!("{:.6}", radio_clean_reception_prob(p, delta)),
            ),
        ]);
    }

    // Star K_{1,Δ}, source = leaf, receiver = center, lie-or-jam.
    for delta in [2usize, 4, 8] {
        let p_star = radio_threshold(delta);
        for factor in [0.5, 0.8, 1.0, 1.2, 1.5] {
            let p = (p_star * factor).min(0.95);
            for rounds in [201usize, 2001] {
                sweep.cell(
                    [
                        ("Δ", delta.to_string()),
                        ("p/p*", format!("{factor:.1}")),
                        ("p", format!("{p:.4}")),
                        ("rounds", rounds.to_string()),
                    ],
                    cli.trials,
                    None,
                    move |seed, _rng| TrialOutcome::pass(center_decodes(delta, p, rounds, seed)),
                );
            }
        }
    }

    // Feasible side, full broadcast: Simple-Malicious on stars.
    for delta in [2usize, 4, 8] {
        let p = radio_threshold(delta) * 0.5;
        sweep.scenario(
            Scenario {
                graph: GraphFamily::Star(delta),
                algorithm: Algorithm::Simple,
                model: Model::Radio,
                fault: FaultConfig::malicious(p),
                shards: ShardSpec::Auto,
            },
            cli.trials,
        );
    }

    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: center success > 1/2 for p < p*, ≈ or < 1/2 at p ≥ p* (more rounds\n\
         do not help past the threshold); the feasible-side rows pass almost-safety."
    );
}
