//! E5 — Theorem 2.4: malicious radio broadcast is feasible iff
//! `p < p*(Δ)`, the fixed point of `p = (1 − p)^{Δ+1}`.
//!
//! Two directions:
//!
//! * **Feasibility** (`p < p*`): `Simple-Malicious` with the prescribed
//!   phase length passes the almost-safety bar on stars, against the
//!   lie-or-jam adversary.
//! * **Infeasibility** (`p ≥ p*`): on the paper's star (source = leaf,
//!   receiver = center), the lie-or-jam adversary makes clean lies
//!   arrive at rate `p` and clean truths at rate `q = (1 − p)^{Δ+1}`;
//!   at and beyond the threshold, majority decoding degrades to a coin
//!   flip or worse, and no horizon helps.

use randcast_bench::{banner, effort};
use randcast_core::experiment::{run_success_trials, AlmostSafeRow};
use randcast_core::feasibility::{radio_clean_reception_prob, radio_threshold};
use randcast_core::simple::SimplePlan;
use randcast_engine::adversary::LieOrJamAdversary;
use randcast_engine::fault::FaultConfig;
use randcast_engine::radio::{RadioAction, RadioNetwork, RadioNode};
use randcast_graph::generators;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_prob, Table};

/// The Theorem 2.4 star experiment: leaf `1` repeats the source bit every
/// round; everyone else listens; the center (node 0) majority-decodes.
struct StarNode {
    is_speaker: bool,
    ones: usize,
    total: usize,
}

impl RadioNode for StarNode {
    type Msg = bool;
    fn act(&mut self, _round: usize) -> RadioAction<bool> {
        if self.is_speaker {
            RadioAction::Transmit(true)
        } else {
            RadioAction::Listen
        }
    }
    fn recv(&mut self, _round: usize, heard: Option<bool>) {
        if let Some(b) = heard {
            self.total += 1;
            self.ones += usize::from(b);
        }
    }
}

/// One trial: does the center's majority equal the source bit (`true`)?
fn center_decodes(delta: usize, p: f64, rounds: usize, seed: u64) -> bool {
    let g = generators::star(delta);
    let mut net = RadioNetwork::with_adversary(
        &g,
        FaultConfig::malicious(p),
        LieOrJamAdversary::new(true),
        seed,
        |v| StarNode {
            is_speaker: v.index() == 1,
            ones: 0,
            total: 0,
        },
    );
    net.run(rounds);
    let c = net.node(g.node(0));
    2 * c.ones > c.total
}

fn main() {
    let e = effort();
    banner(
        "E5 (Theorem 2.4)",
        "Radio malicious threshold p*(Δ): p = (1-p)^(Δ+1).",
    );

    println!("threshold table:");
    let mut t = Table::new(["Δ", "p*(Δ)", "q(p*) = (1-p*)^(Δ+1)"]);
    for delta in [1usize, 2, 4, 8, 16, 32] {
        let p = radio_threshold(delta);
        t.row([
            delta.to_string(),
            format!("{p:.6}"),
            format!("{:.6}", radio_clean_reception_prob(p, delta)),
        ]);
    }
    println!("{}", t.render());

    println!("star K_{{1,Δ}}, source = leaf, receiver = center, lie-or-jam adversary:");
    let mut t = Table::new(["Δ", "p/p*", "p", "rounds", "center success"]);
    for delta in [2usize, 4, 8] {
        let p_star = radio_threshold(delta);
        for factor in [0.5, 0.8, 1.0, 1.2, 1.5] {
            let p = (p_star * factor).min(0.95);
            for rounds in [201usize, 2001] {
                let est = run_success_trials(e.trials, SeedSequence::new(60), |seed| {
                    center_decodes(delta, p, rounds, seed)
                });
                t.row([
                    delta.to_string(),
                    format!("{factor:.1}"),
                    format!("{p:.4}"),
                    rounds.to_string(),
                    fmt_prob(est.rate()),
                ]);
            }
        }
    }
    println!("{}", t.render());

    println!("feasible side, full broadcast: Simple-Malicious on stars, p = 0.5·p*(Δ):");
    let mut t = Table::new(["Δ", "n", "p", "m", "success", "target", "verdict"]);
    let bit = true;
    for delta in [2usize, 4, 8] {
        let g = generators::star(delta);
        let n = g.node_count();
        let p = radio_threshold(delta) * 0.5;
        let plan = SimplePlan::malicious_radio(&g, g.node(0), p);
        let est = run_success_trials(e.trials, SeedSequence::new(61), |seed| {
            plan.run_radio(
                &g,
                FaultConfig::malicious(p),
                LieOrJamAdversary::new(bit),
                seed,
                bit,
            )
            .all_correct(bit)
        });
        let row = AlmostSafeRow::judge(est, n);
        t.row([
            delta.to_string(),
            n.to_string(),
            format!("{p:.4}"),
            plan.phase_len().to_string(),
            fmt_prob(est.rate()),
            fmt_prob(row.target()),
            row.label(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected: center success > 1/2 for p < p*, ≈ or < 1/2 at p ≥ p* (more rounds\n\
         do not help past the threshold); the feasible-side rows pass almost-safety."
    );
}
