//! E7 — Theorem 3.2: limited-malicious message-passing broadcast in
//! `O(D + log^α n)` rounds for any `p < 1/2`, via Kučera's composed line
//! algorithm lifted to BFS-tree branches.
//!
//! Three views:
//!
//! 1. **Lines, time shape**: plan time `τ(L)` stays `O(L)` as the line
//!    grows, at per-branch error `≤ 1/(2n²)` (the almost-safety budget).
//! 2. **Error-target sweep**: the time cost of error
//!    `exp(−L^{1/α})` for various `α` (the paper's `D + log^α n`
//!    trade-off knob).
//! 3. **Trees, end-to-end**: success rate of the full broadcast against
//!    the flip adversary on tree-shaped and grid networks.

use randcast_bench::{banner, effort, standard_suite};
use randcast_core::experiment::{run_success_trials, AlmostSafeRow};
use randcast_core::kucera::{FailureBehavior, KuceraBroadcast, Plan};
use randcast_graph::traversal;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_f2, fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "E7 (Theorem 3.2)",
        "Kučera composition: limited-malicious MP broadcast in O(D + log^α n), p < 1/2.",
    );

    println!("1. line time shape at per-branch error 1e-6:");
    let mut t = Table::new(["L", "p", "τ", "τ/L", "plan error bound"]);
    for p in [0.1, 0.25, 0.4] {
        for l in [16usize, 32, 64, 128, 256, 512] {
            let plan = Plan::for_line(l, p, 1e-6);
            t.row([
                l.to_string(),
                format!("{p}"),
                plan.time().to_string(),
                fmt_f2(plan.time() as f64 / l as f64),
                format!("{:.2e}", plan.error_bound()),
            ]);
        }
    }
    println!("{}", t.render());

    println!("2. cost of the α knob (L = 128, p = 0.25, target exp(-L^(1/α))):");
    let mut t = Table::new(["α", "target error", "τ", "τ/L"]);
    for alpha in [1.2f64, 1.5, 2.0, 3.0] {
        let l = 128usize;
        let p = 0.25;
        let target = (-(l as f64).powf(1.0 / alpha)).exp();
        let plan = Plan::for_line(l, p, target);
        t.row([
            format!("{alpha}"),
            format!("{target:.2e}"),
            plan.time().to_string(),
            fmt_f2(plan.time() as f64 / l as f64),
        ]);
    }
    println!("{}", t.render());

    println!("3. end-to-end broadcast on the standard suite (flip adversary):");
    let mut t = Table::new(["graph", "n", "D", "p", "τ", "success", "target", "verdict"]);
    let bit = true;
    for (name, g) in standard_suite() {
        let n = g.node_count();
        let d = traversal::radius_from(&g, g.node(0));
        for p in [0.2, 0.4] {
            let kb = KuceraBroadcast::new(&g, g.node(0), p);
            let est = run_success_trials(e.trials, SeedSequence::new(80), |seed| {
                kb.run(&g, p, FailureBehavior::Flip, seed, bit)
                    .all_correct(bit)
            });
            let row = AlmostSafeRow::judge(est, n);
            t.row([
                name.to_string(),
                n.to_string(),
                d.to_string(),
                format!("{p}"),
                kb.time().to_string(),
                fmt_prob(est.rate()),
                fmt_prob(row.target()),
                row.label(),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "expected: τ/L flat in part 1 (time linear in the line length at fixed error);\n\
         smaller α buys stronger error at more time in part 2; all rows pass in part 3."
    );
}
