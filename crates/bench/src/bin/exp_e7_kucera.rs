//! E7 — Theorem 3.2: limited-malicious message-passing broadcast in
//! `O(D + log^α n)` rounds for any `p < 1/2`, via Kučera's composed line
//! algorithm lifted to BFS-tree branches.
//!
//! Three views:
//!
//! 1. **Lines, time shape**: plan time `τ(L)` stays `O(L)` as the line
//!    grows, at per-branch error `≤ 1/(2n²)` (the almost-safety budget).
//! 2. **Error-target sweep**: the time cost of error
//!    `exp(−L^{1/α})` for various `α` (the paper's `D + log^α n`
//!    trade-off knob).
//! 3. **Trees, end-to-end**: success rate of the full broadcast against
//!    the flip adversary on tree-shaped and grid networks.

use randcast_bench::{banner, cli, emit};
use randcast_core::kucera::Plan;
use randcast_core::scenario::{standard_families, Algorithm, Model, Scenario, ShardSpec};
use randcast_engine::fault::FaultConfig;
use randcast_graph::traversal;
use randcast_stats::table::fmt_f2;

fn main() {
    let cli = cli();
    banner(
        "E7 (Theorem 3.2)",
        "Kučera composition: limited-malicious MP broadcast in O(D + log^α n), p < 1/2.",
    );
    let mut sweep = cli.sweep("e7_kucera");

    // 1. Line time shape at per-branch error 1e-6 (analytic rows).
    for p in [0.1, 0.25, 0.4] {
        for l in [16usize, 32, 64, 128, 256, 512] {
            let plan = Plan::for_line(l, p, 1e-6).expect("p < 1/2 is feasible");
            sweep.analytic([
                ("L", l.to_string()),
                ("p", format!("{p}")),
                ("τ", plan.time().to_string()),
                ("τ/L", fmt_f2(plan.time() as f64 / l as f64)),
                ("plan error bound", format!("{:.2e}", plan.error_bound())),
            ]);
        }
    }

    // 2. Cost of the α knob (L = 128, p = 0.25, target exp(-L^(1/α))).
    for alpha in [1.2f64, 1.5, 2.0, 3.0] {
        let l = 128usize;
        let p = 0.25;
        let target = (-(l as f64).powf(1.0 / alpha)).exp();
        let plan = Plan::for_line(l, p, target).expect("p < 1/2 is feasible");
        sweep.analytic([
            ("α", format!("{alpha}")),
            ("target error", format!("{target:.2e}")),
            ("τ", plan.time().to_string()),
            ("τ/L", fmt_f2(plan.time() as f64 / l as f64)),
        ]);
    }

    // 3. End-to-end broadcast on the standard suite (flip adversary).
    for family in standard_families() {
        let g = family.build();
        let d = traversal::radius_from(&g, g.node(0));
        for p in [0.2, 0.4] {
            sweep.scenario_with(
                Scenario {
                    graph: family,
                    algorithm: Algorithm::Kucera,
                    model: Model::Mp,
                    fault: FaultConfig::limited_malicious(p),
                    shards: ShardSpec::Auto,
                },
                cli.trials,
                vec![("D".into(), d.to_string())],
            );
        }
    }

    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: τ/L flat in part 1 (time linear in the line length at fixed error);\n\
         smaller α buys stronger error at more time in part 2; all rows pass in part 3."
    );
}
