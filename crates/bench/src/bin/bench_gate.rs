//! Distills raw `cargo bench` output into the perf-trajectory JSON
//! artifact and gates it against a committed baseline.
//!
//! ```sh
//! cargo bench -p randcast_bench --bench engine_throughput | \
//!     bench_gate --groups flood_engines,radio_engines,mp_directed_rounds,simple_engines \
//!                --baseline crates/bench/baseline/BENCH_PR5.json \
//!                --out out/BENCH_PR5.json
//! ```
//!
//! Reads the bench transcript from stdin, keeps the benchmarks of the
//! requested criterion groups, writes the distilled
//! [`BenchReport`](randcast_stats::report::BenchReport) to `--out`, and
//! — when `--baseline` is given — **fails (exit 1) if any baseline
//! benchmark is missing or slower than `--max-ratio` (default 2×)**.
//! New benchmarks are allowed; the trajectory grows. Without
//! `--baseline` (seeding a fresh trajectory) the gate always passes.
//!
//! `--bar SCALAR:BATCH:SCALE:MIN` (repeatable) additionally enforces a
//! **same-run** per-trial speedup bar: the `BATCH` benchmark runs
//! `SCALE` trials per iteration, and `SCALAR·SCALE/BATCH ≥ MIN` must
//! hold *within this transcript*. Both rows come from one run, so the
//! bar is immune to the machine-wide throughput drift that cross-run
//! baseline ratios absorb into `--max-ratio`. Bars apply even on
//! seeding runs (no `--baseline`).

use std::io::Read as _;

use randcast_stats::report::BenchReport;

const USAGE: &str = "usage: bench_gate [--groups a,b,c] [--baseline FILE.json] \
[--out FILE.json] [--max-ratio R] [--bar SCALAR:BATCH:SCALE:MIN]...  <  cargo-bench-output";

/// One `--bar SCALAR:BATCH:SCALE:MIN` same-run speedup requirement.
struct Bar {
    scalar: String,
    batch: String,
    scale: f64,
    min_ratio: f64,
}

fn parse_bar(raw: &str) -> Option<Bar> {
    let parts: Vec<&str> = raw.split(':').collect();
    let [scalar, batch, scale, min_ratio] = parts.as_slice() else {
        return None;
    };
    Some(Bar {
        scalar: (*scalar).to_owned(),
        batch: (*batch).to_owned(),
        scale: scale.parse().ok()?,
        min_ratio: min_ratio.parse().ok()?,
    })
}

fn main() {
    let mut groups: Option<Vec<String>> = None;
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut max_ratio = 2.0f64;
    let mut bars: Vec<Bar> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--groups" => {
                groups = Some(value("--groups").split(',').map(str::to_owned).collect());
            }
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--out" => out_path = Some(value("--out")),
            "--max-ratio" => {
                let raw = value("--max-ratio");
                max_ratio = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid --max-ratio `{raw}`\n\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--bar" => {
                let raw = value("--bar");
                bars.push(parse_bar(&raw).unwrap_or_else(|| {
                    eprintln!(
                        "error: invalid --bar `{raw}` (want SCALAR:BATCH:SCALE:MIN)\n\n{USAGE}"
                    );
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let mut raw = String::new();
    std::io::stdin()
        .read_to_string(&mut raw)
        .expect("read bench output from stdin");
    let mut current = BenchReport::from_bench_lines(&raw);
    if let Some(groups) = &groups {
        let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        current.retain_groups(&refs);
    }
    if current.benches.is_empty() {
        eprintln!("error: no benchmarks found on stdin (expected `<label> <ns> ns/iter` lines)");
        std::process::exit(1);
    }
    for b in &current.benches {
        println!("{:<55} {:>14.1} ns/iter", b.name, b.ns_per_iter);
    }

    if let Some(path) = &out_path {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
            }
        }
        std::fs::write(path, current.to_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path} ({} benches)", current.benches.len());
    }

    let mut failed = false;
    for bar in &bars {
        match current.check_bar(&bar.scalar, &bar.batch, bar.scale, bar.min_ratio) {
            Ok(ratio) => println!(
                "bar OK: {} is {ratio:.1}x per trial vs {} (min {}x)",
                bar.batch, bar.scalar, bar.min_ratio
            ),
            Err(v) => {
                eprintln!("BAR MISSED: {v}");
                failed = true;
            }
        }
    }

    if let Some(path) = &baseline_path {
        let baseline_text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = BenchReport::from_json(&baseline_text)
            .unwrap_or_else(|e| panic!("invalid baseline {path}: {e}"));
        let violations = current.gate_against(&baseline, max_ratio);
        if violations.is_empty() {
            println!(
                "gate OK: {} baseline benches within {max_ratio}x",
                baseline.benches.len()
            );
        } else {
            for v in &violations {
                eprintln!("REGRESSION: {v}");
            }
            failed = true;
        }
    } else {
        eprintln!("no --baseline given: seeding run, baseline gate passes vacuously");
    }
    if failed {
        std::process::exit(1);
    }
}
