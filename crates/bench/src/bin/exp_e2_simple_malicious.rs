//! E2 — Theorem 2.2: `Simple-Malicious` is almost-safe in the
//! message-passing model for every `p < 1/2`, against the worst-case
//! flip adversary.
//!
//! Sweeps `p` toward the threshold and reports success against
//! `1 − 1/n`. (The other side of the threshold is E3.)

use randcast_bench::{banner, effort, standard_suite};
use randcast_core::experiment::{run_success_trials, AlmostSafeRow};
use randcast_core::simple::SimplePlan;
use randcast_engine::adversary::FlipMpAdversary;
use randcast_engine::fault::FaultConfig;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "E2 (Theorem 2.2)",
        "Simple-Malicious (MP): almost-safe for p < 1/2 against the flip adversary.",
    );
    let mut table = Table::new([
        "graph", "n", "p", "m", "rounds", "success", "target", "verdict",
    ]);
    let bit = true;
    for (name, g) in standard_suite() {
        let n = g.node_count();
        let source = g.node(0);
        for p in [0.1, 0.25, 0.4, 0.45] {
            let plan = SimplePlan::malicious_mp(&g, source, p);
            // Near the threshold the prescribed m (∝ 1/(1/2−p)²) makes
            // runs expensive; scale trials so each cell costs roughly the
            // same wall-clock (the success signal is strong regardless).
            let trials = match plan.total_rounds() {
                r if r > 150_000 => e.trials / 8,
                r if r > 50_000 => e.trials / 4,
                _ => e.trials,
            }
            .max(50);
            let est = run_success_trials(trials, SeedSequence::new(30), |seed| {
                plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, bit)
                    .all_correct(bit)
            });
            let row = AlmostSafeRow::judge(est, n);
            table.row([
                name.to_string(),
                n.to_string(),
                format!("{p}"),
                plan.phase_len().to_string(),
                plan.total_rounds().to_string(),
                fmt_prob(est.rate()),
                fmt_prob(row.target()),
                row.label(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected: every row passes; m grows like 1/(1/2 − p)² as p approaches the threshold."
    );
}
