//! E2 — Theorem 2.2: `Simple-Malicious` is almost-safe in the
//! message-passing model for every `p < 1/2`, against the worst-case
//! flip adversary.
//!
//! Sweeps `p` toward the threshold and reports success against
//! `1 − 1/n`. (The other side of the threshold is E3.)

use randcast_bench::{banner, cli, emit};
use randcast_core::scenario::{standard_families, Algorithm, Model, Scenario, ShardSpec};
use randcast_engine::fault::FaultConfig;

fn main() {
    let cli = cli();
    banner(
        "E2 (Theorem 2.2)",
        "Simple-Malicious (MP): almost-safe for p < 1/2 against the flip adversary.",
    );
    let mut sweep = cli.sweep("e2_simple_malicious");
    for family in standard_families() {
        for p in [0.1, 0.25, 0.4, 0.45] {
            let prepared = Scenario {
                graph: family,
                algorithm: Algorithm::Simple,
                model: Model::Mp,
                fault: FaultConfig::malicious(p),
                shards: ShardSpec::Auto,
            }
            .prepare();
            // Near the threshold the prescribed m (∝ 1/(1/2−p)²) makes
            // runs expensive; scale trials so each cell costs roughly the
            // same wall-clock (the success signal is strong regardless).
            // An explicit --trials wins over this adjustment.
            let trials = cli.cell_trials(
                match prepared.rounds() {
                    r if r > 150_000 => cli.trials / 8,
                    r if r > 50_000 => cli.trials / 4,
                    _ => cli.trials,
                }
                .max(50),
            );
            sweep.prepared(prepared, trials, Vec::new());
        }
    }
    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: every row passes; m grows like 1/(1/2 − p)² as p approaches the threshold."
    );
}
