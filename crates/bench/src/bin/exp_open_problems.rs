//! Empirical probes of the paper's two open problems (Section 4).
//!
//! **OP1.** *"Is there an almost-safe broadcasting algorithm for an
//! arbitrary graph, working in time `O(D + log n)` in the message-passing
//! model with malicious transmission failures, when `p < 1/2`?"*
//! We measure how far the two best upper bounds in the library sit above
//! the `D + log n` target: the Kučera tree lift (`O(D + log^α n)`,
//! Theorem 3.2 — but in the *limited* model) and the self-timed
//! sliding-majority algorithm (`(D+1)·m`). The gap columns show the
//! multiplicative distance to `D + ln n`; OP1 asks whether it can be
//! driven to `O(1)`.
//!
//! **OP2.** *"What is the optimal almost-safe broadcasting time for an
//! `n`-node graph with optimal fault-free broadcasting time `opt` in the
//! radio model? In particular, is it `Θ(opt · log n)`?"*
//! On `G(m)` the answer to the second question is **no**: the multi-scale
//! schedule is almost-safe in `O(log n · log m)` rounds, asymptotically
//! below `opt · log n = Θ(m log n)`. We tabulate both, giving a measured
//! counterexample family to tightness (the truth lies between the
//! Theorem 3.3 lower bound and `opt · log n`).

use randcast_bench::{banner, cli, emit};
use randcast_core::feasibility::radio_threshold;
use randcast_core::kucera::KuceraBroadcast;
use randcast_core::lower_bound::{min_reps_for_target, LayerSchedule};
use randcast_core::radio_robust::ExpandedPlan;
use randcast_core::scenario::GraphFamily;
use randcast_core::selftimed::SelfTimedPlan;
use randcast_core::sweep::TrialOutcome;
use randcast_engine::adversary::FlipMpAdversary;
use randcast_engine::fault::FaultConfig;
use randcast_graph::{generators, traversal};
use randcast_stats::table::fmt_f2;

fn main() {
    let cli = cli();
    banner(
        "Open problems (Section 4)",
        "Empirical probes of the paper's two open questions.",
    );
    let mut sweep = cli.sweep("open_problems");

    // --- OP1: malicious MP in O(D + log n)? ----------------------------
    // Distance of known upper bounds from D + ln n (p = 0.25, flip).
    let p = 0.25;
    for family in [
        GraphFamily::Path(64),
        GraphFamily::Grid(10, 10),
        GraphFamily::BalancedTree(2, 7),
    ] {
        let g = family.build();
        let n = g.node_count();
        let d = traversal::radius_from(&g, g.node(0));
        let target = d as f64 + (n as f64).ln();

        let kb = KuceraBroadcast::new(&g, g.node(0), p).expect("p < 1/2 is feasible");
        let st = SelfTimedPlan::malicious(&g, g.node(0), p);
        let st_horizon = st.horizon();
        sweep.cell(
            [
                ("section", "OP1".to_string()),
                ("graph", family.label()),
                ("n", n.to_string()),
                ("D", d.to_string()),
                ("D+ln n", fmt_f2(target)),
                ("kučera τ", kb.time().to_string()),
                ("k gap", fmt_f2(kb.time() as f64 / target)),
                ("self-timed τ", st_horizon.to_string()),
                ("st gap", fmt_f2(st_horizon as f64 / target)),
            ],
            cli.cell_trials(cli.trials.min(120)),
            None,
            move |seed, _rng| {
                TrialOutcome::pass(
                    st.run(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, true)
                        .all_correct(true),
                )
            },
        );
    }

    // --- OP2: is Θ(opt · log n) tight? ----------------------------------
    // G(m) at p = 0.5: opt·log n (Thm 3.4) vs the multi-scale schedule.
    let p = 0.5;
    for m in [4usize, 6, 8] {
        let g = generators::lower_bound_graph(m);
        let n = g.node_count();
        let source = g.node(0);

        // Theorem 3.4 expansion over the (optimal-length) greedy schedule.
        let base = randcast_core::radio_sched::greedy_schedule(&g, source);
        let expanded = ExpandedPlan::omission(&g, source, &base, p);

        // Multi-scale schedule sized by the union bound, seeded from the
        // root --seed.
        let mut seq = cli.seeds().child(0x0b2).child(m as u64);
        let (reps, scale_rounds) = min_reps_for_target(
            |r| {
                let mut rng = seq.nth_rng(r as u64);
                seq = seq.child(r as u64);
                LayerSchedule::scales(m, r, &mut rng)
            },
            p,
            1.0 / n as f64,
        );
        let mut rng = cli.seeds().child(0x0b3).child(m as u64).nth_rng(0);
        let chosen = LayerSchedule::scales(m, reps, &mut rng);

        sweep.cell(
            [
                ("section", "OP2".to_string()),
                ("m", m.to_string()),
                ("n", n.to_string()),
                ("opt", (m + 1).to_string()),
                (
                    "Thm 3.4 rounds (greedy·m)",
                    expanded.total_rounds().to_string(),
                ),
                ("scale-schedule rounds", (scale_rounds + 1).to_string()),
                (
                    "ratio",
                    fmt_f2(expanded.total_rounds() as f64 / (scale_rounds + 1) as f64),
                ),
            ],
            cli.cell_trials(cli.trials.min(200)),
            Some(n),
            move |_seed, rng| TrialOutcome::pass(chosen.simulate_omission(p, rng)),
        );
    }

    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "OP1: both constructions remain polylog factors above D + ln n; whether the\n\
         gap closes to O(1) under full malicious faults remains open.\n\
         OP2: the scale schedule is almost-safe in Θ(log n · log m) rounds —\n\
         asymptotically below opt·log n = Θ(m·log n) on this family — so Θ(opt·log n)\n\
         is NOT tight in general; the truth lies between Theorem 3.3's lower bound and\n\
         Theorem 3.4. (Sanity: p*(Δ) here is {:.4} at Δ = {}, so the omission regime is\n\
         the right one for large m.)",
        radio_threshold(generators::lower_bound_graph(6).max_degree()),
        generators::lower_bound_graph(6).max_degree(),
    );
}
