//! Empirical probes of the paper's two open problems (Section 4).
//!
//! **OP1.** *"Is there an almost-safe broadcasting algorithm for an
//! arbitrary graph, working in time `O(D + log n)` in the message-passing
//! model with malicious transmission failures, when `p < 1/2`?"*
//! We measure how far the two best upper bounds in the library sit above
//! the `D + log n` target: the Kučera tree lift (`O(D + log^α n)`,
//! Theorem 3.2 — but in the *limited* model) and the self-timed
//! sliding-majority algorithm (`(D+1)·m`). The gap columns show the
//! multiplicative distance to `D + ln n`; OP1 asks whether it can be
//! driven to `O(1)`.
//!
//! **OP2.** *"What is the optimal almost-safe broadcasting time for an
//! `n`-node graph with optimal fault-free broadcasting time `opt` in the
//! radio model? In particular, is it `Θ(opt · log n)`?"*
//! On `G(m)` the answer to the second question is **no**: the multi-scale
//! schedule is almost-safe in `O(log n · log m)` rounds, asymptotically
//! below `opt · log n = Θ(m log n)`. We tabulate both, giving a measured
//! counterexample family to tightness (the truth lies between the
//! Theorem 3.3 lower bound and `opt · log n`).

use randcast_bench::{banner, effort};
use randcast_core::experiment::run_success_trials;
use randcast_core::feasibility::radio_threshold;
use randcast_core::kucera::KuceraBroadcast;
use randcast_core::lower_bound::{min_reps_for_target, LayerSchedule};
use randcast_core::radio_robust::ExpandedPlan;
use randcast_core::selftimed::SelfTimedPlan;
use randcast_engine::adversary::FlipMpAdversary;
use randcast_engine::fault::FaultConfig;
use randcast_graph::{generators, traversal};
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_f2, fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "Open problems (Section 4)",
        "Empirical probes of the paper's two open questions.",
    );

    // --- OP1: malicious MP in O(D + log n)? ----------------------------
    println!("OP1. distance of known upper bounds from D + ln n (p = 0.25, flip adversary):");
    let p = 0.25;
    let mut t = Table::new([
        "graph",
        "n",
        "D",
        "D+ln n",
        "kučera τ",
        "gap",
        "self-timed τ",
        "gap",
        "st success",
    ]);
    let graphs: Vec<(&str, randcast_graph::Graph)> = vec![
        ("path-64", generators::path(64)),
        ("grid-10x10", generators::grid(10, 10)),
        ("tree-2-7", generators::balanced_tree(2, 7)),
    ];
    for (name, g) in &graphs {
        let n = g.node_count();
        let d = traversal::radius_from(g, g.node(0));
        let target = d as f64 + (n as f64).ln();

        let kb = KuceraBroadcast::new(g, g.node(0), p);
        let st = SelfTimedPlan::malicious(g, g.node(0), p);
        let est = run_success_trials(e.trials.min(120), SeedSequence::new(130), |seed| {
            st.run(g, FaultConfig::malicious(p), FlipMpAdversary, seed, true)
                .all_correct(true)
        });
        t.row([
            name.to_string(),
            n.to_string(),
            d.to_string(),
            fmt_f2(target),
            kb.time().to_string(),
            fmt_f2(kb.time() as f64 / target),
            st.horizon().to_string(),
            fmt_f2(st.horizon() as f64 / target),
            fmt_prob(est.rate()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "both constructions remain polylog factors above D + ln n; OP1 (whether the\n\
         gap closes to O(1) under full malicious faults) remains open.\n"
    );

    // --- OP2: is Θ(opt · log n) tight? ----------------------------------
    println!("OP2. G(m) at p = 0.5: opt·log n (Theorem 3.4) vs the multi-scale schedule:");
    let p = 0.5;
    let mut t = Table::new([
        "m",
        "n",
        "opt",
        "Thm 3.4 rounds (greedy·m)",
        "scale-schedule rounds",
        "ratio",
        "scale MC success",
    ]);
    for m in [4usize, 6, 8] {
        let g = generators::lower_bound_graph(m);
        let n = g.node_count();
        let source = g.node(0);

        // Theorem 3.4 expansion over the (optimal-length) greedy schedule.
        let base = randcast_core::radio_sched::greedy_schedule(&g, source);
        let expanded = ExpandedPlan::omission(&g, source, &base, p);

        // Multi-scale schedule sized by the union bound.
        let mut seq = SeedSequence::new(131);
        let (reps, scale_rounds) = min_reps_for_target(
            |r| {
                let mut rng = seq.nth_rng(r as u64);
                seq = seq.child(r as u64);
                LayerSchedule::scales(m, r, &mut rng)
            },
            p,
            1.0 / n as f64,
        );
        let mut rng = SeedSequence::new(132).nth_rng(0);
        let chosen = LayerSchedule::scales(m, reps, &mut rng);
        let est = run_success_trials(e.trials.min(200), SeedSequence::new(133), |seed| {
            let mut rng = SeedSequence::new(seed).nth_rng(0);
            chosen.simulate_omission(p, &mut rng)
        });

        t.row([
            m.to_string(),
            n.to_string(),
            (m + 1).to_string(),
            expanded.total_rounds().to_string(),
            (scale_rounds + 1).to_string(),
            fmt_f2(expanded.total_rounds() as f64 / (scale_rounds + 1) as f64),
            fmt_prob(est.rate()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "the scale schedule is almost-safe in Θ(log n · log m) rounds — asymptotically\n\
         below opt·log n = Θ(m·log n) on this family — so Θ(opt·log n) is NOT tight in\n\
         general; the truth lies between Theorem 3.3's lower bound and Theorem 3.4.\n\
         (Sanity: p*(Δ) here is {:.4} at Δ = {}, so the omission regime is the right\n\
         one for large m.)",
        radio_threshold(generators::lower_bound_graph(6).max_degree()),
        generators::lower_bound_graph(6).max_degree(),
    );
}
