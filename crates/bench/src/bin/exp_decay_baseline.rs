//! Extension — the randomized Decay baseline (paper reference \[7\])
//! against the deterministic Theorem 3.4 expansion, under omission
//! faults.
//!
//! Decay needs no precomputed schedule but pays `Θ(log n)` per layer and
//! only tolerates omission faults; the expansion needs a fault-free
//! schedule but handles malicious faults too. The table shows rounds and
//! success side by side.

use randcast_bench::{banner, cli, emit};
use randcast_core::scenario::{standard_families, Algorithm, Model, Scenario, ShardSpec};
use randcast_engine::fault::FaultConfig;

fn main() {
    let cli = cli();
    banner(
        "Extension (ref. [7])",
        "Randomized Decay vs deterministic Omission-Radio expansion, omission p = 0.4.",
    );
    let fault = FaultConfig::omission(0.4);
    let mut sweep = cli.sweep("decay_baseline");
    for family in standard_families() {
        for algorithm in [
            // Doubled epochs compensate omission faults at p = 0.4.
            Algorithm::Decay { epoch_factor: 2 },
            Algorithm::Expanded,
        ] {
            sweep.scenario(
                Scenario {
                    graph: family,
                    algorithm,
                    model: Model::Radio,
                    fault,
                    shards: ShardSpec::Auto,
                },
                cli.trials,
            );
        }
    }
    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: both reach high success; decay wins on shallow dense graphs (no\n\
         schedule needed), the expansion wins where greedy schedules are short —\n\
         and only the expansion generalizes to malicious faults (E10)."
    );
}
