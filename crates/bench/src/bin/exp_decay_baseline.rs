//! Extension — the randomized Decay baseline (paper reference \[7\])
//! against the deterministic Theorem 3.4 expansion, under omission
//! faults.
//!
//! Decay needs no precomputed schedule but pays `Θ(log n)` per layer and
//! only tolerates omission faults; the expansion needs a fault-free
//! schedule but handles malicious faults too. The table shows rounds and
//! success side by side.

use randcast_bench::{banner, effort, standard_suite};
use randcast_core::decay::{run_decay, DecayConfig};
use randcast_core::experiment::run_success_trials;
use randcast_core::radio_robust::ExpandedPlan;
use randcast_core::radio_sched::greedy_schedule;
use randcast_engine::fault::FaultConfig;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_graph::traversal;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "Extension (ref. [7])",
        "Randomized Decay vs deterministic Omission-Radio expansion, omission p = 0.4.",
    );
    let p = 0.4;
    let mut table = Table::new(["graph", "n", "algorithm", "rounds", "success"]);
    for (name, g) in standard_suite() {
        let n = g.node_count();
        let source = g.node(0);
        let d = traversal::radius_from(&g, source);

        let mut cfg = DecayConfig::classical(n, d);
        cfg.epochs *= 2; // compensate omission faults at p = 0.4
        let est = run_success_trials(e.trials, SeedSequence::new(120), |seed| {
            run_decay(&g, source, cfg, FaultConfig::omission(p), seed).complete()
        });
        table.row([
            name.to_string(),
            n.to_string(),
            "decay (randomized)".into(),
            cfg.total_rounds().to_string(),
            fmt_prob(est.rate()),
        ]);

        let base = greedy_schedule(&g, source);
        let plan = ExpandedPlan::omission(&g, source, &base, p);
        let est = run_success_trials(e.trials, SeedSequence::new(121), |seed| {
            plan.run(
                &g,
                FaultConfig::omission(p),
                SilentRadioAdversary,
                seed,
                true,
            )
            .all_correct(true)
        });
        table.row([
            name.to_string(),
            n.to_string(),
            "omission-radio (deterministic)".into(),
            plan.total_rounds().to_string(),
            fmt_prob(est.rate()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected: both reach high success; decay wins on shallow dense graphs (no\n\
         schedule needed), the expansion wins where greedy schedules are short —\n\
         and only the expansion generalizes to malicious faults (E10)."
    );
}
