//! E10 — Theorem 3.4: `Omission-Radio` and `Malicious-Radio` are
//! almost-safe in `O(opt · log n)` rounds for any graph.
//!
//! For each graph in the standard suite: build a fault-free schedule
//! (greedy), expand each round into a series of `m = ⌈c log n⌉` rounds,
//! and measure success under
//!
//! * omission faults at `p = 0.5` with any-bit voting, and
//! * malicious faults at `p = 0.4·p*(Δ)` with majority voting, against
//!   both the jamming and the lie-or-jam adversary.

use randcast_bench::{banner, cli, emit};
use randcast_core::feasibility::radio_threshold;
use randcast_core::radio_robust::ExpandedPlan;
use randcast_core::radio_sched::greedy_schedule;
use randcast_core::scenario::{fmt_p, standard_families, Algorithm, Model, Scenario, ShardSpec};
use randcast_core::sweep::TrialOutcome;
use randcast_engine::adversary::JamRadioAdversary;
use randcast_engine::fault::FaultConfig;

fn main() {
    let cli = cli();
    banner(
        "E10 (Theorem 3.4)",
        "Omission-Radio / Malicious-Radio: almost-safe in |schedule| · ⌈c log n⌉ rounds.",
    );
    let bit = true;
    let mut sweep = cli.sweep("e10_radio_robust");
    for family in standard_families() {
        let g = family.build();
        let source = g.node(0);
        let base = greedy_schedule(&g, source);
        let sched = vec![("|A| (greedy)".into(), base.len().to_string())];

        // Omission at high p (worst-case silent transmitters).
        sweep.scenario_with(
            Scenario {
                graph: family,
                algorithm: Algorithm::Expanded,
                model: Model::Radio,
                fault: FaultConfig::omission(0.5),
                shards: ShardSpec::Auto,
            },
            cli.trials,
            [sched.clone(), vec![("adversary".into(), "silent".into())]].concat(),
        );

        // Malicious below the degree threshold: the scenario's binding
        // lie-or-jam adversary, plus the pure jammer as a custom cell.
        let p = radio_threshold(g.max_degree()) * 0.4;
        sweep.scenario_with(
            Scenario {
                graph: family,
                algorithm: Algorithm::Expanded,
                model: Model::Radio,
                fault: FaultConfig::malicious(p),
                shards: ShardSpec::Auto,
            },
            cli.trials,
            [
                sched.clone(),
                vec![("adversary".into(), "lie-or-jam".into())],
            ]
            .concat(),
        );

        let plan = ExpandedPlan::malicious(&g, source, &base, p);
        let n = g.node_count();
        let mut params = vec![
            ("graph".to_string(), family.label()),
            ("n".to_string(), n.to_string()),
            ("algorithm".to_string(), "expanded".to_string()),
            ("model".to_string(), "radio".to_string()),
            ("fault".to_string(), "malicious".to_string()),
            ("p".to_string(), fmt_p(p)),
            ("m".to_string(), plan.phase_len().to_string()),
            ("rounds".to_string(), plan.total_rounds().to_string()),
        ];
        params.extend([sched.clone(), vec![("adversary".into(), "jam".into())]].concat());
        sweep.cell(params, cli.trials, Some(n), move |seed, _rng| {
            TrialOutcome::pass(
                plan.run(
                    &g,
                    FaultConfig::malicious(p),
                    JamRadioAdversary::new(!bit),
                    seed,
                    bit,
                )
                .all_correct(bit),
            )
        });
    }
    let result = sweep.run();
    emit(&cli, &result);
    println!(
        "expected: every row passes almost-safety; total rounds = |A| · m = O(opt·log n)\n\
         (compare E9: o(opt·log n) is not reachable in general — open problem 2 asks\n\
         whether Θ(opt·log n) is tight)."
    );
}
