//! E10 — Theorem 3.4: `Omission-Radio` and `Malicious-Radio` are
//! almost-safe in `O(opt · log n)` rounds for any graph.
//!
//! For each graph in the standard suite: build a fault-free schedule
//! (greedy), expand each round into a series of `m = ⌈c log n⌉` rounds,
//! and measure success under
//!
//! * omission faults at `p = 0.5` with any-bit voting, and
//! * malicious faults at `p = 0.4·p*(Δ)` with majority voting, against
//!   both the jamming and the lie-or-jam adversary.

use randcast_bench::{banner, effort, standard_suite};
use randcast_core::experiment::{run_success_trials, AlmostSafeRow};
use randcast_core::feasibility::radio_threshold;
use randcast_core::radio_robust::ExpandedPlan;
use randcast_core::radio_sched::greedy_schedule;
use randcast_engine::adversary::{JamRadioAdversary, LieOrJamAdversary};
use randcast_engine::fault::FaultConfig;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_stats::seed::SeedSequence;
use randcast_stats::table::{fmt_prob, Table};

fn main() {
    let e = effort();
    banner(
        "E10 (Theorem 3.4)",
        "Omission-Radio / Malicious-Radio: almost-safe in |schedule| · ⌈c log n⌉ rounds.",
    );
    let mut table = Table::new([
        "graph",
        "n",
        "|A| (greedy)",
        "variant",
        "p",
        "m",
        "rounds",
        "success",
        "target",
        "verdict",
    ]);
    let bit = true;
    for (name, g) in standard_suite() {
        let n = g.node_count();
        let source = g.node(0);
        let base = greedy_schedule(&g, source);

        // Omission at high p.
        let p = 0.5;
        let plan = ExpandedPlan::omission(&g, source, &base, p);
        let est = run_success_trials(e.trials, SeedSequence::new(100), |seed| {
            plan.run(
                &g,
                FaultConfig::omission(p),
                SilentRadioAdversary,
                seed,
                bit,
            )
            .all_correct(bit)
        });
        let row = AlmostSafeRow::judge(est, n);
        table.row([
            name.to_string(),
            n.to_string(),
            base.len().to_string(),
            "omission".into(),
            format!("{p}"),
            plan.phase_len().to_string(),
            plan.total_rounds().to_string(),
            fmt_prob(est.rate()),
            fmt_prob(row.target()),
            row.label(),
        ]);

        // Malicious below the degree threshold.
        let p_star = radio_threshold(g.max_degree());
        let p = p_star * 0.4;
        let plan = ExpandedPlan::malicious(&g, source, &base, p);
        for (adv_name, jam) in [("jam", true), ("lie-or-jam", false)] {
            let est = run_success_trials(e.trials, SeedSequence::new(101), |seed| {
                let out = if jam {
                    plan.run(
                        &g,
                        FaultConfig::malicious(p),
                        JamRadioAdversary::new(!bit),
                        seed,
                        bit,
                    )
                } else {
                    plan.run(
                        &g,
                        FaultConfig::malicious(p),
                        LieOrJamAdversary::new(bit),
                        seed,
                        bit,
                    )
                };
                out.all_correct(bit)
            });
            let row = AlmostSafeRow::judge(est, n);
            table.row([
                name.to_string(),
                n.to_string(),
                base.len().to_string(),
                format!("malicious/{adv_name}"),
                format!("{p:.4}"),
                plan.phase_len().to_string(),
                plan.total_rounds().to_string(),
                fmt_prob(est.rate()),
                fmt_prob(row.target()),
                row.label(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected: every row passes almost-safety; total rounds = |A| · m = O(opt·log n)\n\
         (compare E9: o(opt·log n) is not reachable in general — open problem 2 asks\n\
         whether Θ(opt·log n) is tight)."
    );
}
