//! Criterion benches: raw simulation-engine throughput (rounds executed
//! per second) for both communication models, across network sizes and
//! failure probabilities.
//!
//! These are substrate benches — they calibrate how large the E1–E10
//! experiment sweeps can afford to be.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use randcast_core::decay::{run_decay, DecayConfig};
use randcast_core::flood::{theorem_horizon, FloodPlan, FloodVariant};
use randcast_core::simple::SimplePlan;
use randcast_engine::adversary::FlipMpAdversary;
use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::{FastFlood, FastFloodVariant, ShardedFlood};
use randcast_engine::kernel::{FaultTapes, FlipFault};
use randcast_engine::mp::{MpNetwork, MpNode, Outgoing, SilentMpAdversary};
use randcast_engine::radio::{RadioAction, RadioNetwork, RadioNode};
use randcast_engine::radio_fast::{FastRadio, FastRadioSchedule, ShardedRadio};
use randcast_engine::simple_fast::{FastSimple, ShardedSimple};
use randcast_graph::shard::{
    default_scratch_dir, ShardPlan, ShardStore, ShardedBfsTree, SpillSink,
};
use randcast_graph::{generators, traversal, CsrGraph, Graph, NodeId};
use randcast_stats::chernoff::phase_len_omission;

/// Flooding automaton (the engine stress case: every informed node sends
/// every round).
struct Flood {
    informed: bool,
}

impl MpNode for Flood {
    type Msg = bool;
    fn send(&mut self, _round: usize) -> Outgoing<bool> {
        if self.informed {
            Outgoing::Broadcast(true)
        } else {
            Outgoing::Silent
        }
    }
    fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {
        self.informed = true;
    }
}

/// Directed-send gossip automaton: once informed, sends an individually
/// addressed message to every neighbor each round. This exercises the
/// engine's per-target delivery path (the hottest allocation site),
/// whereas [`Flood`] exercises the broadcast path.
struct DirectedGossip {
    informed: bool,
    neighbors: Vec<NodeId>,
}

impl MpNode for DirectedGossip {
    type Msg = u64;
    fn send(&mut self, round: usize) -> Outgoing<u64> {
        if self.informed {
            Outgoing::Directed(self.neighbors.iter().map(|&v| (v, round as u64)).collect())
        } else {
            Outgoing::Silent
        }
    }
    fn recv(&mut self, _round: usize, _from: NodeId, _msg: u64) {
        self.informed = true;
    }
}

/// Round-robin radio beacon.
struct Beacon {
    me: usize,
}

impl RadioNode for Beacon {
    type Msg = u8;
    fn act(&mut self, round: usize) -> RadioAction<u8> {
        if round % 16 == self.me % 16 {
            RadioAction::Transmit(1)
        } else {
            RadioAction::Listen
        }
    }
    fn recv(&mut self, _round: usize, _heard: Option<u8>) {}
}

fn bench_mp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mp_rounds");
    for side in [8usize, 16, 32] {
        let g = generators::grid(side, side);
        let rounds = 64usize;
        group.throughput(Throughput::Elements((rounds * g.node_count()) as u64));
        for p in [0.0, 0.3] {
            group.bench_with_input(
                BenchmarkId::new(format!("grid{side}x{side}"), p),
                &p,
                |b, &p| {
                    b.iter(|| {
                        let mut net = MpNetwork::new(&g, FaultConfig::omission(p), 7, |v| Flood {
                            informed: v.index() == 0,
                        });
                        net.run(rounds);
                        net.stats().deliveries
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_mp_directed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mp_directed_rounds");
    for side in [8usize, 16, 32] {
        let g = generators::grid(side, side);
        let rounds = 64usize;
        group.throughput(Throughput::Elements((rounds * g.node_count()) as u64));
        for p in [0.0, 0.3] {
            group.bench_with_input(
                BenchmarkId::new(format!("grid{side}x{side}"), p),
                &p,
                |b, &p| {
                    b.iter(|| {
                        let mut net =
                            MpNetwork::new(&g, FaultConfig::omission(p), 7, |v| DirectedGossip {
                                informed: v.index() == 0,
                                neighbors: g.neighbors(v).to_vec(),
                            });
                        net.run(rounds);
                        net.stats().deliveries
                    })
                },
            );
        }
    }
    group.finish();
}

/// Fast-path vs general-engine flood: the same Theorem 3.1 workload
/// (BFS-tree flooding to completion horizon) through `MpNetwork` and
/// through the bitset `FastFlood` engine. The ratio between the two
/// rows is the fast path's speedup.
fn bench_flood_fast_vs_mp(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood_engines");
    let graphs: Vec<(String, Graph)> = vec![
        ("grid32x32".into(), generators::grid(32, 32)),
        (
            "gnp4096-d8".into(),
            generators::gnp_connected(4096, 8.0 / 4095.0, &mut SmallRng::seed_from_u64(7)),
        ),
    ];
    for (label, g) in &graphs {
        let p = 0.3;
        let source = g.node(0);
        let horizon = theorem_horizon(g, source, p);
        group.throughput(Throughput::Elements((horizon * g.node_count()) as u64));
        let mp_plan = FloodPlan::with_horizon(g, source, horizon, FloodVariant::Tree);
        group.bench_with_input(BenchmarkId::new("mp", label), &p, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                mp_plan
                    .run(g, FaultConfig::omission(p), seed)
                    .informed_count()
            })
        });
        let fast_plan = FastFlood::new(CsrGraph::from(g), source, horizon, FastFloodVariant::Tree);
        group.bench_with_input(BenchmarkId::new("fast", label), &p, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fast_plan.run(p, seed).informed_count()
            })
        });
        // One iteration = one 64-trial bit-sliced block; the per-trial
        // speedup over the `fast` row is gated by bench_gate --bar.
        group.bench_with_input(BenchmarkId::new("batch", label), &p, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fast_plan.run_batch(p, seed).informed_count(0)
            })
        });
        // Malicious rows: the flip adversary through `MpNetwork` vs the
        // FlipFault instance through the FaultModel drivers; their ratio
        // is the malicious fast path's speedup (bench_gate --bar floor).
        if label == "grid32x32" {
            group.bench_with_input(BenchmarkId::new("mp-mal", label), &p, |b, &p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    mp_plan
                        .run(g, FaultConfig::malicious(p), seed)
                        .informed_count()
                })
            });
            let model = FlipFault::new(p);
            group.bench_with_input(BenchmarkId::new("fast-mal", label), &p, |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    fast_plan
                        .run_lane_model(&model, &FaultTapes::new(seed), 0)
                        .informed_count()
                })
            });
        }
    }
    group.finish();
}

/// Fast-path vs trait-object Simple: the same Theorem 2.1 workload
/// (`Simple-Omission` with the prescribed phase length, omission
/// p = 0.3) through `MpNetwork` per-node automata and through the
/// geometric-draw `FastSimple` kernel. The ratio between the two rows
/// is the fast path's speedup; the acceptance bar is ≥ 50× at
/// n = 4096.
fn bench_simple_fast_vs_trait(c: &mut Criterion) {
    let mut group = c.benchmark_group("simple_engines");
    // The trait engine executes the full n·m schedule (~10⁸ node-steps
    // at n = 4096); keep the sample count minimal so `cargo bench`
    // stays CI-sized.
    group.sample_size(5);
    let graphs: Vec<(String, Graph)> = vec![
        ("grid32x32".into(), generators::grid(32, 32)),
        (
            "gnp4096-d8".into(),
            generators::gnp_connected(4096, 8.0 / 4095.0, &mut SmallRng::seed_from_u64(7)),
        ),
    ];
    for (label, g) in &graphs {
        let p = 0.3;
        let source = g.node(0);
        let plan = SimplePlan::omission_with_p(g, source, p);
        group.throughput(Throughput::Elements(
            (plan.total_rounds() * g.node_count()) as u64,
        ));
        group.bench_with_input(BenchmarkId::new("trait", label), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                plan.run_mp(g, FaultConfig::omission(p), SilentMpAdversary, seed, true)
                    .correct_count(true)
            })
        });
        let fast = FastSimple::new(&CsrGraph::from(g), source, plan.phase_len());
        group.bench_with_input(BenchmarkId::new("fast", label), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fast.run(p, seed).correct_count()
            })
        });
        // One iteration = one 64-trial bit-sliced block (see --bar).
        group.bench_with_input(BenchmarkId::new("batch", label), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fast.run_batch(p, seed).correct_count(0)
            })
        });
        // Malicious rows: the same Theorem 2.2 majority-vote workload
        // through the flip-adversary trait engine and through the
        // FlipFault fast path (bench_gate --bar floors the ratio). The
        // Theorem 2.2 phase length is much larger than Theorem 2.1's, so
        // only the smaller graph keeps the trait row CI-sized.
        if label == "grid32x32" {
            let mal_plan = SimplePlan::malicious_mp(g, source, p);
            group.throughput(Throughput::Elements(
                (mal_plan.total_rounds() * g.node_count()) as u64,
            ));
            group.bench_with_input(BenchmarkId::new("trait-mal", label), &p, |b, &p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    mal_plan
                        .run_mp(g, FaultConfig::malicious(p), FlipMpAdversary, seed, true)
                        .correct_count(true)
                })
            });
            let fast_mal = FastSimple::new(&CsrGraph::from(g), source, mal_plan.phase_len());
            let model = FlipFault::new(p);
            group.bench_with_input(BenchmarkId::new("fast-mal", label), &p, |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    fast_mal.run_lane_model(&model, seed, 0).correct_count()
                })
            });
        }
    }
    group.finish();
}

/// Fast-path vs trait-object radio: the same Decay workload (classical
/// parameterization, omission p = 0.3) through `RadioNetwork` per-node
/// automata and through the bitset collision-counting `FastRadio`
/// kernel. The ratio between the two rows is the fast path's speedup;
/// the acceptance bar is ≥ 50× at n = 4096.
fn bench_radio_fast_vs_trait(c: &mut Criterion) {
    let mut group = c.benchmark_group("radio_engines");
    // The trait engine needs tens of milliseconds per trial here; keep
    // the sample count low so `cargo bench` stays CI-sized.
    group.sample_size(10);
    let graphs: Vec<(String, Graph)> = vec![
        ("grid32x32".into(), generators::grid(32, 32)),
        (
            "gnp4096-d8".into(),
            generators::gnp_connected(4096, 8.0 / 4095.0, &mut SmallRng::seed_from_u64(7)),
        ),
    ];
    for (label, g) in &graphs {
        let p = 0.3;
        let source = g.node(0);
        let cfg = DecayConfig::classical(g.node_count(), traversal::radius_from(g, source));
        group.throughput(Throughput::Elements(
            (cfg.total_rounds() * g.node_count()) as u64,
        ));
        group.bench_with_input(BenchmarkId::new("trait", label), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_decay(g, source, cfg, FaultConfig::omission(p), seed)
                    .informed_at
                    .iter()
                    .filter(|i| i.is_some())
                    .count()
            })
        });
        let fast_plan = FastRadio::new(
            CsrGraph::from(g),
            source,
            cfg.total_rounds(),
            FastRadioSchedule::Decay {
                epoch_len: cfg.epoch_len,
            },
        );
        group.bench_with_input(BenchmarkId::new("fast", label), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fast_plan.run(p, seed).informed_count()
            })
        });
        // One iteration = one 64-trial bit-sliced block (see --bar).
        group.bench_with_input(BenchmarkId::new("batch", label), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fast_plan.run_batch(p, seed).informed_count(0)
            })
        });
        // Malicious rows: limited-malicious Decay through the
        // trait-object engine (flip radio adversary) and through the
        // FlipFault fast path (bench_gate --bar floors the ratio).
        if label == "grid32x32" {
            group.bench_with_input(BenchmarkId::new("trait-mal", label), &p, |b, &p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_decay(g, source, cfg, FaultConfig::limited_malicious(p), seed)
                        .informed_at
                        .iter()
                        .filter(|i| i.is_some())
                        .count()
                })
            });
            let model = FlipFault::new(p);
            group.bench_with_input(BenchmarkId::new("fast-mal", label), &p, |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    fast_plan.run_lane_model(&model, seed, 0).informed_count()
                })
            });
        }
    }
    group.finish();
}

/// Out-of-core kernels on a disk-backed 3-segment store (prefetch
/// pipeline on): one scalar lane vs one 64-lane batched block per
/// kernel. The batched rows amortize every segment load across the
/// lanes; bench_gate `--bar` floors their per-trial speedup in CI.
fn bench_oc_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("oc_engines");
    group.sample_size(10);
    let label = "gnp4096-d8";
    let g = generators::gnp_connected(4096, 8.0 / 4095.0, &mut SmallRng::seed_from_u64(7));
    let csr = CsrGraph::from(&g);
    let n = csr.node_count();
    let plan = ShardPlan::uniform(n, 3);
    let disk_store = || {
        let mut sink = SpillSink::create(default_scratch_dir(), plan.clone()).expect("spill sink");
        for v in 0..n {
            for &t in csr.neighbors_of(v) {
                if (v as u32) < t {
                    sink.push(v as u64, u64::from(t)).expect("spill edge");
                }
            }
        }
        ShardStore::Disk(sink.finalize().expect("finalize"))
    };
    let p = 0.3;
    let source = g.node(0);

    let horizon = theorem_horizon(&g, source, p);
    group.throughput(Throughput::Elements((horizon * n) as u64));
    let flood = ShardedFlood::new(disk_store(), 0, horizon);
    group.bench_with_input(BenchmarkId::new("flood-scalar", label), &p, |b, &p| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            flood
                .run_lane(p, seed, 0)
                .expect("oc flood")
                .informed_count()
        })
    });
    group.bench_with_input(BenchmarkId::new("flood-batch", label), &p, |b, &p| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            flood
                .run_batch(p, seed, n)
                .expect("oc flood batch")
                .informed_count(0)
        })
    });

    let cfg = DecayConfig::classical(n, traversal::radius_from(&g, source));
    group.throughput(Throughput::Elements((cfg.total_rounds() * n) as u64));
    let radio = ShardedRadio::new(
        disk_store(),
        0,
        cfg.total_rounds(),
        FastRadioSchedule::Decay {
            epoch_len: cfg.epoch_len,
        },
    );
    group.bench_with_input(BenchmarkId::new("radio-scalar", label), &p, |b, &p| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            radio
                .run_lane(p, seed, 0)
                .expect("oc radio")
                .informed_count()
        })
    });
    group.bench_with_input(BenchmarkId::new("radio-batch", label), &p, |b, &p| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            radio
                .run_batch(p, seed)
                .expect("oc radio batch")
                .informed_count(0)
        })
    });

    let m = phase_len_omission(n, p);
    let store = disk_store();
    let tree = ShardedBfsTree::build(&store, 0, default_scratch_dir()).expect("BFS tree");
    let (order, children) = tree.into_parts();
    let simple = ShardedSimple::new(ShardStore::Disk(children), order, 0, m);
    group.throughput(Throughput::Elements((n * m * n) as u64));
    group.bench_with_input(BenchmarkId::new("simple-scalar", label), &p, |b, &p| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simple
                .run_lane(p, seed, 0)
                .expect("oc simple")
                .correct_count()
        })
    });
    group.bench_with_input(BenchmarkId::new("simple-batch", label), &p, |b, &p| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simple
                .run_batch(p, seed)
                .expect("oc simple batch")
                .correct_count(0)
        })
    });
    group.finish();
}

fn bench_radio(c: &mut Criterion) {
    let mut group = c.benchmark_group("radio_rounds");
    for side in [8usize, 16, 32] {
        let g = generators::grid(side, side);
        let rounds = 64usize;
        group.throughput(Throughput::Elements((rounds * g.node_count()) as u64));
        for p in [0.0, 0.3] {
            group.bench_with_input(
                BenchmarkId::new(format!("grid{side}x{side}"), p),
                &p,
                |b, &p| {
                    b.iter(|| {
                        let mut net = RadioNetwork::new(&g, FaultConfig::omission(p), 7, |v| {
                            Beacon { me: v.index() }
                        });
                        net.run(rounds);
                        net.stats().receptions
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mp, bench_mp_directed, bench_flood_fast_vs_mp, bench_radio, bench_radio_fast_vs_trait, bench_simple_fast_vs_trait, bench_oc_engines
}
criterion_main!(benches);
