//! Criterion benches for the paper's algorithms: end-to-end broadcast
//! cost per algorithm on a fixed 8×8 grid, plus planner/scheduler
//! construction costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randcast_core::flood::FloodPlan;
use randcast_core::kucera::{FailureBehavior, KuceraBroadcast, Plan};
use randcast_core::radio_robust::ExpandedPlan;
use randcast_core::radio_sched::greedy_schedule;
use randcast_core::simple::SimplePlan;
use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::SilentMpAdversary;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_graph::generators;

fn bench_broadcasts(c: &mut Criterion) {
    let g = generators::grid(8, 8);
    let source = g.node(0);
    let p = 0.3;
    let mut group = c.benchmark_group("broadcast_one_run");

    let simple = SimplePlan::omission_with_p(&g, source, p);
    group.bench_function("simple_omission_mp", |b| {
        b.iter(|| {
            simple
                .run_mp(&g, FaultConfig::omission(p), SilentMpAdversary, 3, true)
                .correct_count(true)
        })
    });
    group.bench_function("simple_omission_radio", |b| {
        b.iter(|| {
            simple
                .run_radio(&g, FaultConfig::omission(p), SilentRadioAdversary, 3, true)
                .correct_count(true)
        })
    });

    let flood = FloodPlan::new(&g, source, p);
    group.bench_function("flood_omission_mp", |b| {
        b.iter(|| flood.run(&g, FaultConfig::omission(p), 3).informed_count())
    });

    let kucera = KuceraBroadcast::new(&g, source, p).expect("p < 1/2 is feasible");
    group.bench_function("kucera_tree", |b| {
        b.iter(|| {
            kucera
                .run(&g, p, FailureBehavior::Flip, 3, true)
                .correct_count(true)
        })
    });

    let base = greedy_schedule(&g, source);
    let expanded = ExpandedPlan::omission(&g, source, &base, p);
    group.bench_function("omission_radio_expanded", |b| {
        b.iter(|| {
            expanded
                .run(&g, FaultConfig::omission(p), SilentRadioAdversary, 3, true)
                .correct_count(true)
        })
    });
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    for len in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("kucera_plan", len), &len, |b, &len| {
            b.iter(|| Plan::for_line(len, 0.3, 1e-9).expect("feasible").time())
        });
        group.bench_with_input(BenchmarkId::new("kucera_compile", len), &len, |b, &len| {
            let plan = Plan::for_line(len, 0.3, 1e-9).expect("feasible");
            b.iter(|| plan.compile().send_count())
        });
    }
    for side in [8usize, 16, 24] {
        let g = generators::grid(side, side);
        group.bench_with_input(
            BenchmarkId::new("greedy_schedule_grid", side),
            &side,
            |b, _| b.iter(|| greedy_schedule(&g, g.node(0)).len()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_broadcasts, bench_planners
}
criterion_main!(benches);
