//! Large-`n` scaling smoke tests: one fast-path flood trial, one
//! fast-path radio (Decay) trial, and one fast-path Simple trial at
//! `n = 10⁵` must each stay comfortably inside a wall-clock budget, so
//! scaling regressions in the generators or any fast engine are caught
//! by CI (the budgets are asserted in release mode only; debug builds
//! still run the trials for correctness).
//!
//! The `1e6`/`1e7` tests additionally budget **peak RSS** (`VmHWM` via
//! [`randcast_bench::peak_rss_bytes`]; the assert is skipped where the
//! probe is unavailable). Budgets bound the whole test process —
//! graph build high-water plus the trial — so a memory regression in
//! any layer trips them.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use randcast_bench::peak_rss_bytes;
use randcast_core::scenario::{
    Algorithm, GraphFamily, Model, Scenario, ShardSpec, SIMPLE_FAST_MIN_N,
};
use randcast_core::sweep::BATCH_LANES;
use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::ShardedFlood;
use randcast_graph::generators::gnp_edges;
use randcast_graph::shard::{
    default_scratch_dir, ShardPlan, ShardStore, ShardedBfsTree, SpillSink,
};

/// Asserts a peak-RSS budget — or skips *visibly* when the probe is
/// unavailable, instead of silently passing. On Linux `VmHWM` is
/// always present in `/proc/self/status`, so a `None` there (every CI
/// runner included) means the probe itself broke and the test fails;
/// on other platforms the skip is logged to stderr.
fn assert_rss_budget(label: &str, budget_bytes: u64) {
    match peak_rss_bytes() {
        Some(rss) => assert!(
            rss < budget_bytes,
            "{label} peaked at {rss} bytes RSS (budget {budget_bytes} bytes)"
        ),
        None if cfg!(target_os = "linux") => {
            panic!("{label}: peak_rss_bytes() returned None on Linux — VmHWM probe broken")
        }
        None => {
            eprintln!("{label}: RSS budget SKIPPED — peak_rss_bytes() unavailable on this platform")
        }
    }
}

#[test]
fn single_trial_at_n_1e5_is_fast() {
    let scenario = Scenario {
        graph: GraphFamily::Gnp {
            n: 100_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::FloodFast { horizon_scale: 1 },
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    };
    let build_start = Instant::now();
    let prep = scenario.try_prepare().expect("valid scenario");
    let build_time = build_start.elapsed();
    assert!(prep.uses_fast_path());

    let trial_start = Instant::now();
    let out = prep.trial(42);
    let trial_time = trial_start.elapsed();

    assert!(out.success, "gnp-connected flood must complete");
    let frac = out.informed_frac.expect("fast path reports the fraction");
    assert!((frac - 1.0).abs() < 1e-12);
    assert!(out.almost_rounds.unwrap() <= out.rounds.unwrap());

    // The acceptance budget: a single n = 10⁵ trial in under a second
    // (release). Graph build + plan compile get their own generous
    // budget so generator regressions are caught too.
    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(1),
            "n=1e5 flood trial took {trial_time:?} (budget 1s)"
        );
        assert!(
            build_time < Duration::from_secs(5),
            "n=1e5 graph+plan build took {build_time:?} (budget 5s)"
        );
    }
}

#[test]
fn single_radio_trial_at_n_1e5_is_fast() {
    let scenario = Scenario {
        graph: GraphFamily::Gnp {
            n: 100_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::DecayFast { epoch_factor: 2 },
        model: Model::Radio,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    };
    let build_start = Instant::now();
    let prep = scenario.try_prepare().expect("valid scenario");
    let build_time = build_start.elapsed();
    assert!(prep.uses_fast_path());

    let trial_start = Instant::now();
    let out = prep.trial(42);
    let trial_time = trial_start.elapsed();

    assert!(out.success, "gnp-connected decay must complete");
    let frac = out.informed_frac.expect("fast path reports the fraction");
    assert!((frac - 1.0).abs() < 1e-12);
    assert!(out.almost_rounds.unwrap() <= out.rounds.unwrap());

    // The acceptance budget: a single n = 10⁵ radio trial in under a
    // second (release). Build includes a BFS for the classical Decay
    // parameterization on top of graph generation.
    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(1),
            "n=1e5 radio trial took {trial_time:?} (budget 1s)"
        );
        assert!(
            build_time < Duration::from_secs(5),
            "n=1e5 graph+plan build took {build_time:?} (budget 5s)"
        );
    }
}

#[test]
fn single_simple_trial_at_n_1e5_is_fast() {
    // Plain Simple: at this size the harness must auto-select the
    // geometric-draw fast path, and one trial (plus the n·m-schedule
    // bookkeeping) must fit the same 1 s release budget as the other
    // kernels.
    let scenario = Scenario {
        graph: GraphFamily::Gnp {
            n: 100_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::Simple,
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    };
    let build_start = Instant::now();
    let prep = scenario.try_prepare().expect("valid scenario");
    let build_time = build_start.elapsed();
    assert!(prep.uses_fast_path());

    let trial_start = Instant::now();
    let out = prep.trial(42);
    let trial_time = trial_start.elapsed();

    assert!(out.success, "gnp-connected simple must broadcast correctly");
    let frac = out.informed_frac.expect("fast path reports the fraction");
    assert!((frac - 1.0).abs() < 1e-12);
    // Simple's schedule is fixed-length: the completion round is n·m.
    assert_eq!(out.rounds, Some(prep.rounds() as f64));
    assert!(out.almost_rounds.unwrap() <= out.rounds.unwrap());

    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(1),
            "n=1e5 simple trial took {trial_time:?} (budget 1s)"
        );
        assert!(
            build_time < Duration::from_secs(5),
            "n=1e5 graph+plan build took {build_time:?} (budget 5s)"
        );
    }
}

#[test]
fn single_malicious_simple_trial_at_n_1e5_is_fast() {
    // PR 8's acceptance cell one decade below the 10⁶ headline: a
    // *malicious* Simple trial must auto-select the fast path (the
    // FaultModel layer behind simple_fast) and complete the Theorem 2.2
    // majority-vote schedule inside a release wall budget. The
    // malicious phase length is an order of magnitude above the
    // omission one (~n·m ≈ 3·10⁷ model coins here), so the trial budget
    // is wider than the omission tests' 1 s.
    let scenario = Scenario {
        graph: GraphFamily::Gnp {
            n: 100_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::Simple,
        model: Model::Mp,
        fault: FaultConfig::malicious(0.3),
        shards: ShardSpec::Auto,
    };
    let build_start = Instant::now();
    let prep = scenario.try_prepare().expect("valid scenario");
    let build_time = build_start.elapsed();
    assert!(prep.uses_fast_path(), "malicious Simple must auto-dispatch");

    let trial_start = Instant::now();
    let out = prep.trial(42);
    let trial_time = trial_start.elapsed();

    assert!(out.success, "Theorem 2.2 schedule broadcasts correctly");
    let frac = out.informed_frac.expect("fast path reports the fraction");
    assert!((frac - 1.0).abs() < 1e-12);
    assert_eq!(out.rounds, Some(prep.rounds() as f64));

    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(3),
            "n=1e5 malicious simple trial took {trial_time:?} (budget 3s)"
        );
        assert!(
            build_time < Duration::from_secs(5),
            "n=1e5 graph+plan build took {build_time:?} (budget 5s)"
        );
    }
}

#[test]
fn batched_block_at_n_1e5_fits_the_block_budget() {
    // One bit-sliced block = 64 coupled trials in a single frontier
    // pass per round. At the ≥10x per-trial throughput the batch path
    // targets, a whole block at n = 10⁵ must land well under 64 scalar
    // budgets — 8 s covers the bar with slack while still catching a
    // batch kernel that silently degrades toward scalar speed.
    let scenario = Scenario {
        graph: GraphFamily::Gnp {
            n: 100_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::FloodFast { horizon_scale: 1 },
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    };
    let prep = scenario.try_prepare().expect("valid scenario");
    assert!(prep.supports_batch());

    let block_start = Instant::now();
    let block = prep.trial_block(42);
    let block_time = block_start.elapsed();

    assert_eq!(block.len(), BATCH_LANES);
    for (lane, out) in block.iter().enumerate() {
        assert!(out.success, "lane {lane}: gnp-connected flood completes");
        let frac = out.informed_frac.expect("fast path reports the fraction");
        assert!((frac - 1.0).abs() < 1e-12);
    }
    // Spot-check the lane coupling at scale (the full 250-seed sweep
    // lives in crates/core/tests/batch_equivalence.rs).
    assert_eq!(block[0], prep.trial_lane(42, 0));

    if cfg!(not(debug_assertions)) {
        assert!(
            block_time < Duration::from_secs(8),
            "n=1e5 64-trial block took {block_time:?} (budget 8s)"
        );
    }
}

#[test]
fn sharded_flood_trial_at_n_1e6_fits_wall_and_rss_budgets() {
    // The 10⁶ acceptance cell: one scalar fast-flood trial, run both
    // monolithic and through the 4-shard frontier passes. The sharded
    // replay must be byte-identical (the 250-seed sweep lives in
    // crates/core/tests/shard_equivalence.rs; this is the at-scale
    // spot check), and the whole process must respect the documented
    // budgets: 60 s build + 5 s trial (release), 4 GiB peak RSS.
    let scenario = |shards| Scenario {
        graph: GraphFamily::Gnp {
            n: 1_000_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::FloodFast { horizon_scale: 1 },
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards,
    };
    let build_start = Instant::now();
    let mono = scenario(ShardSpec::Auto).try_prepare().expect("valid");
    let sharded = scenario(ShardSpec::Fixed(4)).try_prepare().expect("valid");
    let build_time = build_start.elapsed();
    assert!(mono.shard_plan().is_none(), "auto stays monolithic at 1e6");
    assert!(sharded.shard_plan().is_some());

    let trial_start = Instant::now();
    let out = mono.trial_lane(42, 7);
    let trial_time = trial_start.elapsed();
    assert!(out.success, "gnp-connected flood must complete");
    assert_eq!(
        sharded.trial_lane(42, 7),
        out,
        "sharding is outcome-neutral"
    );

    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(5),
            "n=1e6 flood trial took {trial_time:?} (budget 5s)"
        );
        assert!(
            build_time < Duration::from_secs(60),
            "n=1e6 double graph+plan build took {build_time:?} (budget 60s)"
        );
        assert_rss_budget("n=1e6 smoke", 4 << 30);
    }
}

#[test]
#[ignore = "10^7-scale release gate: minutes of wall; run via CI's dedicated step or --include-ignored"]
fn sharded_flood_trial_at_n_1e7_fits_wall_and_rss_budgets() {
    // The 10⁷ acceptance cell (CI runs this in its own release step).
    // Auto-sharding must engage on its own above SHARD_AUTO_MIN_N, and
    // the documented budgets are 10 min build + 30 s trial wall with
    // 16 GiB peak RSS — the adjacency-list build dominates both.
    let prep = Scenario {
        graph: GraphFamily::Gnp {
            n: 10_000_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::FloodFast { horizon_scale: 1 },
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    };
    let build_start = Instant::now();
    let prep = prep.try_prepare().expect("valid scenario");
    let build_time = build_start.elapsed();
    assert!(
        prep.shard_plan().is_some(),
        "auto-sharding must engage at 1e7"
    );

    let trial_start = Instant::now();
    let out = prep.trial_lane(42, 0);
    let trial_time = trial_start.elapsed();
    assert!(out.success, "gnp-connected flood must complete");

    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(30),
            "n=1e7 flood trial took {trial_time:?} (budget 30s)"
        );
        assert!(
            build_time < Duration::from_secs(600),
            "n=1e7 graph+plan build took {build_time:?} (budget 600s)"
        );
        assert_rss_budget("n=1e7 flood smoke", 16 << 30);
    }
}

#[test]
#[ignore = "10^7-scale release gate: minutes of wall; run via CI's dedicated step or --include-ignored"]
fn sharded_radio_trial_at_n_1e7_fits_wall_and_rss_budgets() {
    // The 10⁷ radio acceptance cell (CI runs this in its own release
    // step, next to the flood gate). One scalar Decay trial through the
    // auto-engaged shard-at-a-time passes — the global collision
    // counter and epoch-exhaustion sweep run across segment views. The
    // documented budgets: 10 min build (graph + the BFS behind the
    // classical Decay parameterization) + 120 s trial wall, 16 GiB
    // peak RSS. The trial budget is wider than flood's because Decay
    // re-walks the active set `⌈log₂ n⌉ + 1` rounds per epoch.
    let prep = Scenario {
        graph: GraphFamily::Gnp {
            n: 10_000_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::DecayFast { epoch_factor: 2 },
        model: Model::Radio,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    };
    let build_start = Instant::now();
    let prep = prep.try_prepare().expect("valid scenario");
    let build_time = build_start.elapsed();
    assert!(
        prep.shard_plan().is_some(),
        "auto-sharding must engage at 1e7"
    );

    let trial_start = Instant::now();
    let out = prep.trial_lane(42, 0);
    let trial_time = trial_start.elapsed();
    assert!(out.success, "gnp-connected decay must complete");

    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(120),
            "n=1e7 radio trial took {trial_time:?} (budget 120s)"
        );
        assert!(
            build_time < Duration::from_secs(600),
            "n=1e7 graph+plan build took {build_time:?} (budget 600s)"
        );
        assert_rss_budget("n=1e7 radio smoke", 16 << 30);
    }
}

#[test]
#[ignore = "10^7-scale release gate: minutes of wall; run via CI's dedicated step or --include-ignored"]
fn sharded_simple_trial_at_n_1e7_fits_wall_and_rss_budgets() {
    // The 10⁷ Simple acceptance cell (CI runs this in its own release
    // step). One scalar trial of the fixed n·m schedule through the
    // auto-engaged sharded (level, id)-ordered phase walk. Budgets:
    // 10 min build (graph + BFS tree) + 30 s trial wall, 16 GiB peak
    // RSS — the geometric-draw walk is O(n + adoptions), so the trial
    // is flood-cheap despite the 10⁸-round nominal schedule.
    let prep = Scenario {
        graph: GraphFamily::Gnp {
            n: 10_000_000,
            avg_deg: 8,
            seed: 5,
        },
        algorithm: Algorithm::SimpleFast { phase_len: None },
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    };
    let build_start = Instant::now();
    let prep = prep.try_prepare().expect("valid scenario");
    let build_time = build_start.elapsed();
    assert!(
        prep.shard_plan().is_some(),
        "auto-sharding must engage at 1e7"
    );

    let trial_start = Instant::now();
    let out = prep.trial_lane(42, 0);
    let trial_time = trial_start.elapsed();
    assert!(out.success, "gnp-connected simple must broadcast correctly");

    if cfg!(not(debug_assertions)) {
        assert!(
            trial_time < Duration::from_secs(30),
            "n=1e7 simple trial took {trial_time:?} (budget 30s)"
        );
        assert!(
            build_time < Duration::from_secs(600),
            "n=1e7 graph+plan build took {build_time:?} (budget 600s)"
        );
        assert_rss_budget("n=1e7 simple smoke", 16 << 30);
    }
}

#[test]
#[ignore = "10^7-scale release gate: minutes of wall; run via CI's dedicated step or --include-ignored"]
fn out_of_core_batch_per_trial_wall_beats_scalar_5x_at_n_1e7() {
    // The batched out-of-core acceptance gate: a 64-lane flood block
    // over a disk-backed store at n = 10⁷ must amortize its segment
    // loads well enough that the *per-trial* wall lands at least 5x
    // below one scalar out-of-core trial of the same kernel. Flood is
    // the kernel where the batched claim bites: its lanes share one
    // bit-plane pass, so the block costs roughly one traversal's I/O.
    // (Radio's Decay block is the documented structural ceiling —
    // per-lane-independent coins over a unioned active set — and its
    // coupling is pinned by shard_equivalence.rs instead.) The batch
    // couples its lanes to the scalar path (lane 0 of the block is
    // byte-identical to `run_lane(.., 0)`), so the comparison is one
    // workload measured two ways, not two workloads.
    let n: usize = 10_000_000;
    #[allow(clippy::cast_precision_loss)]
    let nf = n as f64;
    let q = 8.0 / (nf - 1.0);
    let plan = ShardPlan::for_budget(n, 8 * n as u64, 1 << 30);
    let mut sink = SpillSink::create(default_scratch_dir(), plan).expect("spill sink");
    let mut rng = SmallRng::seed_from_u64(0x0107_e8ed);
    gnp_edges(&mut sink, n, q, &mut rng).expect("edge stream");
    let store = ShardStore::Disk(sink.finalize().expect("finalize"));
    let reach = ShardedBfsTree::build(&store, 0, default_scratch_dir())
        .expect("sharded BFS build")
        .reachable();

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let d_est = (3.0 * nf.ln() / 8f64.ln()).ceil() as usize;
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let horizon = ((2.0 * (d_est as f64 + 4.0 * nf.ln()) / 0.7).ceil() as usize).max(1);
    let flood = ShardedFlood::new(store, 0, horizon);

    let scalar_start = Instant::now();
    let scalar = flood.run_lane(0.3, 42, 0).expect("scalar trial");
    let scalar_wall = scalar_start.elapsed();

    let batch_start = Instant::now();
    let batch = flood.run_batch(0.3, 42, reach).expect("batched block");
    let batch_wall = batch_start.elapsed();

    assert_eq!(batch.lane_outcome(0), scalar, "lanes couple to scalar");

    if cfg!(not(debug_assertions)) {
        let per_trial = batch_wall / u32::try_from(BATCH_LANES).expect("lane count fits");
        assert!(
            per_trial * 5 <= scalar_wall,
            "batched per-trial wall {per_trial:?} not 5x under scalar {scalar_wall:?} \
             (batch total {batch_wall:?} over {BATCH_LANES} lanes)"
        );
    }
}

#[test]
fn auto_fast_path_engages_at_the_simple_threshold() {
    // Plain Simple under omission must transparently select the fast
    // path exactly from SIMPLE_FAST_MIN_N upward — the harness-side
    // contract DESIGN.md documents (mirroring the flood/radio checks).
    let at = Scenario {
        graph: GraphFamily::PreferentialAttachment {
            n: SIMPLE_FAST_MIN_N,
            m: 3,
            seed: 11,
        },
        algorithm: Algorithm::Simple,
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid scenario");
    assert!(at.uses_fast_path());
    assert!(at.trial(7).success);
    let below = Scenario {
        graph: GraphFamily::PreferentialAttachment {
            n: SIMPLE_FAST_MIN_N - 1,
            m: 3,
            seed: 11,
        },
        algorithm: Algorithm::Simple,
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid scenario");
    assert!(
        !below.uses_fast_path(),
        "below the threshold: general engine"
    );
}

#[test]
fn auto_fast_path_engages_for_large_radio_scenarios() {
    // Plain Decay must transparently select the fast path at scale —
    // the harness-side contract DESIGN.md documents.
    let prep = Scenario {
        graph: GraphFamily::PreferentialAttachment {
            n: 8192,
            m: 3,
            seed: 11,
        },
        algorithm: Algorithm::Decay { epoch_factor: 2 },
        model: Model::Radio,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid scenario");
    assert!(prep.uses_fast_path());
    assert!(prep.trial(7).success);
}

#[test]
fn auto_fast_path_engages_for_large_flood_scenarios() {
    // The plain Flood algorithm must transparently select the fast path
    // at scale — the harness-side contract DESIGN.md documents.
    let prep = Scenario {
        graph: GraphFamily::PreferentialAttachment {
            n: 8192,
            m: 3,
            seed: 11,
        },
        algorithm: Algorithm::Flood { horizon_scale: 1 },
        model: Model::Mp,
        fault: FaultConfig::omission(0.3),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid scenario");
    assert!(prep.uses_fast_path());
    assert!(prep.trial(7).success);
}
