//! Golden-file and CLI-contract tests against a real experiment binary.
//!
//! Runs `exp_e4_datalink --quick --threads 2 --seed 2005 --json …` as a
//! subprocess and checks that the emitted JSON (with the one
//! nondeterministic field, `wall_ms`, normalized to zero) is
//! byte-identical to the committed golden file — locking in the schema,
//! the writer's format, and the determinism of the sweep outcomes from
//! the root seed. E4 is the cheapest Monte-Carlo binary, so this stays
//! fast enough for `cargo test`.

use std::path::PathBuf;
use std::process::Command;

use randcast_stats::report::SweepReport;

fn run_binary(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_exp_e4_datalink"))
        .args(args)
        .output()
        .expect("spawn exp_e4_datalink")
}

fn normalized(mut report: SweepReport) -> SweepReport {
    for cell in &mut report.cells {
        cell.wall_ms = 0.0;
    }
    report
}

#[test]
fn quick_json_output_matches_the_golden_file() {
    let json_path =
        std::env::temp_dir().join(format!("randcast_golden_{}.json", std::process::id()));
    let out = run_binary(&[
        "--quick",
        "--threads",
        "2",
        "--seed",
        "2005",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "binary failed: {out:?}");

    let text = std::fs::read_to_string(&json_path).expect("read emitted json");
    let _ = std::fs::remove_file(&json_path);
    let report = SweepReport::from_json(&text).expect("emitted JSON parses");

    // Schema sanity before byte comparison.
    assert_eq!(report.experiment, "e4_datalink");
    assert_eq!(report.cells.len(), 32, "4 p × 4 m × 2 bits");
    for cell in &report.cells {
        let keys: Vec<&str> = cell.params.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["p", "m", "bit", "analytic err"]);
        assert_eq!(cell.trials, 60);
        assert!(cell.successes <= cell.trials);
    }

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exp_e4_quick.json");
    let golden_text = std::fs::read_to_string(&golden_path).expect("read golden file");
    let golden = SweepReport::from_json(&golden_text).expect("golden JSON parses");

    assert_eq!(
        normalized(report).to_json(),
        normalized(golden).to_json(),
        "emitted report diverged from tests/golden/exp_e4_quick.json \
         (if the change is intentional, regenerate the golden file)"
    );
}

#[test]
fn unknown_flags_abort_with_usage_before_any_work() {
    let out = run_binary(&["--qiuck"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(
        String::from_utf8_lossy(&out.stdout).is_empty(),
        "must abort before printing any experiment output"
    );
}

#[test]
fn help_exits_zero_with_usage() {
    let out = run_binary(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}
