//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use randcast_stats::chernoff::{
    binomial_upper_tail, hoeffding_majority_error, ln_choose, phase_len_malicious_mp,
    phase_len_malicious_radio, phase_len_omission,
};
use randcast_stats::estimate::{Running, SuccessEstimate};
use randcast_stats::montecarlo::{run_trials, run_trials_parallel};
use randcast_stats::seed::{splitmix64, SeedSequence};

proptest! {
    #[test]
    fn splitmix_is_injective_on_samples(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(a == b, splitmix64(a) == splitmix64(b));
    }

    #[test]
    fn seed_sequence_is_pure(master in any::<u64>(), i in 0u64..10_000) {
        let s = SeedSequence::new(master);
        prop_assert_eq!(s.nth_seed(i), SeedSequence::new(master).nth_seed(i));
    }

    #[test]
    fn child_sequences_diverge(master in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let s = SeedSequence::new(master);
        prop_assert_ne!(s.child(a).nth_seed(0), s.child(b).nth_seed(0));
    }

    #[test]
    fn wilson_interval_is_sane(s in 0usize..=500, extra in 0usize..500, z in 0.1f64..4.0) {
        let t = s + extra + 1;
        let est = SuccessEstimate::new(s, t);
        let (lo, hi) = est.wilson_interval(z);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= est.rate() + 1e-12);
        prop_assert!(est.rate() <= hi + 1e-12);
        // Wider z ⇒ wider interval.
        let (lo2, hi2) = est.wilson_interval(z + 0.5);
        prop_assert!(lo2 <= lo + 1e-12 && hi <= hi2 + 1e-12);
    }

    #[test]
    fn binomial_tail_monotonicity(n in 1u64..60, k in 0u64..60, p in 0.0f64..1.0) {
        prop_assume!(k <= n);
        let t = binomial_upper_tail(n, k, p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
        if k > 0 {
            prop_assert!(binomial_upper_tail(n, k - 1, p) >= t - 1e-12);
        }
        // Monotone in p.
        let p2 = (p + 0.1).min(1.0);
        prop_assert!(binomial_upper_tail(n, k, p2) >= t - 1e-9);
    }

    #[test]
    fn binomial_tail_complements_sum_to_one(n in 1u64..40, p in 0.0f64..1.0) {
        // P(X >= 0) = 1 and P(X >= k) - P(X >= k+1) = P(X = k) >= 0.
        prop_assert!((binomial_upper_tail(n, 0, p) - 1.0).abs() < 1e-9);
        for k in 0..=n {
            let diff = binomial_upper_tail(n, k, p) - binomial_upper_tail(n, k + 1, p);
            prop_assert!(diff >= -1e-9);
        }
    }

    #[test]
    fn ln_choose_symmetry(n in 0u64..300, k in 0u64..300) {
        prop_assume!(k <= n);
        prop_assert!((ln_choose(n, k) - ln_choose(n, n - k)).abs() < 1e-6);
    }

    #[test]
    fn omission_phase_len_is_minimal_and_sufficient(
        n in 2usize..100_000,
        p in 0.01f64..0.99,
    ) {
        let m = phase_len_omission(n, p);
        let bound = 1.0 / (n as f64 * n as f64);
        prop_assert!(p.powi(m as i32) <= bound * (1.0 + 1e-9));
        if m > 1 {
            prop_assert!(p.powi(m as i32 - 1) > bound * (1.0 - 1e-9));
        }
    }

    #[test]
    fn malicious_mp_phase_len_is_sufficient(n in 2usize..100_000, p in 0.0f64..0.49) {
        let m = phase_len_malicious_mp(n, p);
        prop_assert!(m % 2 == 1);
        prop_assert!(
            hoeffding_majority_error(m as u64, p) <= 1.0 / (n as f64 * n as f64) + 1e-12
        );
    }

    #[test]
    fn malicious_radio_phase_len_is_odd_and_grows(
        n in 2usize..10_000,
        delta in 0usize..6,
    ) {
        // Pick p safely inside the feasible region.
        let p = randcast_stats::chernoff::make_odd(1) as f64 * 0.0 + 0.02;
        let m = phase_len_malicious_radio(n, p, delta);
        prop_assert!(m % 2 == 1);
        if delta > 0 {
            prop_assert!(phase_len_malicious_radio(n, p, delta - 1) <= m);
        }
    }

    #[test]
    fn parallel_trials_match_sequential(
        trials in 0usize..200,
        threads in 1usize..8,
        master in any::<u64>(),
    ) {
        use rand::Rng as _;
        let seq = run_trials(trials, SeedSequence::new(master), |rng| rng.gen::<u32>());
        let par = run_trials_parallel(trials, SeedSequence::new(master), threads, |rng| {
            rng.gen::<u32>()
        });
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn running_matches_naive_mean_variance(xs in proptest::collection::vec(-1e3f64..1e3, 2..50)) {
        let acc: Running = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((acc.mean() - mean).abs() < 1e-6);
        prop_assert!((acc.sample_variance() - var).abs() < 1e-4);
        prop_assert_eq!(acc.count(), xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(acc.min(), min);
        prop_assert_eq!(acc.max(), max);
    }
}
