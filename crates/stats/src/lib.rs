//! Monte-Carlo and estimation substrate for the `randcast` project.
//!
//! The paper's guarantees are probabilistic ("almost-safe" = success with
//! probability ≥ `1 − 1/n`), and its parameter choices are Chernoff-bound
//! driven. This crate provides the numerically careful pieces shared by all
//! experiments:
//!
//! * [`seed`] — SplitMix64 seed derivation so that every trial of every
//!   experiment is deterministic from a single master seed,
//! * [`aggregate`] — per-cell outcome reduction (success counts, mean
//!   rounds, mean informed fraction) shared by the sweep driver,
//! * [`montecarlo`] — sequential and parallel trial runners,
//! * [`estimate`] — success-rate estimation with Wilson confidence
//!   intervals and almost-safety verdicts,
//! * [`chernoff`] — the paper's parameter formulas (`m = ⌈c log n⌉` with
//!   the explicit constants from Sections 2 and 3),
//! * [`quantile`] — distribution summaries (median, upper quantiles) for
//!   per-trial broadcast times,
//! * [`table`] — plain-text table rendering for experiment reports,
//! * [`report`] — the structured sweep-result schema with its
//!   dependency-free JSON writer/parser and Markdown-table rendering.
//!
//! # Example
//!
//! ```
//! use randcast_stats::{estimate::SuccessEstimate, montecarlo, seed::SeedSequence};
//!
//! // Estimate P(coin(0.8)) with 1000 deterministic trials.
//! let outcome = montecarlo::run_trials(1000, SeedSequence::new(42), |rng| {
//!     use rand::Rng;
//!     rng.gen_bool(0.8)
//! });
//! let est = SuccessEstimate::from_outcomes(&outcome);
//! assert!((est.rate() - 0.8).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod chernoff;
pub mod estimate;
pub mod montecarlo;
pub mod quantile;
pub mod report;
pub mod seed;
pub mod table;
