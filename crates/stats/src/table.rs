//! Minimal plain-text table rendering for experiment reports.
//!
//! Experiments print aligned, pipe-delimited tables (valid Markdown) so
//! the bench binaries' stdout can be pasted straight into
//! `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use randcast_stats::table::Table;
///
/// let mut t = Table::new(["n", "rate"]);
/// t.row(["16", "0.994"]);
/// t.row(["32", "0.998"]);
/// let s = t.render();
/// assert!(s.contains("| n  | rate  |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned Markdown.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, " {c:<w$} |", w = width[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{:-<w$}|", "", w = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a probability with 4 decimal places (the precision at which the
/// experiment tables are meaningful).
#[must_use]
pub fn fmt_prob(p: f64) -> String {
    format!("{p:.4}")
}

/// Formats a float with 2 decimal places.
#[must_use]
pub fn fmt_f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["100", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| a"));
        assert!(lines[1].starts_with("|--"));
        // All lines equal length (alignment).
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_prob(0.12345), "0.1235");
        assert_eq!(fmt_f2(2.34567), "2.35");
    }
}
