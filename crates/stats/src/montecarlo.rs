//! Trial runners for Monte-Carlo experiments.
//!
//! Both runners guarantee that trial `i` observes the RNG stream
//! `seeds.nth_rng(i)`, so sequential and parallel execution produce
//! identical outcome vectors.

use rand::rngs::SmallRng;

use crate::seed::SeedSequence;

/// Runs `trials` independent trials sequentially, collecting each outcome.
///
/// # Example
///
/// ```
/// use randcast_stats::{montecarlo, seed::SeedSequence};
/// use rand::Rng;
///
/// let outcomes = montecarlo::run_trials(100, SeedSequence::new(1), |rng| rng.gen_bool(0.5));
/// assert_eq!(outcomes.len(), 100);
/// ```
pub fn run_trials<T, F>(trials: usize, seeds: SeedSequence, mut trial: F) -> Vec<T>
where
    F: FnMut(&mut SmallRng) -> T,
{
    (0..trials)
        .map(|i| {
            let mut rng = seeds.nth_rng(i as u64);
            trial(&mut rng)
        })
        .collect()
}

/// Runs `trials` independent trials across `threads` worker threads.
///
/// Outcomes are returned in trial order and are identical to
/// [`run_trials`] with the same seed sequence (determinism is preserved by
/// indexing the RNG stream by trial id, not by thread).
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn run_trials_parallel<T, F>(
    trials: usize,
    seeds: SeedSequence,
    threads: usize,
    trial: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&mut SmallRng) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || trials < 2 {
        let f = &trial;
        return run_trials(trials, seeds, |rng| f(rng));
    }
    let mut outcomes: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let chunk = trials.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in outcomes.chunks_mut(chunk).enumerate() {
            let trial = &trial;
            let seeds = &seeds;
            scope.spawn(move || {
                let base = t * chunk;
                for (off, out) in slot.iter_mut().enumerate() {
                    let mut rng = seeds.nth_rng((base + off) as u64);
                    *out = Some(trial(&mut rng));
                }
            });
        }
    });
    outcomes
        .into_iter()
        .map(|o| o.expect("all trials filled"))
        .collect()
}

/// Convenience: count of `true` outcomes over `trials` boolean trials.
pub fn success_count<F>(trials: usize, seeds: SeedSequence, trial: F) -> usize
where
    F: FnMut(&mut SmallRng) -> bool,
{
    run_trials(trials, seeds, trial)
        .into_iter()
        .filter(|&b| b)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn sequential_is_deterministic() {
        let a = run_trials(50, SeedSequence::new(3), |rng| rng.gen::<u64>());
        let b = run_trials(50, SeedSequence::new(3), |rng| rng.gen::<u64>());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = run_trials(101, SeedSequence::new(9), |rng| rng.gen::<u64>());
        for threads in [1, 2, 3, 8] {
            let par =
                run_trials_parallel(101, SeedSequence::new(9), threads, |rng| rng.gen::<u64>());
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn success_count_tracks_probability() {
        let c = success_count(2000, SeedSequence::new(17), |rng| rng.gen_bool(0.25));
        let rate = c as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn zero_trials_is_empty() {
        let v: Vec<bool> = run_trials(0, SeedSequence::new(0), |_| true);
        assert!(v.is_empty());
        let p: Vec<bool> = run_trials_parallel(0, SeedSequence::new(0), 4, |_| true);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = run_trials_parallel(1, SeedSequence::new(0), 0, |_| true);
    }
}
