//! Quantile estimation for trial-level measurements.
//!
//! Mean completion rounds hide the tail the paper's bounds actually
//! speak about (`O(D + log n)` *with probability* `1 − 1/n`), so the
//! large-`n` sweeps report distribution summaries: medians, upper
//! quantiles, and extremes of per-trial broadcast times.

/// The `q`-quantile of an **ascending-sorted** sample, with linear
/// interpolation between adjacent order statistics (type-7 estimator,
/// the R/NumPy default): `quantile(s, 0.0)` is the minimum,
/// `quantile(s, 1.0)` the maximum, `quantile(s, 0.5)` the median.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q ∉ [0, 1]`; debug-asserts that the
/// input really is sorted.
#[must_use]
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile order out of range");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be ascending"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A five-point-plus-tail summary of a sample's distribution.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct QuantileSummary {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// Third quartile.
    pub p75: f64,
    /// 90th percentile (the paper-relevant "all but a small tail").
    pub p90: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl QuantileSummary {
    /// Summarizes an unsorted sample; `None` when it is empty.
    #[must_use]
    pub fn from_unsorted(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(QuantileSummary {
            min: sorted[0],
            p25: quantile(&sorted, 0.25),
            p50: quantile(&sorted, 0.50),
            p75: quantile(&sorted, 0.75),
            p90: quantile(&sorted, 0.90),
            max: *sorted.last().expect("non-empty"),
            count: sorted.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints_and_median() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 5.0);
        assert_eq!(quantile(&s, 0.5), 3.0);
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let s = [0.0, 10.0];
        assert!((quantile(&s, 0.25) - 2.5).abs() < 1e-12);
        assert!((quantile(&s, 0.9) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let s = [7.0];
        for q in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(quantile(&s, q), 7.0);
        }
    }

    #[test]
    fn summary_orders_its_fields() {
        let samples: Vec<f64> = (0..101).rev().map(f64::from).collect();
        let s = QuantileSummary::from_unsorted(&samples).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.count, 101);
        assert!(s.min <= s.p25 && s.p25 <= s.p50 && s.p50 <= s.p75);
        assert!(s.p75 <= s.p90 && s.p90 <= s.max);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert_eq!(QuantileSummary::from_unsorted(&[]), None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_order() {
        let _ = quantile(&[1.0], 1.5);
    }
}
