//! Per-cell outcome aggregation shared by sweep drivers.
//!
//! Every Monte-Carlo sweep cell reduces its per-trial outcomes to the
//! same handful of numbers: the success count, the mean completion
//! round over trials that reported one, and the mean informed fraction
//! over trials that measured one. [`OutcomeSummary`] is that reduction,
//! factored out of the sweep driver so the `CellResult` construction in
//! `randcast_core` is not hand-rolled and the numerics are unit-tested
//! where they live.

/// The reduced statistics of one cell's trial outcomes.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OutcomeSummary {
    /// Trials that succeeded.
    pub successes: usize,
    /// Total trials observed.
    pub trials: usize,
    /// Mean completion round over trials that reported one (`None` when
    /// no trial did).
    pub mean_rounds: Option<f64>,
    /// Mean informed fraction over trials that measured one (`None`
    /// when no trial did) — the almost-complete broadcast metric.
    pub mean_informed_frac: Option<f64>,
}

impl OutcomeSummary {
    /// Reduces an iterator of `(success, rounds, informed_frac)`
    /// triples — the measurement surface of a sweep `TrialOutcome`.
    pub fn collect<I>(outcomes: I) -> Self
    where
        I: IntoIterator<Item = (bool, Option<f64>, Option<f64>)>,
    {
        let mut summary = OutcomeSummary::default();
        let (mut round_sum, mut round_n) = (0.0f64, 0usize);
        let (mut frac_sum, mut frac_n) = (0.0f64, 0usize);
        for (success, rounds, frac) in outcomes {
            summary.trials += 1;
            summary.successes += usize::from(success);
            if let Some(r) = rounds {
                round_sum += r;
                round_n += 1;
            }
            if let Some(f) = frac {
                frac_sum += f;
                frac_n += 1;
            }
        }
        summary.mean_rounds = (round_n > 0).then(|| round_sum / round_n as f64);
        summary.mean_informed_frac = (frac_n > 0).then(|| frac_sum / frac_n as f64);
        summary
    }

    /// Point estimate `successes / trials` (0 on an empty summary).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_none() {
        let s = OutcomeSummary::collect(std::iter::empty());
        assert_eq!(s.successes, 0);
        assert_eq!(s.trials, 0);
        assert_eq!(s.mean_rounds, None);
        assert_eq!(s.mean_informed_frac, None);
        assert_eq!(s.rate(), 0.0);
    }

    #[test]
    fn counts_and_means_are_exact() {
        let s = OutcomeSummary::collect([
            (true, Some(10.0), Some(1.0)),
            (false, None, Some(0.5)),
            (true, Some(20.0), None),
            (false, None, None),
        ]);
        assert_eq!(s.successes, 2);
        assert_eq!(s.trials, 4);
        assert_eq!(s.rate(), 0.5);
        assert_eq!(s.mean_rounds, Some(15.0));
        assert_eq!(s.mean_informed_frac, Some(0.75));
    }

    #[test]
    fn means_ignore_missing_measurements() {
        // Only trials that measured a quantity enter its denominator.
        let s = OutcomeSummary::collect([
            (true, Some(4.0), None),
            (true, None, None),
            (true, None, None),
        ]);
        assert_eq!(s.mean_rounds, Some(4.0));
        assert_eq!(s.mean_informed_frac, None);
    }

    #[test]
    fn all_success_rate_is_one() {
        let s = OutcomeSummary::collect((0..7).map(|_| (true, None, None)));
        assert_eq!(s.successes, 7);
        assert_eq!(s.rate(), 1.0);
    }
}
