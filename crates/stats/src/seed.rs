//! Deterministic seed derivation.
//!
//! Every experiment derives all of its randomness from one master `u64`
//! through SplitMix64, so reruns are bit-identical and trials are
//! statistically independent streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step: maps a state to the next pseudo-random output.
///
/// This is the standard finalizer from Steele, Lea & Flood (2014); it is a
/// bijection on `u64` with excellent avalanche behaviour, making it a good
/// key-derivation function for RNG seeds.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stream of derived seeds rooted at a master seed.
///
/// `SeedSequence::new(master).nth_seed(i)` is a pure function of
/// `(master, i)`: trial `i` always sees the same randomness no matter how
/// trials are scheduled (sequentially or across threads).
///
/// # Example
///
/// ```
/// use randcast_stats::seed::SeedSequence;
///
/// let s = SeedSequence::new(7);
/// assert_eq!(s.nth_seed(3), SeedSequence::new(7).nth_seed(3));
/// assert_ne!(s.nth_seed(3), s.nth_seed(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the `i`-th seed.
    #[must_use]
    pub fn nth_seed(&self, i: u64) -> u64 {
        // Two rounds decorrelate (master, i) thoroughly.
        splitmix64(splitmix64(self.master ^ 0xA076_1D64_78BD_642F).wrapping_add(i))
    }

    /// Builds the RNG for trial `i`.
    #[must_use]
    pub fn nth_rng(&self, i: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.nth_seed(i))
    }

    /// Derives a child sequence for a named sub-experiment, so that two
    /// sub-experiments never share trial seeds.
    #[must_use]
    pub fn child(&self, label: u64) -> SeedSequence {
        SeedSequence {
            master: splitmix64(self.master.wrapping_add(0x9E37_79B9_7F4A_7C15 ^ label)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_known_values_differ() {
        // Bijection sanity: distinct inputs map to distinct outputs.
        let outs: Vec<u64> = (0..100).map(splitmix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }

    #[test]
    fn nth_seed_is_pure() {
        let s = SeedSequence::new(123);
        for i in 0..50 {
            assert_eq!(s.nth_seed(i), SeedSequence::new(123).nth_seed(i));
        }
    }

    #[test]
    fn different_masters_diverge() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        assert_ne!(a.nth_seed(0), b.nth_seed(0));
    }

    #[test]
    fn children_do_not_collide_with_parent() {
        let s = SeedSequence::new(99);
        let c1 = s.child(1);
        let c2 = s.child(2);
        assert_ne!(c1.nth_seed(0), c2.nth_seed(0));
        assert_ne!(c1.nth_seed(0), s.nth_seed(0));
    }

    #[test]
    fn rng_is_reproducible() {
        let s = SeedSequence::new(5);
        let x: u64 = s.nth_rng(7).gen();
        let y: u64 = s.nth_rng(7).gen();
        assert_eq!(x, y);
    }
}
