//! Success-rate estimation and almost-safety verdicts.
//!
//! The paper's acceptance criterion is *almost safety*: success probability
//! at least `1 − 1/n`. Verifying that empirically needs confidence-interval
//! care, especially near rate 1 where the normal approximation fails; we
//! use Wilson score intervals and the rule of three.

/// A binomial success-rate estimate with Wilson confidence bounds.
///
/// # Example
///
/// ```
/// use randcast_stats::estimate::SuccessEstimate;
///
/// let est = SuccessEstimate::new(995, 1000);
/// assert!(est.rate() > 0.99);
/// let (lo, hi) = est.wilson_interval(1.96);
/// assert!(lo < est.rate() && est.rate() < hi);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SuccessEstimate {
    successes: usize,
    trials: usize,
}

impl SuccessEstimate {
    /// Creates an estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials` or `trials == 0`.
    #[must_use]
    pub fn new(successes: usize, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(successes <= trials, "successes exceed trials");
        SuccessEstimate { successes, trials }
    }

    /// Creates an estimate from a vector of boolean outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    #[must_use]
    pub fn from_outcomes(outcomes: &[bool]) -> Self {
        SuccessEstimate::new(outcomes.iter().filter(|&&b| b).count(), outcomes.len())
    }

    /// Number of successes.
    #[must_use]
    pub fn successes(&self) -> usize {
        self.successes
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Point estimate of the success probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// Wilson score interval at the given z-value (e.g. `1.96` for 95%).
    ///
    /// Well-behaved at the boundary rates 0 and 1, unlike the Wald
    /// interval.
    #[must_use]
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Rule-of-three upper bound on the failure probability when zero
    /// failures were observed: `P(fail) ≤ 3/trials` at 95% confidence.
    /// Returns `None` if failures were observed (use
    /// [`wilson_interval`](Self::wilson_interval) instead).
    #[must_use]
    pub fn rule_of_three_failure_bound(&self) -> Option<f64> {
        (self.successes == self.trials).then(|| 3.0 / self.trials as f64)
    }

    /// Almost-safety verdict against the paper's threshold `1 − 1/n`.
    ///
    /// Returns the comparison of the Wilson *lower* bound with `1 − 1/n`:
    /// [`Verdict::Pass`] if even the pessimistic rate clears the bar,
    /// [`Verdict::Fail`] if even the optimistic rate misses it, and
    /// [`Verdict::Inconclusive`] otherwise (more trials needed).
    #[must_use]
    pub fn almost_safe_verdict(&self, n: usize, z: f64) -> Verdict {
        let target = 1.0 - 1.0 / n as f64;
        let (lo, hi) = self.wilson_interval(z);
        if lo >= target {
            Verdict::Pass
        } else if hi < target {
            Verdict::Fail
        } else {
            Verdict::Inconclusive
        }
    }
}

/// Outcome of comparing an estimated success rate with the almost-safety
/// target `1 − 1/n`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Confidently at or above the target.
    Pass,
    /// Confidently below the target.
    Fail,
    /// The confidence interval straddles the target.
    Inconclusive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "FAIL",
            Verdict::Inconclusive => "inconclusive",
        };
        f.write_str(s)
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used for timing measurements (broadcast completion rounds, etc.).
///
/// # Example
///
/// ```
/// use randcast_stats::estimate::Running;
///
/// let mut acc = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.sample_variance(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`+∞` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Running::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_ratio() {
        let e = SuccessEstimate::new(3, 4);
        assert!((e.rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_successes_than_trials_panics() {
        let _ = SuccessEstimate::new(5, 4);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for (s, t) in [(0, 10), (10, 10), (5, 10), (999, 1000)] {
            let e = SuccessEstimate::new(s, t);
            let (lo, hi) = e.wilson_interval(1.96);
            assert!(lo <= e.rate() + 1e-12 && e.rate() - 1e-12 <= hi);
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_narrows_with_trials() {
        let wide = SuccessEstimate::new(8, 10).wilson_interval(1.96);
        let tight = SuccessEstimate::new(800, 1000).wilson_interval(1.96);
        assert!((tight.1 - tight.0) < (wide.1 - wide.0));
    }

    #[test]
    fn rule_of_three_only_when_perfect() {
        assert!(SuccessEstimate::new(100, 100)
            .rule_of_three_failure_bound()
            .is_some());
        assert!(SuccessEstimate::new(99, 100)
            .rule_of_three_failure_bound()
            .is_none());
    }

    #[test]
    fn verdicts_make_sense() {
        // 1000/1000 successes vs target 1 - 1/10 = 0.9: pass.
        assert_eq!(
            SuccessEstimate::new(1000, 1000).almost_safe_verdict(10, 1.96),
            Verdict::Pass
        );
        // 500/1000 vs target 0.9: fail.
        assert_eq!(
            SuccessEstimate::new(500, 1000).almost_safe_verdict(10, 1.96),
            Verdict::Fail
        );
        // 9/10 vs 0.9 with tiny sample: inconclusive.
        assert_eq!(
            SuccessEstimate::new(9, 10).almost_safe_verdict(10, 1.96),
            Verdict::Inconclusive
        );
    }

    #[test]
    fn running_stats() {
        let acc: Running = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.sample_variance() - 4.571_428_571_428_571).abs() < 1e-9);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn running_empty_is_zeroish() {
        let acc = Running::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.count(), 0);
    }
}
