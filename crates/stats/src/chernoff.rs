//! Chernoff/Hoeffding bound helpers and the paper's explicit parameter
//! formulas.
//!
//! Every algorithm in the paper fixes a phase length `m = ⌈c log n⌉` where
//! the constant `c = c(p)` comes from a Chernoff-style tail bound. This
//! module computes those constants *explicitly*, so experiments run with
//! exactly the phase lengths the proofs prescribe:
//!
//! * [`phase_len_omission`] — Theorem 2.1: smallest `m` with `p^m ≤ 1/n²`.
//! * [`phase_len_malicious_mp`] — Theorem 2.2: majority of `m` votes wrong
//!   with probability ≤ `1/n²` when each vote is bad with probability
//!   `p < 1/2` (Hoeffding).
//! * [`phase_len_malicious_radio`] — Theorem 2.4: per-step correct
//!   reception probability `q = (1−p)^{Δ+1}`, incorrect ≤ `p`; majority
//!   correct with probability ≥ `1 − 1/n²` whenever `q > p`.
//! * [`flood_horizon`] — Lemma 3.1 / Theorem 3.1: number of rounds after
//!   which a wavefront over a length-`L` line has advanced `L` hops except
//!   with probability ≤ `exp(−target_exponent)`.

/// Natural log of `n choose k` via `ln Γ` (Stirling series), exact enough
/// for tail computations with `n` up to millions.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k must be at most n");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` (exact summation below 256, Stirling series above).
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    if n < 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let x = n as f64;
        // Stirling with the first correction terms: accurate to ~1e-10 here.
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x * x * x)
    }
}

/// Exact upper tail of a binomial: `P(Bin(n, p) >= k)`.
///
/// Computed by log-space summation; suitable for the moderate `n` used in
/// composition-rule accounting (\[CO2\] in Section 3).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn binomial_upper_tail(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let mut total = 0.0f64;
    for j in k..=n {
        let lt = ln_choose(n, j) + j as f64 * lp + (n - j) as f64 * lq;
        total += lt.exp();
    }
    total.min(1.0)
}

/// Hoeffding bound on a wrong majority: `P(Bin(m, p) ≥ m/2) ≤
/// exp(−2m(1/2 − p)²)` for `p < 1/2`.
#[must_use]
pub fn hoeffding_majority_error(m: u64, p: f64) -> f64 {
    let gap = 0.5 - p;
    (-2.0 * m as f64 * gap * gap).exp()
}

/// Theorem 2.1 phase length: the smallest `m` with `p^m ≤ 1/n²`, i.e.
/// `m = ⌈2 ln n / ln(1/p)⌉` (at least 1).
///
/// A node transmitting `m` times is then heard at least once except with
/// probability `≤ 1/n²`; a union bound over `n` nodes gives almost-safety.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1)` or `n < 2`.
#[must_use]
pub fn phase_len_omission(n: usize, p: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&p),
        "failure probability must be in [0,1)"
    );
    assert!(n >= 2, "need at least two nodes");
    if p == 0.0 {
        return 1;
    }
    let m = (2.0 * (n as f64).ln() / (1.0 / p).ln()).ceil() as usize;
    m.max(1)
}

/// Theorem 2.2 phase length for the message-passing malicious model:
/// the smallest `m` with `exp(−2m(1/2 − p)²) ≤ 1/n²`, i.e.
/// `m = ⌈ln n / (1/2 − p)²⌉` (at least 1, rounded up to odd so majority
/// votes cannot tie).
///
/// # Panics
///
/// Panics if `p ≥ 1/2` (infeasible regime, Theorem 2.3) or `n < 2`.
#[must_use]
pub fn phase_len_malicious_mp(n: usize, p: f64) -> usize {
    assert!((0.0..0.5).contains(&p), "feasible only for p < 1/2");
    assert!(n >= 2, "need at least two nodes");
    let gap = 0.5 - p;
    let m = ((n as f64).ln() / (gap * gap)).ceil() as usize;
    make_odd(m.max(1))
}

/// Theorem 2.4 phase length for the radio malicious model.
///
/// With `q = (1−p)^{Δ+1}` and `q > p`, each of the `m` steps contributes
/// `+1` (correct reception, probability ≥ `q`), `−1` (incorrect, ≤ `p`) or
/// `0`. Hoeffding on the ±1 sum gives wrong-majority probability
/// `≤ exp(−m(q−p)²/2)`; we return the smallest odd `m` pushing that below
/// `1/n²`.
///
/// # Panics
///
/// Panics if `p ≥ (1−p)^{Δ+1}` (infeasible regime) or `n < 2`.
#[must_use]
pub fn phase_len_malicious_radio(n: usize, p: f64, max_degree: usize) -> usize {
    assert!(n >= 2, "need at least two nodes");
    let q = (1.0 - p).powi(max_degree as i32 + 1);
    assert!(p < q, "feasible only for p < (1-p)^(Δ+1)");
    let gap = q - p;
    let m = (4.0 * (n as f64).ln() / (gap * gap)).ceil() as usize;
    make_odd(m.max(1))
}

/// Lemma 3.1 / Theorem 3.1 horizon: number of rounds `τ` such that a
/// Bernoulli(1−p) wavefront advances `length` hops within `τ` rounds except
/// with probability `≤ exp(−target_exponent)`.
///
/// Uses the multiplicative Chernoff bound
/// `P(Bin(τ, 1−p) < L) ≤ exp(−(μ−L)²/(2μ))` with mean
/// `μ = τ(1−p) = 2(L + target_exponent)` — i.e.
/// `τ = ⌈2(L + E)/(1−p)⌉`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1)`.
#[must_use]
pub fn flood_horizon(length: usize, p: f64, target_exponent: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&p),
        "failure probability must be in [0,1)"
    );
    assert!(target_exponent >= 0.0, "exponent must be nonnegative");
    if length == 0 {
        return 0;
    }
    let mu = 2.0 * (length as f64 + target_exponent);
    (mu / (1.0 - p)).ceil() as usize
}

/// Rounds `m` up to the next odd integer (majority votes over an odd
/// number of ballots can never tie).
#[must_use]
pub fn make_odd(m: usize) -> usize {
    if m.is_multiple_of(2) {
        m + 1
    } else {
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - (10f64).ln()).abs() < 1e-9);
        assert!((ln_choose(10, 0)).abs() < 1e-9);
        assert!((ln_choose(52, 5) - (2_598_960f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn ln_factorial_stirling_agrees_with_exact() {
        // Compare the Stirling branch (n >= 256) against extended exact sum.
        let exact: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() < 1e-8);
    }

    #[test]
    fn binomial_tail_matches_hand_computation() {
        // P(Bin(3, 1/2) >= 2) = 4/8 = 0.5
        assert!((binomial_upper_tail(3, 2, 0.5) - 0.5).abs() < 1e-12);
        // P(Bin(2, 0.3) >= 1) = 1 - 0.49 = 0.51
        assert!((binomial_upper_tail(2, 1, 0.3) - 0.51).abs() < 1e-12);
        assert_eq!(binomial_upper_tail(5, 0, 0.2), 1.0);
        assert_eq!(binomial_upper_tail(5, 6, 0.2), 0.0);
    }

    #[test]
    fn binomial_tail_edge_probabilities() {
        assert_eq!(binomial_upper_tail(10, 3, 0.0), 0.0);
        assert_eq!(binomial_upper_tail(10, 3, 1.0), 1.0);
    }

    #[test]
    fn phase_len_omission_satisfies_bound() {
        for n in [4usize, 16, 256, 4096] {
            for p in [0.1, 0.5, 0.9] {
                let m = phase_len_omission(n, p);
                assert!(p.powi(m as i32) <= 1.0 / (n * n) as f64 + 1e-12);
                // And m-1 would not suffice (minimality), unless m == 1.
                if m > 1 {
                    assert!(p.powi(m as i32 - 1) > 1.0 / (n * n) as f64 - 1e-12);
                }
            }
        }
    }

    #[test]
    fn phase_len_omission_p_zero() {
        assert_eq!(phase_len_omission(100, 0.0), 1);
    }

    #[test]
    fn phase_len_malicious_mp_satisfies_bound() {
        for n in [4usize, 64, 1024] {
            for p in [0.1, 0.3, 0.45] {
                let m = phase_len_malicious_mp(n, p);
                assert!(m % 2 == 1);
                assert!(hoeffding_majority_error(m as u64, p) <= 1.0 / (n * n) as f64 + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "p < 1/2")]
    fn phase_len_malicious_mp_rejects_half() {
        let _ = phase_len_malicious_mp(10, 0.5);
    }

    #[test]
    fn phase_len_malicious_radio_grows_with_degree() {
        let n = 64;
        let p = 0.01;
        let m2 = phase_len_malicious_radio(n, p, 2);
        let m8 = phase_len_malicious_radio(n, p, 8);
        assert!(m8 > m2, "larger Δ shrinks the gap q-p, needs more steps");
        assert!(m2 % 2 == 1 && m8 % 2 == 1);
    }

    #[test]
    #[should_panic(expected = "feasible only")]
    fn phase_len_malicious_radio_rejects_infeasible() {
        // Δ = 4: threshold p* ≈ 0.134; p = 0.3 is infeasible.
        let _ = phase_len_malicious_radio(10, 0.3, 4);
    }

    #[test]
    fn flood_horizon_monotone() {
        assert_eq!(flood_horizon(0, 0.5, 2.0), 0);
        let a = flood_horizon(10, 0.2, 4.0);
        let b = flood_horizon(20, 0.2, 4.0);
        let c = flood_horizon(20, 0.6, 4.0);
        assert!(a < b && b < c);
        // Fault-free: still at least the distance itself.
        assert!(flood_horizon(10, 0.0, 0.0) >= 10);
    }

    #[test]
    fn make_odd_works() {
        assert_eq!(make_odd(4), 5);
        assert_eq!(make_odd(5), 5);
        assert_eq!(make_odd(1), 1);
    }
}
