//! Structured sweep results: one schema, two renderings.
//!
//! Every experiment run produces a [`SweepReport`] — the experiment id
//! plus one [`CellReport`] per table cell. The same struct renders both
//! the human-facing Markdown tables (via [`tables`](SweepReport::tables))
//! and the machine-readable JSON (via [`to_json`](SweepReport::to_json)),
//! so the two can never drift apart per binary. The JSON writer and the
//! matching parser ([`from_json`](SweepReport::from_json)) are
//! dependency-free; the parser exists so CI can validate emitted files
//! and tests can round-trip reports.
//!
//! Schema:
//!
//! ```json
//! {
//!   "experiment": "e1_simple_omission",
//!   "cells": [
//!     {
//!       "kind": "montecarlo",
//!       "params": {"graph": "path-32", "n": "32", "p": "0.3"},
//!       "successes": 60,
//!       "trials": 60,
//!       "rate": 1.0,
//!       "verdict": "pass",
//!       "mean_rounds": null,
//!       "mean_informed_frac": null,
//!       "wall_ms": 12.5
//!     }
//!   ]
//! }
//! ```
//!
//! `params` holds the cell's *inputs* (and any analytic columns) as
//! ordered string key/value pairs; the remaining fields are *measured*
//! by the sweep driver. `verdict`, `mean_rounds` and
//! `mean_informed_frac` are `null` when the cell has no almost-safety
//! target / no per-trial round counts / no informed-fraction
//! measurements (`mean_informed_frac` is the almost-complete broadcast
//! metric of the large-`n` flood sweeps, and may be absent entirely in
//! pre-schema files).
//! `kind` is `"analytic"` for rows that are pure computation (threshold
//! tables, plan-size sweeps) — consumers must ignore their vacuous
//! success columns.

use std::fmt;
use std::fmt::Write as _;

use crate::table::Table;

/// How a cell's numbers were obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CellKind {
    /// Measured by Monte-Carlo trials (the default).
    #[default]
    MonteCarlo,
    /// A purely analytic table row (threshold tables, plan-size
    /// sweeps): no trials ran, and the success columns are vacuous.
    Analytic,
}

impl CellKind {
    fn as_str(self) -> &'static str {
        match self {
            CellKind::MonteCarlo => "montecarlo",
            CellKind::Analytic => "analytic",
        }
    }
}

/// One measured sweep cell: input parameters plus harness measurements.
#[derive(Clone, PartialEq, Debug)]
pub struct CellReport {
    /// How the cell was obtained; consumers should ignore the success
    /// columns of [`CellKind::Analytic`] cells.
    pub kind: CellKind,
    /// Ordered input parameters (and analytic columns) of the cell.
    pub params: Vec<(String, String)>,
    /// Successful trials.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
    /// Point estimate `successes / trials`.
    pub rate: f64,
    /// Almost-safety verdict label, when the cell has a target.
    pub verdict: Option<String>,
    /// Mean completion round over trials that reported one.
    pub mean_rounds: Option<f64>,
    /// Mean informed fraction over trials that reported one (the
    /// almost-complete broadcast metric; `None` for cells whose trials
    /// don't measure it).
    pub mean_informed_frac: Option<f64>,
    /// Wall-clock time spent on the cell, in milliseconds.
    pub wall_ms: f64,
}

/// A full experiment report: id plus all cells, in sweep order.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// Experiment identifier (e.g. `e1_simple_omission`).
    pub experiment: String,
    /// All cells, in the order they were swept.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// Serializes the report as JSON (schema in the module docs).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": ");
        write_json_string(&mut out, &self.experiment);
        out.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            cell.write_json(&mut out);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a report previously produced by [`to_json`](Self::to_json)
    /// (or any JSON document matching the schema).
    ///
    /// # Errors
    ///
    /// Returns a [`ReportParseError`] describing the first syntax or
    /// schema violation encountered.
    pub fn from_json(text: &str) -> Result<Self, ReportParseError> {
        let mut p = Parser::new(text);
        let value = p.parse_value()?;
        p.skip_ws();
        if !p.at_end() {
            return Err(p.err("trailing characters after the top-level value"));
        }
        Self::from_value(&value)
    }

    fn from_value(value: &Json) -> Result<Self, ReportParseError> {
        let top = value.as_object("top-level value")?;
        let experiment = get(top, "experiment")?.as_string("experiment")?.to_owned();
        let cells = get(top, "cells")?
            .as_array("cells")?
            .iter()
            .map(CellReport::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepReport { experiment, cells })
    }

    /// Renders the report as Markdown tables, one per run of consecutive
    /// cells sharing the same parameter keys (so experiments with
    /// heterogeneous sections come out as several well-formed tables).
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut tables = Vec::new();
        let mut i = 0;
        while i < self.cells.len() {
            let keys: Vec<&str> = self.cells[i]
                .params
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            let mut header: Vec<String> = keys.iter().map(|&k| k.to_owned()).collect();
            header.extend(
                [
                    "successes",
                    "trials",
                    "rate",
                    "verdict",
                    "mean rounds",
                    "informed",
                    "ms",
                ]
                .map(str::to_owned),
            );
            let mut table = Table::new(header);
            while i < self.cells.len() {
                let cell = &self.cells[i];
                if cell
                    .params
                    .iter()
                    .map(|(k, _)| k.as_str())
                    .ne(keys.iter().copied())
                {
                    break;
                }
                let mut row: Vec<String> = cell.params.iter().map(|(_, v)| v.clone()).collect();
                if cell.kind == CellKind::Analytic {
                    // The success columns are vacuous for analytic rows.
                    row.extend(["-".into(), "-".into(), "-".into()]);
                } else {
                    row.push(cell.successes.to_string());
                    row.push(cell.trials.to_string());
                    row.push(format!("{:.4}", cell.rate));
                }
                row.push(cell.verdict.clone().unwrap_or_else(|| "-".into()));
                row.push(
                    cell.mean_rounds
                        .map(|r| format!("{r:.2}"))
                        .unwrap_or_else(|| "-".into()),
                );
                row.push(
                    cell.mean_informed_frac
                        .map(|f| format!("{f:.4}"))
                        .unwrap_or_else(|| "-".into()),
                );
                row.push(format!("{:.1}", cell.wall_ms));
                table.row(row);
                i += 1;
            }
            tables.push(table);
        }
        tables
    }

    /// All tables rendered back to back, separated by blank lines.
    #[must_use]
    pub fn render_tables(&self) -> String {
        self.tables()
            .iter()
            .map(Table::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl CellReport {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"kind\": \"{}\", ", self.kind.as_str());
        out.push_str("\"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(out, k);
            out.push_str(": ");
            write_json_string(out, v);
        }
        let _ = write!(
            out,
            "}}, \"successes\": {}, \"trials\": {}, \"rate\": ",
            self.successes, self.trials
        );
        write_json_f64(out, self.rate);
        out.push_str(", \"verdict\": ");
        match &self.verdict {
            Some(v) => write_json_string(out, v),
            None => out.push_str("null"),
        }
        out.push_str(", \"mean_rounds\": ");
        match self.mean_rounds {
            Some(r) => write_json_f64(out, r),
            None => out.push_str("null"),
        }
        out.push_str(", \"mean_informed_frac\": ");
        match self.mean_informed_frac {
            Some(f) => write_json_f64(out, f),
            None => out.push_str("null"),
        }
        out.push_str(", \"wall_ms\": ");
        write_json_f64(out, self.wall_ms);
        out.push('}');
    }

    fn from_value(value: &Json) -> Result<Self, ReportParseError> {
        let obj = value.as_object("cell")?;
        // `kind` is optional for leniency toward pre-schema files.
        let kind = match obj.iter().find(|(k, _)| k == "kind") {
            None => CellKind::MonteCarlo,
            Some((_, v)) => match v.as_string("kind")? {
                "montecarlo" => CellKind::MonteCarlo,
                "analytic" => CellKind::Analytic,
                other => {
                    return Err(ReportParseError(format!("unknown cell kind `{other}`")));
                }
            },
        };
        let params = get(obj, "params")?
            .as_object("params")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), v.as_string("param value")?.to_owned())))
            .collect::<Result<Vec<_>, ReportParseError>>()?;
        let successes = get(obj, "successes")?.as_usize("successes")?;
        let trials = get(obj, "trials")?.as_usize("trials")?;
        let rate = get(obj, "rate")?.as_f64("rate")?;
        let verdict = match get(obj, "verdict")? {
            Json::Null => None,
            v => Some(v.as_string("verdict")?.to_owned()),
        };
        let mean_rounds = match get(obj, "mean_rounds")? {
            Json::Null => None,
            v => Some(v.as_f64("mean_rounds")?),
        };
        // Optional for leniency toward pre-schema files.
        let mean_informed_frac = match obj.iter().find(|(k, _)| k == "mean_informed_frac") {
            None => None,
            Some((_, Json::Null)) => None,
            Some((_, v)) => Some(v.as_f64("mean_informed_frac")?),
        };
        let wall_ms = get(obj, "wall_ms")?.as_f64("wall_ms")?;
        if successes > trials {
            return Err(ReportParseError(format!(
                "cell has successes = {successes} > trials = {trials}"
            )));
        }
        Ok(CellReport {
            kind,
            params,
            successes,
            trials,
            rate,
            verdict,
            mean_rounds,
            mean_informed_frac,
            wall_ms,
        })
    }
}

/// One measured benchmark sample: stable label plus mean wall-clock
/// nanoseconds per iteration.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchRecord {
    /// The benchmark's label (`group/function/param`), as printed by
    /// `cargo bench`.
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// A distilled benchmark report — the perf-trajectory artifact CI
/// uploads (`BENCH_PR4.json` and successors) and gates against a
/// committed baseline.
///
/// Schema:
///
/// ```json
/// {
///   "benches": [
///     {"name": "flood_engines/fast/grid32x32", "ns_per_iter": 23700.0}
///   ]
/// }
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BenchReport {
    /// All distilled benchmarks, in bench-output order.
    pub benches: Vec<BenchRecord>,
}

impl BenchReport {
    /// Distills raw `cargo bench` output (the vendored criterion stub
    /// prints one `<label> <mean> ns/iter …` line per benchmark) into a
    /// report. Lines that do not match the pattern are ignored, so the
    /// full build-plus-bench transcript can be piped in unfiltered.
    #[must_use]
    pub fn from_bench_lines(text: &str) -> Self {
        let mut benches = Vec::new();
        for line in text.lines() {
            let mut tok = line.split_whitespace();
            let (Some(name), Some(value), Some(unit)) = (tok.next(), tok.next(), tok.next()) else {
                continue;
            };
            if unit != "ns/iter" {
                continue;
            }
            let Ok(ns_per_iter) = value.parse::<f64>() else {
                continue;
            };
            benches.push(BenchRecord {
                name: name.to_owned(),
                ns_per_iter,
            });
        }
        BenchReport { benches }
    }

    /// Keeps only benchmarks whose criterion group (the label segment
    /// before the first `/`) is in `groups`.
    pub fn retain_groups(&mut self, groups: &[&str]) {
        self.benches
            .retain(|b| groups.contains(&b.name.split('/').next().unwrap_or("")));
    }

    /// The mean ns/iter recorded under `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.benches
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.ns_per_iter)
    }

    /// Compares this (current) report against a committed `baseline`:
    /// every baseline benchmark must still exist and must not have
    /// slowed down by more than `max_ratio`×. Returns one human-readable
    /// violation per failure (empty = gate passes). Benchmarks new in
    /// the current report are fine — the trajectory grows.
    #[must_use]
    pub fn gate_against(&self, baseline: &BenchReport, max_ratio: f64) -> Vec<String> {
        let mut violations = Vec::new();
        for base in &baseline.benches {
            match self.get(&base.name) {
                None => violations.push(format!(
                    "{}: present in the baseline but missing from this run",
                    base.name
                )),
                Some(current) if base.ns_per_iter > 0.0 => {
                    let ratio = current / base.ns_per_iter;
                    if ratio > max_ratio {
                        violations.push(format!(
                            "{}: {current:.0} ns/iter is {ratio:.2}x the baseline \
                             {:.0} ns/iter (limit {max_ratio}x)",
                            base.name, base.ns_per_iter
                        ));
                    }
                }
                Some(_) => {}
            }
        }
        violations
    }

    /// Checks one same-run throughput bar: the `batch` benchmark runs
    /// `scale` trials per iteration, so its per-trial speedup over the
    /// `scalar` benchmark is `scalar_ns · scale / batch_ns`, and that
    /// ratio must reach `min_ratio`. Both rows come from *this* report
    /// — the same bench run — so the ratio is immune to machine-wide
    /// throughput drift between runs (which a cross-run baseline ratio
    /// is not).
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation when either benchmark is
    /// missing, the batch time is non-positive, or the bar is missed;
    /// otherwise the achieved per-trial speedup.
    pub fn check_bar(
        &self,
        scalar: &str,
        batch: &str,
        scale: f64,
        min_ratio: f64,
    ) -> Result<f64, String> {
        let s = self
            .get(scalar)
            .ok_or_else(|| format!("bar {scalar} vs {batch}: scalar bench missing"))?;
        let b = self
            .get(batch)
            .ok_or_else(|| format!("bar {scalar} vs {batch}: batch bench missing"))?;
        if b <= 0.0 {
            return Err(format!("bar {scalar} vs {batch}: non-positive batch time"));
        }
        let ratio = s * scale / b;
        if ratio < min_ratio {
            Err(format!(
                "{batch}: {ratio:.2}x per-trial speedup over {scalar} \
                 is below the {min_ratio}x bar"
            ))
        } else {
            Ok(ratio)
        }
    }

    /// Serializes the report as JSON (schema in the type docs).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"benches\": [");
        for (i, b) in self.benches.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            out.push_str("{\"name\": ");
            write_json_string(&mut out, &b.name);
            out.push_str(", \"ns_per_iter\": ");
            write_json_f64(&mut out, b.ns_per_iter);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a report previously produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`ReportParseError`] describing the first syntax or
    /// schema violation encountered.
    pub fn from_json(text: &str) -> Result<Self, ReportParseError> {
        let mut p = Parser::new(text);
        let value = p.parse_value()?;
        p.skip_ws();
        if !p.at_end() {
            return Err(p.err("trailing characters after the top-level value"));
        }
        let top = value.as_object("top-level value")?;
        let benches = get(top, "benches")?
            .as_array("benches")?
            .iter()
            .map(|v| {
                let obj = v.as_object("bench")?;
                Ok(BenchRecord {
                    name: get(obj, "name")?.as_string("name")?.to_owned(),
                    ns_per_iter: get(obj, "ns_per_iter")?.as_f64("ns_per_iter")?,
                })
            })
            .collect::<Result<Vec<_>, ReportParseError>>()?;
        Ok(BenchReport { benches })
    }
}

/// Writes `s` as a JSON string literal with full escaping.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number. Rust's `{:?}` formatting is the
/// shortest representation that round-trips, and it is valid JSON for
/// every finite value; non-finite values become `null`.
fn write_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

/// Error produced by [`SweepReport::from_json`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReportParseError(String);

impl fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sweep report: {}", self.0)
    }
}

impl std::error::Error for ReportParseError {}

/// A parsed JSON value (internal; just enough for the report schema).
#[derive(Clone, PartialEq, Debug)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    /// Insertion-ordered, so `params` round-trip losslessly.
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&[(String, Json)], ReportParseError> {
        match self {
            Json::Object(fields) => Ok(fields),
            _ => Err(ReportParseError(format!("{what} must be an object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], ReportParseError> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(ReportParseError(format!("{what} must be an array"))),
        }
    }

    fn as_string(&self, what: &str) -> Result<&str, ReportParseError> {
        match self {
            Json::String(s) => Ok(s),
            _ => Err(ReportParseError(format!("{what} must be a string"))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, ReportParseError> {
        match self {
            Json::Number(x) => Ok(*x),
            _ => Err(ReportParseError(format!("{what} must be a number"))),
        }
    }

    fn as_usize(&self, what: &str) -> Result<usize, ReportParseError> {
        let x = self.as_f64(what)?;
        if x >= 0.0 && x.fract() == 0.0 && x <= usize::MAX as f64 {
            Ok(x as usize)
        } else {
            Err(ReportParseError(format!(
                "{what} must be a non-negative integer, got {x}"
            )))
        }
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, ReportParseError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ReportParseError(format!("missing field `{key}`")))
}

/// Minimal recursive-descent JSON parser over the full grammar.
struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> ReportParseError {
        ReportParseError(format!("{msg} (byte {})", self.pos))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ReportParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, ReportParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, ReportParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, ReportParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ReportParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path (the overwhelmingly common case).
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // One multi-byte scalar. The input is a `&str`, and
                    // the parser only ever advances by whole scalars, so
                    // `pos` sits on a char boundary: decode in O(1)
                    // instead of re-validating the whole remainder.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ReportParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepReport {
        SweepReport {
            experiment: "e_test".into(),
            cells: vec![
                CellReport {
                    kind: CellKind::MonteCarlo,
                    params: vec![
                        ("graph".into(), "path-8".into()),
                        ("p".into(), "0.3".into()),
                    ],
                    successes: 59,
                    trials: 60,
                    rate: 59.0 / 60.0,
                    verdict: Some("pass".into()),
                    mean_rounds: Some(12.25),
                    mean_informed_frac: Some(0.9975),
                    wall_ms: 3.5,
                },
                CellReport {
                    kind: CellKind::Analytic,
                    params: vec![("m".into(), "4".into())],
                    successes: 1,
                    trials: 1,
                    rate: 1.0,
                    verdict: None,
                    mean_rounds: None,
                    mean_informed_frac: None,
                    wall_ms: 0.1,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let json = report.to_json();
        let parsed = SweepReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        // And the writer is deterministic on the round-tripped value.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn escaping_round_trips() {
        let report = SweepReport {
            experiment: "quo\"te\\back\nnew\tline\u{1}és 🎲".into(),
            cells: vec![CellReport {
                kind: CellKind::MonteCarlo,
                params: vec![("k\"ey".into(), "va\\lue\r".into())],
                successes: 0,
                trials: 1,
                rate: 0.0,
                verdict: Some("näh".into()),
                mean_rounds: None,
                mean_informed_frac: None,
                wall_ms: 0.0,
            }],
        };
        let json = report.to_json();
        let parsed = SweepReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\u0001"));
    }

    #[test]
    fn floats_round_trip_exactly() {
        let mut report = sample();
        report.cells[0].rate = 0.1 + 0.2; // 0.30000000000000004
        report.cells[0].mean_rounds = Some(1e-7);
        let parsed = SweepReport::from_json(&report.to_json()).unwrap();
        assert_eq!(
            parsed.cells[0].rate.to_bits(),
            report.cells[0].rate.to_bits()
        );
        assert_eq!(parsed.cells[0].mean_rounds, Some(1e-7));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[]",
            "{\"experiment\": \"x\"}",
            "{\"experiment\": 3, \"cells\": []}",
            "{\"experiment\": \"x\", \"cells\": [{}]}",
            "{\"experiment\": \"x\", \"cells\": []} trailing",
        ] {
            assert!(SweepReport::from_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_inconsistent_counts() {
        let json = r#"{"experiment": "x", "cells": [{"params": {}, "successes": 5,
            "trials": 3, "rate": 1.0, "verdict": null, "mean_rounds": null,
            "wall_ms": 0.0}]}"#;
        assert!(SweepReport::from_json(json).is_err());
    }

    #[test]
    fn tables_group_by_param_keys() {
        let report = sample();
        let tables = report.tables();
        assert_eq!(tables.len(), 2, "two sections with different keys");
        let first = tables[0].render();
        assert!(first.contains("graph"));
        assert!(first.contains("path-8"));
        assert!(first.contains("0.9833"));
        let second = tables[1].render();
        assert!(second.contains("| m |"));
        assert!(second.contains("-")); // null verdict / mean rounds
    }

    #[test]
    fn kind_field_round_trips_and_is_lenient() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("\"kind\": \"analytic\""));
        let parsed = SweepReport::from_json(&json).unwrap();
        assert_eq!(parsed.cells[1].kind, CellKind::Analytic);
        // Pre-schema files without `kind` default to MonteCarlo.
        let legacy = r#"{"experiment": "x", "cells": [{"params": {}, "successes": 1,
            "trials": 1, "rate": 1.0, "verdict": null, "mean_rounds": null,
            "wall_ms": 0.0}]}"#;
        assert_eq!(
            SweepReport::from_json(legacy).unwrap().cells[0].kind,
            CellKind::MonteCarlo
        );
        // Unknown kinds are rejected.
        let bad = r#"{"experiment": "x", "cells": [{"kind": "vibes", "params": {},
            "successes": 1, "trials": 1, "rate": 1.0, "verdict": null,
            "mean_rounds": null, "wall_ms": 0.0}]}"#;
        assert!(SweepReport::from_json(bad).is_err());
    }

    #[test]
    fn bench_report_distills_bench_output() {
        let transcript = "\
   Compiling randcast_bench v0.1.0
    Finished `release` profile
flood_engines/mp/grid32x32                          10500000.0 ns/iter  (    6236190 elem/s)
flood_engines/fast/grid32x32                           23700.0 ns/iter
radio_engines/trait/gnp4096-d8                      52000000.0 ns/iter
not a bench line at all
mp_directed_rounds/grid8x8/0                          597000.0 ns/iter\n";
        let mut report = BenchReport::from_bench_lines(transcript);
        assert_eq!(report.benches.len(), 4);
        assert_eq!(report.get("flood_engines/fast/grid32x32"), Some(23700.0));
        report.retain_groups(&["flood_engines", "radio_engines"]);
        assert_eq!(report.benches.len(), 3);
        assert_eq!(report.get("mp_directed_rounds/grid8x8/0"), None);
    }

    #[test]
    fn bench_report_json_round_trips() {
        let report = BenchReport {
            benches: vec![
                BenchRecord {
                    name: "g/a/1".into(),
                    ns_per_iter: 1234.5,
                },
                BenchRecord {
                    name: "g/b/2".into(),
                    ns_per_iter: 0.25,
                },
            ],
        };
        let json = report.to_json();
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), json);
        assert!(BenchReport::from_json("{\"benches\": [{}]}").is_err());
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("{\"benches\": []}")
            .unwrap()
            .benches
            .is_empty());
    }

    #[test]
    fn bench_gate_flags_regressions_and_missing_benches() {
        let baseline = BenchReport {
            benches: vec![
                BenchRecord {
                    name: "g/stable".into(),
                    ns_per_iter: 100.0,
                },
                BenchRecord {
                    name: "g/regressed".into(),
                    ns_per_iter: 100.0,
                },
                BenchRecord {
                    name: "g/dropped".into(),
                    ns_per_iter: 100.0,
                },
            ],
        };
        let current = BenchReport {
            benches: vec![
                BenchRecord {
                    name: "g/stable".into(),
                    ns_per_iter: 180.0, // 1.8x: inside the 2x budget
                },
                BenchRecord {
                    name: "g/regressed".into(),
                    ns_per_iter: 250.0, // 2.5x: regression
                },
                BenchRecord {
                    name: "g/brand-new".into(), // growth is fine
                    ns_per_iter: 1.0,
                },
            ],
        };
        let violations = current.gate_against(&baseline, 2.0);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("g/regressed")));
        assert!(violations.iter().any(|v| v.contains("g/dropped")));
        assert!(current.gate_against(&baseline, 3.0).len() == 1); // only the missing one
        assert!(
            current.gate_against(&current, 1.0).is_empty(),
            "identical runs always pass"
        );
    }

    #[test]
    fn bench_bar_checks_same_run_per_trial_speedups() {
        let report = BenchReport {
            benches: vec![
                BenchRecord {
                    name: "g/fast/x".into(),
                    ns_per_iter: 1000.0,
                },
                BenchRecord {
                    name: "g/batch/x".into(),
                    // 64 trials in 5000 ns: 78.1 ns/trial = 12.8x.
                    ns_per_iter: 5000.0,
                },
            ],
        };
        let ratio = report
            .check_bar("g/fast/x", "g/batch/x", 64.0, 10.0)
            .expect("12.8x clears the 10x bar");
        assert!((ratio - 12.8).abs() < 1e-9, "{ratio}");
        let miss = report
            .check_bar("g/fast/x", "g/batch/x", 64.0, 20.0)
            .expect_err("12.8x misses the 20x bar");
        assert!(miss.contains("below the 20x bar"), "{miss}");
        assert!(report
            .check_bar("g/fast/x", "g/absent", 64.0, 1.0)
            .expect_err("missing batch bench")
            .contains("missing"));
        assert!(report
            .check_bar("g/absent", "g/batch/x", 64.0, 1.0)
            .expect_err("missing scalar bench")
            .contains("missing"));
    }

    #[test]
    fn parser_handles_whitespace_and_nesting() {
        let json = "  {\n\t\"experiment\" : \"e\" , \"cells\" : [ ] }  ";
        let parsed = SweepReport::from_json(json).unwrap();
        assert_eq!(parsed.experiment, "e");
        assert!(parsed.cells.is_empty());
    }
}
