//! Statistical equivalence of the bitset fast-path radio kernel
//! (`randcast_engine::radio_fast`) and the trait-object Decay protocol
//! on `RadioNetwork` (`randcast_core::decay`).
//!
//! The two engines share the per-node Decay coin tapes
//! (`radio_fast::decay_tapes` / `decay_coin`), so their participation
//! schedules are identical per seed; only the omission-fault coins come
//! from different RNG streams. Consequences these tests pin:
//!
//! * at `p = 0` the engines agree **exactly, per seed** — same informed
//!   set, same per-round growth curve, same completion round;
//! * at `p > 0` per-seed outcomes differ but every distribution
//!   matches: 250 fixed-seed trials per engine per scenario, with mean
//!   completion rounds (or mean informed counts at a fixed horizon)
//!   compared under a Welch-style confidence tolerance (4 standard
//!   errors — with fixed seeds the tests are deterministic, and the
//!   margin makes the pinned draws comfortably interior).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_core::decay::{run_decay, DecayConfig};
use randcast_core::scenario::{
    Algorithm, GraphFamily, Model, Scenario, ShardSpec, RADIO_FAST_MIN_N,
};
use randcast_engine::fault::FaultConfig;
use randcast_engine::radio_fast::{FastRadio, FastRadioSchedule};
use randcast_graph::{generators, traversal, CsrGraph, Graph};

const TRIALS: u64 = 250;

struct Sample {
    mean: f64,
    var: f64,
    n: f64,
}

fn summarize(values: &[f64]) -> Sample {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
    Sample { mean, var, n }
}

/// Welch tolerance: |m₁ − m₂| within 4 standard errors (plus a hair for
/// degenerate zero-variance cases).
fn assert_means_close(label: &str, a: &Sample, b: &Sample) {
    let se = (a.var / a.n + b.var / b.n).sqrt();
    let tol = 4.0 * se + 1e-9;
    assert!(
        (a.mean - b.mean).abs() <= tol,
        "{label}: trait mean {:.3} vs fast mean {:.3} (tol {:.3})",
        a.mean,
        b.mean,
        tol
    );
}

fn classical_scaled(g: &Graph, factor: usize) -> DecayConfig {
    let mut cfg = DecayConfig::classical(g.node_count(), traversal::radius_from(g, g.node(0)));
    cfg.epochs *= factor;
    cfg
}

fn fast_plan(g: &Graph, cfg: DecayConfig) -> FastRadio {
    FastRadio::new(
        CsrGraph::from(g),
        g.node(0),
        cfg.total_rounds(),
        FastRadioSchedule::Decay {
            epoch_len: cfg.epoch_len,
        },
    )
}

/// Compares mean completion rounds; the horizon (via `factor`) must be
/// generous enough that every pinned trial completes on both engines.
fn compare_completion_means(label: &str, g: &Graph, p: f64, factor: usize) {
    let cfg = classical_scaled(g, factor);
    let fast = fast_plan(g, cfg);
    let trait_rounds: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            run_decay(g, g.node(0), cfg, FaultConfig::omission(p), seed)
                .completion_round()
                .unwrap_or_else(|| panic!("{label}: trait trial {seed} incomplete"))
                as f64
        })
        .collect();
    let fast_rounds: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            fast.run(p, seed)
                .completion_round()
                .unwrap_or_else(|| panic!("{label}: fast trial {seed} incomplete"))
                as f64
        })
        .collect();
    assert_means_close(label, &summarize(&trait_rounds), &summarize(&fast_rounds));
}

/// Compares mean informed *counts* at the end of a fixed horizon — no
/// completion requirement, so this works at high `p` where the horizon
/// would otherwise have to be enormous.
fn compare_informed_count_means(label: &str, g: &Graph, p: f64, factor: usize) {
    let cfg = classical_scaled(g, factor);
    let fast = fast_plan(g, cfg);
    let trait_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            run_decay(g, g.node(0), cfg, FaultConfig::omission(p), seed)
                .informed_at
                .iter()
                .filter(|i| i.is_some())
                .count() as f64
        })
        .collect();
    let fast_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| fast.run(p, seed).informed_count() as f64)
        .collect();
    assert_means_close(label, &summarize(&trait_counts), &summarize(&fast_counts));
}

#[test]
fn decay_means_agree_on_grid() {
    let g = generators::grid(6, 6);
    compare_completion_means("grid6x6 p=0.3", &g, 0.3, 3);
}

#[test]
fn decay_means_agree_on_random_graph() {
    let g = generators::gnp_connected(200, 0.03, &mut SmallRng::seed_from_u64(5));
    compare_completion_means("gnp200 p=0.2", &g, 0.2, 3);
}

#[test]
fn decay_means_agree_under_contention() {
    // Complete bipartite: maximal collision pressure — the regime the
    // back-off exists for.
    let g = generators::complete_bipartite(8, 8);
    compare_completion_means("K8,8 p=0.3", &g, 0.3, 4);
}

#[test]
fn decay_means_agree_at_high_p() {
    // p = 0.8 exercises the geometric-skip fault sampler against the
    // per-node coins of RadioNetwork; compare the transient (informed
    // count at a fixed horizon) instead of demanding completion.
    let g = generators::grid(5, 5);
    compare_informed_count_means("grid5x5 p=0.8 transient", &g, 0.8, 2);
}

#[test]
fn fault_free_engines_agree_exactly() {
    // At p = 0 no fault coin is ever drawn, the shared tapes fully
    // determine both executions, and the engines must agree per seed —
    // same informed set, growth curve, and completion round.
    for g in [
        generators::grid(7, 5),
        generators::path(20),
        generators::complete_bipartite(6, 9),
        generators::gnp_connected(150, 0.03, &mut SmallRng::seed_from_u64(8)),
    ] {
        let cfg = classical_scaled(&g, 2);
        let fast = fast_plan(&g, cfg);
        for seed in 0..10 {
            let reference = run_decay(&g, g.node(0), cfg, FaultConfig::fault_free(), seed);
            let out = fast.run(0.0, seed);
            assert_eq!(
                reference.completion_round(),
                out.completion_round(),
                "n={} seed={seed}",
                g.node_count()
            );
            for v in g.nodes() {
                assert_eq!(
                    reference.informed_at[v.index()].is_some(),
                    out.is_informed(v),
                    "n={} seed={seed} node {v}",
                    g.node_count()
                );
            }
            // Per-round growth curves: the fast kernel may stop early,
            // after which its count is constant.
            let curve = out.informed_by_round();
            for k in 0..=cfg.total_rounds() {
                let trait_count = reference
                    .informed_at
                    .iter()
                    .filter(|r| r.is_some_and(|at| at <= k))
                    .count();
                let fast_count = curve[k.min(curve.len() - 1)];
                assert_eq!(
                    trait_count,
                    fast_count,
                    "n={} seed={seed} round {k}",
                    g.node_count()
                );
            }
        }
    }
}

#[test]
fn scenario_level_decay_paths_agree() {
    // End to end through the Scenario layer: the same spec executed by
    // the forced fast path and by the trait-object engine (below the
    // auto-switch threshold) must produce matching mean times.
    let n = 200;
    let graph = GraphFamily::Gnp {
        n,
        avg_deg: 6,
        seed: 21,
    };
    assert!(n < RADIO_FAST_MIN_N, "must exercise the general engine");
    let p = 0.3;
    let general = Scenario {
        graph,
        algorithm: Algorithm::Decay { epoch_factor: 3 },
        model: Model::Radio,
        fault: FaultConfig::omission(p),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid");
    assert!(!general.uses_fast_path());
    let fast = Scenario {
        graph,
        algorithm: Algorithm::DecayFast { epoch_factor: 3 },
        model: Model::Radio,
        fault: FaultConfig::omission(p),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid");
    assert!(fast.uses_fast_path());
    assert_eq!(general.rounds(), fast.rounds(), "same classical horizon");

    let collect = |prep: &randcast_core::scenario::PreparedScenario| {
        (0..TRIALS)
            .map(|seed| {
                let out = prep.trial(seed);
                assert!(out.success, "trial {seed} incomplete");
                out.rounds.expect("completed trials report rounds")
            })
            .collect::<Vec<f64>>()
    };
    let (g_rounds, f_rounds) = (collect(&general), collect(&fast));
    assert_means_close(
        "scenario gnp200 p=0.3",
        &summarize(&g_rounds),
        &summarize(&f_rounds),
    );
}
