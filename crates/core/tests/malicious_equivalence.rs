//! Equivalence suite for the malicious fast-path kernels: the
//! [`FaultModel`]-driven bitset engines against the trait-object
//! adversary engines (`FlipMpAdversary` / `LieOrJamAdversary` /
//! `FlipRadioAdversary` behind `MpNetwork` / `RadioNetwork`).
//!
//! The engines draw corruption coins from different RNG streams, so at
//! `p > 0` per-seed outcomes differ; what must agree is the law. These
//! tests pin:
//!
//! * at `p = 0` no corruption coin ever fires and the executions agree
//!   **exactly** — the model kernels collapse byte-for-byte onto the
//!   hard-wired omission lane replays, and the trait engines onto their
//!   fault-free runs;
//! * at `p > 0`, 250 fixed-seed trials per engine per scenario compare
//!   mean correct-node counts (Simple), correct informed counts at a
//!   fixed horizon (flood, Decay), under a Welch-style confidence
//!   tolerance (4 standard errors — with fixed seeds the tests are
//!   deterministic, and the margin makes the pinned draws comfortably
//!   interior);
//! * lane exactness: `run_batch_model` agrees lane for lane with
//!   `run_lane_model`, for the i.i.d. instances and for preprocessed
//!   [`WorstCasePlacement`] masks;
//! * shard neutrality: the sharded model drivers reproduce their
//!   unsharded twins byte-for-byte for shard counts 2, 3, and 7.
//!
//! [`FaultModel`]: randcast_engine::kernel::FaultModel
//! [`WorstCasePlacement`]: randcast_engine::kernel::WorstCasePlacement

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_core::decay::{run_decay, DecayConfig};
use randcast_core::flood::{theorem_horizon, FloodPlan, FloodVariant};
use randcast_core::scenario::{
    Algorithm, GraphFamily, Model, Scenario, ShardSpec, SIMPLE_FAST_MIN_N,
};
use randcast_core::simple::SimplePlan;
use randcast_engine::adversary::{FlipMpAdversary, LieOrJamAdversary};
use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::{FastFlood, FastFloodVariant};
use randcast_engine::kernel::{
    CorruptionKind, FaultModel, FaultTapes, FlipFault, LieOrJamFault, Omission, WorstCasePlacement,
    LANES,
};
use randcast_engine::radio_fast::{FastRadio, FastRadioSchedule};
use randcast_engine::simple_fast::FastSimple;
use randcast_graph::shard::ShardPlan;
use randcast_graph::{generators, traversal, CsrGraph, Graph};

const TRIALS: u64 = 250;
const SOURCE_BIT: bool = true;

struct Sample {
    mean: f64,
    var: f64,
    n: f64,
}

fn summarize(values: &[f64]) -> Sample {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
    Sample { mean, var, n }
}

/// Welch tolerance: |m₁ − m₂| within 4 standard errors (plus a hair for
/// degenerate zero-variance cases).
fn assert_means_close(label: &str, a: &Sample, b: &Sample) {
    let se = (a.var / a.n + b.var / b.n).sqrt();
    let tol = 4.0 * se + 1e-9;
    assert!(
        (a.mean - b.mean).abs() <= tol,
        "{label}: trait mean {:.3} vs fast mean {:.3} (tol {:.3})",
        a.mean,
        b.mean,
        tol
    );
}

/// Mean correct-node counts: `SimplePlan` (majority vote) under the
/// given adversary vs `FastSimple` under the matching [`FaultModel`],
/// both with the same Theorem 2.2/2.4 phase length.
fn compare_simple_means<M: FaultModel>(
    label: &str,
    g: &Graph,
    plan: &SimplePlan,
    fault: FaultConfig,
    model: Model,
    fast_model: &M,
) {
    let fast = FastSimple::new(&CsrGraph::from(g), g.node(0), plan.phase_len());
    assert_eq!(fast.total_rounds(), plan.total_rounds(), "{label}");
    let trait_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            let out = match model {
                Model::Mp => plan.run_mp(g, fault, FlipMpAdversary, seed, SOURCE_BIT),
                Model::Radio => plan.run_radio(
                    g,
                    fault,
                    LieOrJamAdversary::new(SOURCE_BIT),
                    seed,
                    SOURCE_BIT,
                ),
            };
            out.correct_count(SOURCE_BIT) as f64
        })
        .collect();
    let fast_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| fast.run_lane_model(fast_model, seed, 0).correct_count() as f64)
        .collect();
    assert_means_close(label, &summarize(&trait_counts), &summarize(&fast_counts));
}

#[test]
fn simple_mp_malicious_means_agree_on_grid() {
    let g = generators::grid(6, 6);
    let p = 0.3;
    let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
    compare_simple_means(
        "grid6x6 mp malicious p=0.3",
        &g,
        &plan,
        FaultConfig::malicious(p),
        Model::Mp,
        &FlipFault::new(p),
    );
}

#[test]
fn simple_mp_limited_malicious_means_agree_on_random_graph() {
    // The flip adversary never exceeds its intended targets, so the
    // limited clamp is a no-op and the same FlipFault law must hold.
    let g = generators::gnp_connected(120, 0.04, &mut SmallRng::seed_from_u64(5));
    let p = 0.25;
    let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
    compare_simple_means(
        "gnp120 mp limited-malicious p=0.25",
        &g,
        &plan,
        FaultConfig::limited_malicious(p),
        Model::Mp,
        &FlipFault::new(p),
    );
}

#[test]
fn simple_radio_limited_malicious_means_agree() {
    // Under the limited clamp the lie-or-jam adversary reduces to the
    // lie rule — exactly the per-round law LieOrJamFault samples.
    let g = generators::grid(6, 6);
    let p = 0.05;
    let plan = SimplePlan::malicious_radio(&g, g.node(0), p);
    compare_simple_means(
        "grid6x6 radio limited-malicious p=0.05",
        &g,
        &plan,
        FaultConfig::limited_malicious(p),
        Model::Radio,
        &LieOrJamFault::new(p),
    );
}

/// Mean *correct* informed counts at the full horizon: trait flood
/// (flip adversary, correct-set reporting) vs the FlipFault fast path.
/// Under the flip adversary deliveries always succeed, so there is no
/// completion requirement to satisfy — the count is the statistic.
fn compare_flood_means(label: &str, g: &Graph, p: f64, variant: FloodVariant) {
    let source = g.node(0);
    let horizon = theorem_horizon(g, source, p);
    let mp_plan = FloodPlan::with_horizon(g, source, horizon, variant);
    let fast_variant = match variant {
        FloodVariant::Tree => FastFloodVariant::Tree,
        FloodVariant::Graph => FastFloodVariant::Graph,
    };
    let fast = FastFlood::new(CsrGraph::from(g), source, horizon, fast_variant);
    let model = FlipFault::new(p);
    let trait_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            mp_plan
                .run(g, FaultConfig::malicious(p), seed)
                .informed_at
                .iter()
                .filter(|r| r.is_some())
                .count() as f64
        })
        .collect();
    let fast_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            fast.run_lane_model(&model, &FaultTapes::new(seed), 0)
                .informed_count() as f64
        })
        .collect();
    assert_means_close(label, &summarize(&trait_counts), &summarize(&fast_counts));
}

#[test]
fn tree_flood_malicious_means_agree_on_random_graph() {
    let g = generators::gnp_connected(300, 0.02, &mut SmallRng::seed_from_u64(5));
    compare_flood_means("gnp300 malicious p=0.3", &g, 0.3, FloodVariant::Tree);
}

#[test]
fn graph_flood_malicious_means_agree_on_cycle() {
    // The cycle informs every non-antipodal node twice per level on
    // the graph variant, exercising the AND-composition of informing
    // contributions.
    let g = generators::cycle(60);
    compare_flood_means("cycle60 malicious p=0.4", &g, 0.4, FloodVariant::Graph);
}

#[test]
fn decay_limited_malicious_means_agree() {
    // The flip adversary preserves the fault-free participation and
    // collision schedule, so the compared statistic is the correct
    // informed count at a fixed horizon.
    let g = generators::grid(6, 6);
    let p = 0.3;
    let mut cfg = DecayConfig::classical(g.node_count(), traversal::radius_from(&g, g.node(0)));
    cfg.epochs *= 2;
    let fast = FastRadio::new(
        CsrGraph::from(&g),
        g.node(0),
        cfg.total_rounds(),
        FastRadioSchedule::Decay {
            epoch_len: cfg.epoch_len,
        },
    );
    let model = FlipFault::new(p);
    let trait_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            run_decay(&g, g.node(0), cfg, FaultConfig::limited_malicious(p), seed)
                .informed_at
                .iter()
                .filter(|r| r.is_some())
                .count() as f64
        })
        .collect();
    let fast_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| fast.run_lane_model(&model, seed, 0).informed_count() as f64)
        .collect();
    assert_means_close(
        "grid6x6 decay limited-malicious p=0.3",
        &summarize(&trait_counts),
        &summarize(&fast_counts),
    );
}

#[test]
fn omission_instance_is_byte_identical_to_the_wired_kernels() {
    // The trait layer's compatibility contract: running the `Omission`
    // instance through the model drivers must reproduce the hard-wired
    // omission lane replays byte-for-byte, at any rate — the i.i.d.
    // Silent delegation plus site-addressed coin sharing make this
    // exact, not statistical.
    let lanes = [0u32, 31, 63];
    let g = generators::grid(5, 6);
    let csr = CsrGraph::from(&g);

    let simple = FastSimple::new(&csr, g.node(0), 9);
    let flood = FastFlood::new(csr.clone(), g.node(0), 40, FastFloodVariant::Tree);
    let radio = FastRadio::new(
        csr,
        g.node(0),
        180,
        FastRadioSchedule::Decay { epoch_len: 6 },
    );
    for p in [0.0, 0.3, 0.76] {
        let model = Omission::new(p);
        for seed in 0..10u64 {
            for lane in lanes {
                assert_eq!(
                    simple.run_lane_model(&model, seed, lane),
                    simple.run_lane(p, seed, lane),
                    "simple p={p} seed {seed} lane {lane}"
                );
                assert_eq!(
                    flood.run_lane_model(&model, &FaultTapes::new(seed), lane),
                    flood.run_lane(p, seed, lane),
                    "flood p={p} seed {seed} lane {lane}"
                );
                assert_eq!(
                    radio.run_lane_model(&model, seed, lane),
                    radio.run_lane(p, seed, lane),
                    "radio p={p} seed {seed} lane {lane}"
                );
            }
        }
    }
}

#[test]
fn malicious_kernels_agree_with_omission_lanes_at_p_zero() {
    // At p = 0 a malicious model never corrupts, so every model lane
    // replay reaches the same correct set as the hard-wired omission
    // replay of the same block. Timing conventions legitimately differ
    // for Simple — a majority vote settles at the end of its phase
    // while an omission adoption lands on the first clean transmission
    // — so the Simple check compares sets; the flood and Decay
    // schedules are round-exact and must match byte-for-byte.
    let lanes = [0u32, 31, 63];
    let g = generators::grid(5, 6);
    let csr = CsrGraph::from(&g);

    let simple = FastSimple::new(&csr, g.node(0), 9);
    let flood = FastFlood::new(csr.clone(), g.node(0), 40, FastFloodVariant::Tree);
    let radio = FastRadio::new(
        csr,
        g.node(0),
        180,
        FastRadioSchedule::Decay { epoch_len: 6 },
    );
    for seed in 0..10u64 {
        for lane in lanes {
            let wired = simple.run_lane(0.0, seed, lane);
            for model in [
                &FlipFault::new(0.0) as &dyn FaultModel,
                &LieOrJamFault::new(0.0),
            ] {
                let out = simple.run_lane_model(model, seed, lane);
                assert!(out.complete(), "simple {} seed {seed}", model.name());
                for v in g.nodes() {
                    assert_eq!(
                        out.is_correct(v),
                        wired.is_correct(v),
                        "simple {} seed {seed} lane {lane} node {v}",
                        model.name()
                    );
                }
            }
            assert_eq!(
                flood.run_lane_model(&FlipFault::new(0.0), &FaultTapes::new(seed), lane),
                flood.run_lane(0.0, seed, lane),
                "flood seed {seed} lane {lane}"
            );
            assert_eq!(
                radio.run_lane_model(&FlipFault::new(0.0), seed, lane),
                radio.run_lane(0.0, seed, lane),
                "radio seed {seed} lane {lane}"
            );
        }
    }
}

#[test]
fn trait_and_fast_engines_agree_exactly_at_p_zero() {
    // With no faulty nodes the adversaries never fire: Simple and
    // flood are fully deterministic (every engine completes the same
    // schedule), and Decay's shared coin tapes make the trait run
    // coincide with the scalar fast run per seed.
    let g = generators::grid(5, 4);
    let source = g.node(0);

    for (model, fault) in [
        (Model::Mp, FaultConfig::malicious(0.0)),
        (Model::Radio, FaultConfig::limited_malicious(0.0)),
    ] {
        let plan = match model {
            Model::Mp => SimplePlan::malicious_mp(&g, source, 0.0),
            Model::Radio => SimplePlan::malicious_radio(&g, source, 0.0),
        };
        let fast = FastSimple::new(&CsrGraph::from(&g), source, plan.phase_len());
        for seed in 0..5 {
            let out = match model {
                Model::Mp => plan.run_mp(&g, fault, FlipMpAdversary, seed, SOURCE_BIT),
                Model::Radio => plan.run_radio(
                    &g,
                    fault,
                    LieOrJamAdversary::new(SOURCE_BIT),
                    seed,
                    SOURCE_BIT,
                ),
            };
            assert_eq!(out.correct_count(SOURCE_BIT), g.node_count(), "{model}");
            assert_eq!(out.rounds, plan.total_rounds());
            let fm: Box<dyn FaultModel> = match model {
                Model::Mp => Box::new(FlipFault::new(0.0)),
                Model::Radio => Box::new(LieOrJamFault::new(0.0)),
            };
            let fast_out = fast.run_lane_model(fm.as_ref(), seed, 0);
            assert!(fast_out.complete(), "{model} seed {seed}");
            assert_eq!(fast_out.completion_round(), Some(plan.total_rounds()));
        }
    }

    let horizon = theorem_horizon(&g, source, 0.0);
    let flood_plan = FloodPlan::with_horizon(&g, source, horizon, FloodVariant::Tree);
    let fast_flood = FastFlood::new(CsrGraph::from(&g), source, horizon, FastFloodVariant::Tree);
    for seed in 0..5 {
        let reference = flood_plan.run(&g, FaultConfig::malicious(0.0), seed);
        let out = fast_flood.run_lane_model(&FlipFault::new(0.0), &FaultTapes::new(seed), 0);
        assert_eq!(reference.completion_round(), out.completion_round());
        for v in g.nodes() {
            assert_eq!(
                reference.informed_at[v.index()].is_some(),
                out.is_informed(v),
                "seed {seed} node {v}"
            );
        }
    }

    let cfg = DecayConfig::classical(g.node_count(), traversal::radius_from(&g, source));
    let fast_decay = FastRadio::new(
        CsrGraph::from(&g),
        source,
        cfg.total_rounds(),
        FastRadioSchedule::Decay {
            epoch_len: cfg.epoch_len,
        },
    );
    for seed in 0..5 {
        let reference = run_decay(&g, source, cfg, FaultConfig::limited_malicious(0.0), seed);
        let out = fast_decay.run(0.0, seed);
        assert_eq!(reference.completion_round(), out.completion_round());
        for v in g.nodes() {
            assert_eq!(
                reference.informed_at[v.index()].is_some(),
                out.is_informed(v),
                "seed {seed} node {v}"
            );
        }
    }
}

/// The malicious model instances exercised by the lane and shard
/// contracts: the two i.i.d. laws plus a preprocessed placement mask
/// per corruption kind.
fn placed(frac: f64, kind: CorruptionKind) -> WorstCasePlacement {
    WorstCasePlacement::new(frac, kind)
}

#[test]
fn malicious_batches_agree_lane_for_lane() {
    let g = generators::grid(5, 6);
    let csr = CsrGraph::from(&g);
    let seeds = [3u64, 77, 2005];

    let simple = FastSimple::new(&csr, g.node(0), 9);
    let mut simple_placed = placed(0.25, CorruptionKind::Flip);
    simple.preprocess(&mut simple_placed);
    let simple_models: [&dyn FaultModel; 3] = [
        &FlipFault::new(0.3),
        &LieOrJamFault::new(0.2),
        &simple_placed,
    ];
    for model in simple_models {
        for &bs in &seeds {
            let batch = simple.run_batch_model(model, bs);
            for lane in 0..LANES as u32 {
                assert_eq!(
                    batch.lane_outcome(lane),
                    simple.run_lane_model(model, bs, lane),
                    "simple {} block {bs} lane {lane}",
                    model.name()
                );
            }
        }
    }

    let flood = FastFlood::new(csr.clone(), g.node(0), 40, FastFloodVariant::Graph);
    let mut flood_placed = placed(0.25, CorruptionKind::Lie);
    flood.preprocess(&mut flood_placed);
    let flood_models: [&dyn FaultModel; 2] = [&FlipFault::new(0.4), &flood_placed];
    for model in flood_models {
        for &bs in &seeds {
            let tapes = FaultTapes::new(bs);
            let batch = flood.run_batch_model(model, &tapes);
            for lane in 0..LANES as u32 {
                assert_eq!(
                    batch.lane_outcome(lane),
                    flood.run_lane_model(model, &tapes, lane),
                    "flood {} block {bs} lane {lane}",
                    model.name()
                );
            }
        }
    }

    let radio = FastRadio::new(
        csr,
        g.node(0),
        180,
        FastRadioSchedule::Decay { epoch_len: 6 },
    );
    let mut radio_placed = placed(0.3, CorruptionKind::Flip);
    radio.preprocess(&mut radio_placed);
    let radio_models: [&dyn FaultModel; 2] = [&FlipFault::new(0.3), &radio_placed];
    for model in radio_models {
        for &bs in &seeds {
            let batch = radio.run_batch_model(model, bs);
            for lane in 0..LANES as u32 {
                assert_eq!(
                    batch.lane_outcome(lane),
                    radio.run_lane_model(model, bs, lane),
                    "radio {} block {bs} lane {lane}",
                    model.name()
                );
            }
        }
    }
}

#[test]
fn malicious_shards_are_neutral() {
    // Sharded execution is a traversal-order detail: for every shard
    // count the sharded model drivers must reproduce the unsharded
    // batch and lane replays byte-for-byte, including for placement
    // masks whose corrupted set was pinned by preprocessing.
    let g = generators::grid(5, 6);
    let n = g.node_count();
    let csr = CsrGraph::from(&g);
    let bs = 2005u64;
    let lane = 5u32;

    let simple = FastSimple::new(&csr, g.node(0), 9);
    let mut simple_placed = placed(0.25, CorruptionKind::Flip);
    simple.preprocess(&mut simple_placed);
    let flood = FastFlood::new(csr.clone(), g.node(0), 40, FastFloodVariant::Tree);
    let mut flood_placed = placed(0.25, CorruptionKind::Flip);
    flood.preprocess(&mut flood_placed);
    let radio = FastRadio::new(
        csr,
        g.node(0),
        180,
        FastRadioSchedule::Decay { epoch_len: 6 },
    );
    let mut radio_placed = placed(0.3, CorruptionKind::Flip);
    radio.preprocess(&mut radio_placed);

    let flip = FlipFault::new(0.3);
    let lie = LieOrJamFault::new(0.2);
    for shards in [2usize, 3, 7] {
        let plan = ShardPlan::uniform(n, shards);
        let simple_models: [&dyn FaultModel; 3] = [&flip, &lie, &simple_placed];
        for model in simple_models {
            assert_eq!(
                simple.run_batch_sharded_model(&plan, model, bs),
                simple.run_batch_model(model, bs),
                "simple {} shards {shards}",
                model.name()
            );
            assert_eq!(
                simple.run_lane_sharded_model(&plan, model, bs, lane),
                simple.run_lane_model(model, bs, lane),
                "simple {} shards {shards} lane",
                model.name()
            );
        }
        let tapes = FaultTapes::new(bs);
        let flood_models: [&dyn FaultModel; 2] = [&flip, &flood_placed];
        for model in flood_models {
            assert_eq!(
                flood.run_batch_sharded_model(&plan, model, &tapes),
                flood.run_batch_model(model, &tapes),
                "flood {} shards {shards}",
                model.name()
            );
            assert_eq!(
                flood.run_lane_sharded_model(&plan, model, &tapes, lane),
                flood.run_lane_model(model, &tapes, lane),
                "flood {} shards {shards} lane",
                model.name()
            );
        }
        let radio_models: [&dyn FaultModel; 2] = [&flip, &radio_placed];
        for model in radio_models {
            assert_eq!(
                radio.run_batch_sharded_model(&plan, model, bs),
                radio.run_batch_model(model, bs),
                "radio {} shards {shards}",
                model.name()
            );
            assert_eq!(
                radio.run_lane_sharded_model(&plan, model, bs, lane),
                radio.run_lane_model(model, bs, lane),
                "radio {} shards {shards} lane",
                model.name()
            );
        }
    }
}

#[test]
fn scenario_level_malicious_simple_paths_agree() {
    // End to end through the Scenario layer: the same malicious spec
    // executed by the forced fast path and by the trait-object engine
    // (below the auto-switch threshold) must use the same Theorem 2.2
    // phase length and produce matching success rates.
    let n = 64;
    let graph = GraphFamily::Grid(8, 8);
    assert!(n < SIMPLE_FAST_MIN_N, "must exercise the general engine");
    let p = 0.3;
    let general = Scenario {
        graph,
        algorithm: Algorithm::Simple,
        model: Model::Mp,
        fault: FaultConfig::malicious(p),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid");
    assert!(!general.uses_fast_path());
    let fast = Scenario {
        graph,
        algorithm: Algorithm::SimpleFast { phase_len: None },
        model: Model::Mp,
        fault: FaultConfig::malicious(p),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid");
    assert!(fast.uses_fast_path());
    assert_eq!(general.phase_len(), fast.phase_len(), "same Theorem 2.2 m");
    assert_eq!(general.rounds(), fast.rounds());

    let rates = |prep: &randcast_core::scenario::PreparedScenario| {
        (0..TRIALS)
            .map(|seed| f64::from(u8::from(prep.trial(seed).success)))
            .collect::<Vec<f64>>()
    };
    let (g_rates, f_rates) = (rates(&general), rates(&fast));
    assert_means_close(
        "scenario grid8x8 mp malicious p=0.3",
        &summarize(&g_rates),
        &summarize(&f_rates),
    );
}
