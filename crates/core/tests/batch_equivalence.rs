//! Lane-exact equivalence suite for the bit-sliced batch path.
//!
//! For 250 fixed block seeds per engine, a batched
//! [`PreparedScenario::trial_block`] run must agree **byte-for-byte**,
//! lane by lane, with the scalar lane replay
//! [`PreparedScenario::trial_lane`] of the same block seed — the
//! coupling contract the engines promise (`run_batch` ≡ `run_lane`
//! per lane) lifted to the scenario layer where sweeps consume it.
//! The seeds cycle over graph family × failure probability cells
//! (grid / G(n,p) / random-geometric × p ∈ {0, 0.3, 0.76, 0.9}) so
//! every cell sees ~21 distinct blocks, including the p = 0 and
//! heavy-failure corners and a possibly-disconnected family.
//!
//! [`PreparedScenario::trial_block`]: randcast_core::scenario::PreparedScenario::trial_block
//! [`PreparedScenario::trial_lane`]: randcast_core::scenario::PreparedScenario::trial_lane

use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_core::sweep::BATCH_LANES;
use randcast_engine::fault::FaultConfig;
use randcast_stats::seed::SeedSequence;

const SEEDS: usize = 250;
const PS: [f64; 4] = [0.0, 0.3, 0.76, 0.9];

fn families() -> [GraphFamily; 3] {
    [
        GraphFamily::Grid(5, 6),
        GraphFamily::Gnp {
            n: 40,
            avg_deg: 6,
            seed: 3,
        },
        GraphFamily::RandomGeometric {
            n: 40,
            deg: 6,
            seed: 3,
        },
    ]
}

fn check_engine(name: &str, algorithm: Algorithm, model: Model) {
    let seeds = SeedSequence::new(0x0250_BA7C);
    let mut cells = Vec::new();
    for family in families() {
        for p in PS {
            let scenario = Scenario {
                graph: family,
                algorithm,
                model,
                fault: FaultConfig::omission(p),
                shards: ShardSpec::Auto,
            };
            let prepared = scenario.try_prepare().expect("valid scenario");
            assert!(prepared.supports_batch(), "{name} must be batch-capable");
            cells.push((family.label(), p, prepared));
        }
    }
    for s in 0..SEEDS {
        let (label, p, prepared) = &cells[s % cells.len()];
        let block_seed = seeds.nth_seed(s as u64);
        let block = prepared.trial_block(block_seed);
        assert_eq!(block.len(), BATCH_LANES);
        for (lane, out) in block.iter().enumerate() {
            let scalar = prepared.trial_lane(block_seed, lane as u32);
            assert_eq!(
                *out, scalar,
                "{name} on {label} at p={p}: seed #{s} lane {lane} diverged"
            );
        }
    }
}

#[test]
fn flood_blocks_agree_lane_for_lane_with_scalar_replays() {
    check_engine(
        "flood",
        Algorithm::FloodFast { horizon_scale: 1 },
        Model::Mp,
    );
}

#[test]
fn radio_blocks_agree_lane_for_lane_with_scalar_replays() {
    check_engine(
        "radio",
        Algorithm::DecayFast { epoch_factor: 2 },
        Model::Radio,
    );
}

#[test]
fn simple_blocks_agree_lane_for_lane_with_scalar_replays() {
    check_engine(
        "simple",
        Algorithm::SimpleFast { phase_len: None },
        Model::Mp,
    );
}
