//! Sharded-vs-monolithic equivalence suite for the shard-at-a-time
//! fast paths.
//!
//! For 250 fixed block seeds per engine, a [`PreparedScenario`] with
//! `shards: ShardSpec::Fixed(k)` (k ∈ {2, 3, 7}) must agree
//! **element-wise, byte-for-byte** with the monolithic
//! `ShardSpec::Fixed(1)` prepare of the same scenario — for both the
//! batched [`trial_block`] entry point and the scalar [`trial_lane`]
//! replay. This is the outcome-neutrality contract of the shard knob:
//! coins are site-addressed pure functions and each round's evolution
//! is set-based, so partitioning the frontier passes by node range can
//! never change a bit (see `DESIGN.md`, *Shard-view substrate*).
//!
//! The seeds cycle over graph family × failure probability × shard
//! count cells (grid / G(n,p) / random-geometric × p ∈ {0, 0.3, 0.76,
//! 0.9} × k ∈ {2, 3, 7}), so the suite covers the p = 0 exact curve,
//! the heavy-failure corner, and a possibly-disconnected
//! random-geometric cell whose source component stops short of the
//! shard bounds.
//!
//! [`PreparedScenario`]: randcast_core::scenario::PreparedScenario
//! [`trial_block`]: randcast_core::scenario::PreparedScenario::trial_block
//! [`trial_lane`]: randcast_core::scenario::PreparedScenario::trial_lane

use rand::rngs::SmallRng;
use rand::SeedableRng;
use randcast_core::scenario::{
    Algorithm, GraphFamily, Model, PreparedScenario, Scenario, ShardSpec,
};
use randcast_core::sweep::BATCH_LANES;
use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::ShardedFlood;
use randcast_engine::radio_fast::{FastRadioSchedule, ShardedRadio};
use randcast_engine::simple_fast::ShardedSimple;
use randcast_graph::generators::gnp_connected;
use randcast_graph::shard::{
    default_scratch_dir, ShardPlan, ShardStore, ShardedBfsTree, SpillSink,
};
use randcast_graph::CsrGraph;
use randcast_stats::seed::SeedSequence;

const SEEDS: usize = 250;
const PS: [f64; 4] = [0.0, 0.3, 0.76, 0.9];
const SHARDS: [usize; 3] = [2, 3, 7];

fn families() -> [GraphFamily; 3] {
    [
        GraphFamily::Grid(5, 6),
        GraphFamily::Gnp {
            n: 40,
            avg_deg: 6,
            seed: 3,
        },
        // Sparse enough to be disconnected: exercises shards whose
        // node range the broadcast never reaches.
        GraphFamily::RandomGeometric {
            n: 40,
            deg: 6,
            seed: 3,
        },
    ]
}

fn prepare(
    family: GraphFamily,
    algorithm: Algorithm,
    model: Model,
    p: f64,
    k: usize,
) -> PreparedScenario {
    let prepared = Scenario {
        graph: family,
        algorithm,
        model,
        fault: FaultConfig::omission(p),
        shards: ShardSpec::Fixed(k),
    }
    .try_prepare()
    .expect("valid scenario");
    assert_eq!(
        prepared.shard_plan().is_some(),
        k > 1,
        "Fixed({k}) must shard exactly when k > 1"
    );
    prepared
}

fn check_engine(name: &str, algorithm: Algorithm, model: Model) {
    let seeds = SeedSequence::new(0x07AD_0250);
    let mut cells = Vec::new();
    for family in families() {
        for p in PS {
            for k in SHARDS {
                let mono = prepare(family, algorithm, model, p, 1);
                let sharded = prepare(family, algorithm, model, p, k);
                cells.push((family.label(), p, k, mono, sharded));
            }
        }
    }
    for s in 0..SEEDS {
        let (label, p, k, mono, sharded) = &cells[s % cells.len()];
        let block_seed = seeds.nth_seed(s as u64);
        let reference = mono.trial_block(block_seed);
        let block = sharded.trial_block(block_seed);
        assert_eq!(block.len(), BATCH_LANES);
        assert_eq!(
            block, reference,
            "{name} on {label} at p={p}, {k} shards: seed #{s} batch diverged"
        );
        for lane in [0usize, 21, BATCH_LANES - 1] {
            assert_eq!(
                sharded.trial_lane(block_seed, lane as u32),
                mono.trial_lane(block_seed, lane as u32),
                "{name} on {label} at p={p}, {k} shards: seed #{s} lane {lane} diverged"
            );
        }
        for threads in [2usize, 4] {
            assert_eq!(
                sharded.trial_block_threads(block_seed, threads),
                reference,
                "{name} on {label} at p={p}, {k} shards × {threads} threads: \
                 seed #{s} parallel batch diverged"
            );
        }
    }
}

#[test]
fn sharded_flood_blocks_match_monolithic_element_wise() {
    check_engine(
        "flood",
        Algorithm::FloodFast { horizon_scale: 1 },
        Model::Mp,
    );
}

#[test]
fn sharded_decay_blocks_match_monolithic_element_wise() {
    check_engine(
        "decay",
        Algorithm::DecayFast { epoch_factor: 2 },
        Model::Radio,
    );
}

#[test]
fn sharded_simple_blocks_match_monolithic_element_wise() {
    check_engine(
        "simple",
        Algorithm::SimpleFast { phase_len: None },
        Model::Mp,
    );
}

/// Builds a disk-backed copy of `csr` under `plan` (segment files in
/// the scratch dir, freed when the returned store drops).
fn disk_store(csr: &CsrGraph, plan: ShardPlan) -> ShardStore {
    let mut sink = SpillSink::create(default_scratch_dir(), plan).expect("spill sink");
    for v in 0..csr.node_count() {
        for &t in csr.neighbors_of(v) {
            if (v as u32) < t {
                sink.push(v as u64, u64::from(t)).expect("spill edge");
            }
        }
    }
    ShardStore::Disk(sink.finalize().expect("finalize"))
}

/// The `--prefetch` leg of the outcome-neutrality contract: on
/// disk-backed stores, the pipelined background reader must be byte-
/// invisible — for all 250 seeds × 3 out-of-core engines, a scalar
/// lane replayed with prefetch **on** must equal the same lane with
/// prefetch **off** (and, every 25th seed, the whole 64-lane batched
/// block must too). The graph is connected and small; each engine gets
/// its own 3-segment disk store so every pass crosses segment bounds.
#[test]
fn prefetch_toggle_is_byte_invisible_on_disk_stores() {
    let n = 400;
    let g = gnp_connected(n, 0.018, &mut SmallRng::seed_from_u64(0x0F0E));
    let csr = CsrGraph::from(&g);
    let plan = ShardPlan::uniform(n, 3);
    let seeds = SeedSequence::new(0x07AD_0251);

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let epoch_len = (n as f64).log2().ceil() as usize + 1;
    let mut flood = ShardedFlood::new(disk_store(&csr, plan.clone()), 0, 600);
    let mut radio = ShardedRadio::new(
        disk_store(&csr, plan.clone()),
        0,
        1200,
        FastRadioSchedule::Decay { epoch_len },
    );
    let simple_base = disk_store(&csr, plan);
    let tree = ShardedBfsTree::build(&simple_base, 0, default_scratch_dir()).expect("BFS tree");
    assert_eq!(tree.reachable(), n, "gnp_connected source component");
    let (order, children) = tree.into_parts();
    let mut simple = ShardedSimple::new(ShardStore::Disk(children), order, 0, 3);

    for s in 0..SEEDS {
        let p = PS[s % PS.len()];
        let block_seed = seeds.nth_seed(s as u64);
        let lane = (s % BATCH_LANES) as u32;
        let check_batch = s % 25 == 0;

        flood = flood.with_prefetch(true);
        let f_lane = flood.run_lane(p, block_seed, lane).expect("flood on");
        let f_batch = check_batch.then(|| flood.run_batch(p, block_seed, n).expect("flood batch"));
        flood = flood.with_prefetch(false);
        assert_eq!(
            f_lane,
            flood.run_lane(p, block_seed, lane).expect("flood off"),
            "flood: seed #{s} p={p} lane={lane} diverged across prefetch"
        );
        if let Some(batch) = f_batch {
            assert_eq!(
                batch,
                flood.run_batch(p, block_seed, n).expect("flood batch off"),
                "flood: seed #{s} p={p} batch diverged across prefetch"
            );
        }

        radio = radio.with_prefetch(true);
        let r_lane = radio.run_lane(p, block_seed, lane).expect("radio on");
        let r_batch = check_batch.then(|| radio.run_batch(p, block_seed).expect("radio batch"));
        radio = radio.with_prefetch(false);
        assert_eq!(
            r_lane,
            radio.run_lane(p, block_seed, lane).expect("radio off"),
            "radio: seed #{s} p={p} lane={lane} diverged across prefetch"
        );
        if let Some(batch) = r_batch {
            assert_eq!(
                batch,
                radio.run_batch(p, block_seed).expect("radio batch off"),
                "radio: seed #{s} p={p} batch diverged across prefetch"
            );
        }

        simple = simple.with_prefetch(true);
        let s_lane = simple.run_lane(p, block_seed, lane).expect("simple on");
        let s_batch = check_batch.then(|| simple.run_batch(p, block_seed).expect("simple batch"));
        simple = simple.with_prefetch(false);
        assert_eq!(
            s_lane,
            simple.run_lane(p, block_seed, lane).expect("simple off"),
            "simple: seed #{s} p={p} lane={lane} diverged across prefetch"
        );
        if let Some(batch) = s_batch {
            assert_eq!(
                batch,
                simple.run_batch(p, block_seed).expect("simple batch off"),
                "simple: seed #{s} p={p} batch diverged across prefetch"
            );
        }
    }
}

#[test]
fn p_zero_sharded_curves_are_exact() {
    // At p = 0 every transmission works, so the per-round informed
    // counts are a deterministic function of the graph: sharding must
    // reproduce the exact fault-free curve, not merely match another
    // stochastic run.
    let family = GraphFamily::Grid(5, 6);
    let mono = prepare(
        family,
        Algorithm::FloodFast { horizon_scale: 1 },
        Model::Mp,
        0.0,
        1,
    );
    let reference = mono.trial_block(12345);
    for out in &reference {
        assert!(out.success, "p = 0 flood must complete");
    }
    for k in SHARDS {
        let sharded = prepare(
            family,
            Algorithm::FloodFast { horizon_scale: 1 },
            Model::Mp,
            0.0,
            k,
        );
        assert_eq!(sharded.trial_block(12345), reference, "{k} shards");
    }
}
