//! Sharded-vs-monolithic equivalence suite for the shard-at-a-time
//! fast paths.
//!
//! For 250 fixed block seeds per engine, a [`PreparedScenario`] with
//! `shards: ShardSpec::Fixed(k)` (k ∈ {2, 3, 7}) must agree
//! **element-wise, byte-for-byte** with the monolithic
//! `ShardSpec::Fixed(1)` prepare of the same scenario — for both the
//! batched [`trial_block`] entry point and the scalar [`trial_lane`]
//! replay. This is the outcome-neutrality contract of the shard knob:
//! coins are site-addressed pure functions and each round's evolution
//! is set-based, so partitioning the frontier passes by node range can
//! never change a bit (see `DESIGN.md`, *Shard-view substrate*).
//!
//! The seeds cycle over graph family × failure probability × shard
//! count cells (grid / G(n,p) / random-geometric × p ∈ {0, 0.3, 0.76,
//! 0.9} × k ∈ {2, 3, 7}), so the suite covers the p = 0 exact curve,
//! the heavy-failure corner, and a possibly-disconnected
//! random-geometric cell whose source component stops short of the
//! shard bounds.
//!
//! [`PreparedScenario`]: randcast_core::scenario::PreparedScenario
//! [`trial_block`]: randcast_core::scenario::PreparedScenario::trial_block
//! [`trial_lane`]: randcast_core::scenario::PreparedScenario::trial_lane

use randcast_core::scenario::{
    Algorithm, GraphFamily, Model, PreparedScenario, Scenario, ShardSpec,
};
use randcast_core::sweep::BATCH_LANES;
use randcast_engine::fault::FaultConfig;
use randcast_stats::seed::SeedSequence;

const SEEDS: usize = 250;
const PS: [f64; 4] = [0.0, 0.3, 0.76, 0.9];
const SHARDS: [usize; 3] = [2, 3, 7];

fn families() -> [GraphFamily; 3] {
    [
        GraphFamily::Grid(5, 6),
        GraphFamily::Gnp {
            n: 40,
            avg_deg: 6,
            seed: 3,
        },
        // Sparse enough to be disconnected: exercises shards whose
        // node range the broadcast never reaches.
        GraphFamily::RandomGeometric {
            n: 40,
            deg: 6,
            seed: 3,
        },
    ]
}

fn prepare(
    family: GraphFamily,
    algorithm: Algorithm,
    model: Model,
    p: f64,
    k: usize,
) -> PreparedScenario {
    let prepared = Scenario {
        graph: family,
        algorithm,
        model,
        fault: FaultConfig::omission(p),
        shards: ShardSpec::Fixed(k),
    }
    .try_prepare()
    .expect("valid scenario");
    assert_eq!(
        prepared.shard_plan().is_some(),
        k > 1,
        "Fixed({k}) must shard exactly when k > 1"
    );
    prepared
}

fn check_engine(name: &str, algorithm: Algorithm, model: Model) {
    let seeds = SeedSequence::new(0x07AD_0250);
    let mut cells = Vec::new();
    for family in families() {
        for p in PS {
            for k in SHARDS {
                let mono = prepare(family, algorithm, model, p, 1);
                let sharded = prepare(family, algorithm, model, p, k);
                cells.push((family.label(), p, k, mono, sharded));
            }
        }
    }
    for s in 0..SEEDS {
        let (label, p, k, mono, sharded) = &cells[s % cells.len()];
        let block_seed = seeds.nth_seed(s as u64);
        let reference = mono.trial_block(block_seed);
        let block = sharded.trial_block(block_seed);
        assert_eq!(block.len(), BATCH_LANES);
        assert_eq!(
            block, reference,
            "{name} on {label} at p={p}, {k} shards: seed #{s} batch diverged"
        );
        for lane in [0usize, 21, BATCH_LANES - 1] {
            assert_eq!(
                sharded.trial_lane(block_seed, lane as u32),
                mono.trial_lane(block_seed, lane as u32),
                "{name} on {label} at p={p}, {k} shards: seed #{s} lane {lane} diverged"
            );
        }
        for threads in [2usize, 4] {
            assert_eq!(
                sharded.trial_block_threads(block_seed, threads),
                reference,
                "{name} on {label} at p={p}, {k} shards × {threads} threads: \
                 seed #{s} parallel batch diverged"
            );
        }
    }
}

#[test]
fn sharded_flood_blocks_match_monolithic_element_wise() {
    check_engine(
        "flood",
        Algorithm::FloodFast { horizon_scale: 1 },
        Model::Mp,
    );
}

#[test]
fn sharded_decay_blocks_match_monolithic_element_wise() {
    check_engine(
        "decay",
        Algorithm::DecayFast { epoch_factor: 2 },
        Model::Radio,
    );
}

#[test]
fn sharded_simple_blocks_match_monolithic_element_wise() {
    check_engine(
        "simple",
        Algorithm::SimpleFast { phase_len: None },
        Model::Mp,
    );
}

#[test]
fn p_zero_sharded_curves_are_exact() {
    // At p = 0 every transmission works, so the per-round informed
    // counts are a deterministic function of the graph: sharding must
    // reproduce the exact fault-free curve, not merely match another
    // stochastic run.
    let family = GraphFamily::Grid(5, 6);
    let mono = prepare(
        family,
        Algorithm::FloodFast { horizon_scale: 1 },
        Model::Mp,
        0.0,
        1,
    );
    let reference = mono.trial_block(12345);
    for out in &reference {
        assert!(out.success, "p = 0 flood must complete");
    }
    for k in SHARDS {
        let sharded = prepare(
            family,
            Algorithm::FloodFast { horizon_scale: 1 },
            Model::Mp,
            0.0,
            k,
        );
        assert_eq!(sharded.trial_block(12345), reference, "{k} shards");
    }
}
