//! Property-based tests for the paper's algorithms: invariants that must
//! hold for every graph, composition, and parameter choice.

use proptest::prelude::*;
use randcast_core::feasibility::radio_threshold;
use randcast_core::kucera::{FailureBehavior, Plan};
use randcast_core::lower_bound::LayerSchedule;
use randcast_core::radio_sched::greedy_schedule;
use randcast_core::simple::{SimplePlan, VoteMode};
use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::SilentMpAdversary;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_graph::{Graph, GraphBuilder};

fn connected_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..24,
        proptest::collection::vec((0usize..24, 0usize..24), 0..30),
    )
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                b.edge((v * 3 + 1) % v, v);
            }
            for (u, v) in extra {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.edge(u, v);
                }
            }
            b.finish().expect("valid construction")
        })
}

/// Random Kučera composition trees (bounded size).
fn plan_strategy() -> impl Strategy<Value = Plan> {
    let base = (0.01f64..0.45).prop_map(Plan::basic);
    base.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), 2usize..4).prop_map(|(p, rho)| p.serial(rho)),
            (inner, prop_oneof![Just(3usize), Just(5)]).prop_map(|(p, k)| p.repeat(k)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_free_simple_broadcast_always_succeeds(
        g in connected_graph(),
        m in 1usize..4,
        bit in any::<bool>(),
        majority in any::<bool>(),
    ) {
        let mode = if majority { VoteMode::Majority } else { VoteMode::Any };
        let plan = SimplePlan::with_phase_len(&g, g.node(0), m, mode);
        let mp = plan.run_mp(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, bit);
        prop_assert!(mp.all_correct(bit));
        let radio = plan.run_radio(&g, FaultConfig::fault_free(), SilentRadioAdversary, 0, bit);
        prop_assert!(radio.all_correct(bit));
    }

    #[test]
    fn greedy_schedule_always_validates(g in connected_graph()) {
        let s = greedy_schedule(&g, g.node(0));
        prop_assert!(s.validate(&g, g.node(0)).is_ok());
        // Reception map covers every non-source node.
        let map = s.reception_map(&g, g.node(0));
        prop_assert!(map[0].is_none());
        for v in g.nodes().skip(1) {
            prop_assert!(map[v.index()].is_some(), "node {}", v);
        }
    }

    #[test]
    fn greedy_schedule_is_at_least_the_radius(g in connected_graph()) {
        // Information travels one hop per round at best.
        let s = greedy_schedule(&g, g.node(0));
        let d = randcast_graph::traversal::radius_from(&g, g.node(0));
        prop_assert!(s.len() >= d);
    }

    #[test]
    fn kucera_metrics_invariants(plan in plan_strategy()) {
        let m = plan.metrics();
        prop_assert!(m.len >= 1);
        prop_assert!(m.time >= m.len, "time at least one round per hop");
        prop_assert!(m.delay >= 1);
        prop_assert!((0.0..=1.0).contains(&m.error_bound));
    }

    #[test]
    fn kucera_compile_has_no_conflicts_and_fault_free_correct(
        plan in plan_strategy(),
        bit in any::<bool>(),
    ) {
        // compile() itself asserts the no-conflict invariant.
        let c = plan.compile();
        prop_assert_eq!(c.time(), plan.time());
        // Fault-free execution on a line of exactly the plan's length
        // delivers the bit everywhere.
        let g = randcast_graph::generators::path(plan.len());
        let out = c.run_tree(&g, g.node(0), 0.0, FailureBehavior::Flip, 0, bit);
        prop_assert!(out.all_correct(bit));
    }

    #[test]
    fn kucera_amplification_reduces_error(plan in plan_strategy()) {
        let q = plan.error_bound();
        prop_assume!(q > 1e-9);
        let amplified = plan.repeat(3);
        // For q < 1/2, the CO2 tail strictly improves.
        if q < 0.5 {
            prop_assert!(amplified.error_bound() < q + 1e-12);
        }
    }

    #[test]
    fn kucera_planner_meets_spec(len in 1usize..80, p in 0.01f64..0.45) {
        let plan = Plan::for_line(len, p, 1e-4).expect("p < 1/2 is feasible");
        prop_assert!(plan.len() >= len);
        prop_assert!(plan.error_bound() <= 1e-4);
    }

    #[test]
    fn layer_schedule_hits_bounds(
        m in 1usize..10,
        rounds in proptest::collection::vec(any::<u32>(), 1..30),
    ) {
        let full = (1u32 << m) - 1;
        let rounds: Vec<u32> = rounds.into_iter().map(|r| r & full).collect();
        let s = LayerSchedule::new(m, rounds.clone());
        for v in 1..=full {
            let h = s.hits(v);
            prop_assert!(h <= rounds.len());
        }
        // Union bound at p = 0 counts exactly the never-hit nodes.
        let zero_miss = s.union_bound_failure(0.0);
        let unhit = (1..=full).filter(|&v| s.hits(v) == 0).count() as f64;
        prop_assert!((zero_miss - unhit).abs() < 1e-9);
    }

    #[test]
    fn layer_schedule_union_bound_monotone_in_reps(
        m in 2usize..8,
        reps in 1usize..12,
        p in 0.05f64..0.95,
    ) {
        let a = LayerSchedule::singletons(m, reps).union_bound_failure(p);
        let b = LayerSchedule::singletons(m, reps + 1).union_bound_failure(p);
        prop_assert!(b <= a + 1e-12);
    }

    #[test]
    fn radio_threshold_brackets(delta in 0usize..40) {
        let t = radio_threshold(delta);
        prop_assert!((0.0..=0.5).contains(&t));
        // Fixed point within tolerance.
        prop_assert!((t - (1.0 - t).powi(delta as i32 + 1)).abs() < 1e-9);
    }

    #[test]
    fn simple_plan_rounds_partition(g in connected_graph(), m in 1usize..5) {
        let plan = SimplePlan::with_phase_len(&g, g.node(0), m, VoteMode::Any);
        prop_assert_eq!(plan.total_rounds(), g.node_count() * m);
    }
}
