//! Statistical equivalence of the geometric-draw fast-path Simple
//! kernel (`randcast_engine::simple_fast`) and the trait-object
//! `SimplePlan` automata on both general engines.
//!
//! Under omission faults the Simple schedule has a closed per-edge
//! structure (one transmitter per round, per-(node, round) fault coins
//! silencing all of a node's messages at once), which the fast kernel
//! samples directly. Consequences these tests pin:
//!
//! * at `p = 0` no fault coin is ever drawn and all three executions —
//!   `SimplePlan` on `MpNetwork`, `SimplePlan` on `RadioNetwork`, and
//!   `FastSimple` — agree **exactly, per seed**: every node holds the
//!   source bit and the schedule runs its full `n · m` rounds;
//! * at `p > 0` per-seed outcomes differ (different RNG streams) but
//!   every distribution matches: 250 fixed-seed trials per engine per
//!   scenario, comparing mean correct-node counts (and scenario-level
//!   success rates) under a Welch-style confidence tolerance (4
//!   standard errors — with fixed seeds the tests are deterministic,
//!   and the margin makes the pinned draws comfortably interior).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_core::scenario::{
    Algorithm, GraphFamily, Model, Scenario, ShardSpec, SIMPLE_FAST_MIN_N,
};
use randcast_core::simple::SimplePlan;
use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::SilentMpAdversary;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_engine::simple_fast::FastSimple;
use randcast_graph::{generators, CsrGraph, Graph};
use randcast_stats::chernoff;

const TRIALS: u64 = 250;
const SOURCE_BIT: bool = true;

struct Sample {
    mean: f64,
    var: f64,
    n: f64,
}

fn summarize(values: &[f64]) -> Sample {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
    Sample { mean, var, n }
}

/// Welch tolerance: |m₁ − m₂| within 4 standard errors (plus a hair for
/// degenerate zero-variance cases).
fn assert_means_close(label: &str, a: &Sample, b: &Sample) {
    let se = (a.var / a.n + b.var / b.n).sqrt();
    let tol = 4.0 * se + 1e-9;
    assert!(
        (a.mean - b.mean).abs() <= tol,
        "{label}: trait mean {:.3} vs fast mean {:.3} (tol {:.3})",
        a.mean,
        b.mean,
        tol
    );
}

/// Compares mean correct-node counts: `SimplePlan` in the given model
/// vs `FastSimple`, both with the Theorem 2.1 phase length for `p`.
fn compare_correct_count_means(label: &str, g: &Graph, p: f64, model: Model) {
    let plan = SimplePlan::omission_with_p(g, g.node(0), p);
    let fast = FastSimple::new(&CsrGraph::from(g), g.node(0), plan.phase_len());
    assert_eq!(fast.total_rounds(), plan.total_rounds(), "{label}");
    let trait_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            let out = match model {
                Model::Mp => plan.run_mp(
                    g,
                    FaultConfig::omission(p),
                    SilentMpAdversary,
                    seed,
                    SOURCE_BIT,
                ),
                Model::Radio => plan.run_radio(
                    g,
                    FaultConfig::omission(p),
                    SilentRadioAdversary,
                    seed,
                    SOURCE_BIT,
                ),
            };
            out.correct_count(SOURCE_BIT) as f64
        })
        .collect();
    let fast_counts: Vec<f64> = (0..TRIALS)
        .map(|seed| fast.run(p, seed).correct_count() as f64)
        .collect();
    assert_means_close(label, &summarize(&trait_counts), &summarize(&fast_counts));
}

#[test]
fn correct_counts_agree_on_grid_mp() {
    let g = generators::grid(6, 6);
    compare_correct_count_means("grid6x6 p=0.3 mp", &g, 0.3, Model::Mp);
}

#[test]
fn correct_counts_agree_on_grid_radio() {
    let g = generators::grid(6, 6);
    compare_correct_count_means("grid6x6 p=0.3 radio", &g, 0.3, Model::Radio);
}

#[test]
fn correct_counts_agree_on_path_at_high_p() {
    // A path maximizes chain depth (every edge is load-bearing), and
    // p = 0.6 exercises real per-phase failure mass.
    let g = generators::path(15);
    compare_correct_count_means("path15 p=0.6 mp", &g, 0.6, Model::Mp);
}

#[test]
fn correct_counts_agree_on_random_graph() {
    let g = generators::gnp_connected(120, 0.04, &mut SmallRng::seed_from_u64(5));
    compare_correct_count_means("gnp120 p=0.4 mp", &g, 0.4, Model::Mp);
}

#[test]
fn correct_counts_agree_on_star_radio() {
    // Star from the center: one internal node, so the success law is
    // the sharpest possible check on the per-phase geometric draw.
    let g = generators::star(12);
    compare_correct_count_means("star12 p=0.5 radio", &g, 0.5, Model::Radio);
}

#[test]
fn fault_free_engines_agree_exactly() {
    // At p = 0 no fault coin is ever drawn: all three executions are
    // deterministic and must agree per seed — every node correct, full
    // n · m schedule.
    for g in [
        generators::grid(5, 4),
        generators::path(12),
        generators::star(9),
        generators::gnp_connected(80, 0.04, &mut SmallRng::seed_from_u64(8)),
    ] {
        let m = chernoff::phase_len_omission(g.node_count().max(2), 0.0);
        let plan = SimplePlan::omission_with_p(&g, g.node(0), 0.0);
        assert_eq!(plan.phase_len(), m);
        let fast = FastSimple::new(&CsrGraph::from(&g), g.node(0), m);
        for seed in 0..10 {
            let out = fast.run(0.0, seed);
            assert!(out.complete());
            assert_eq!(out.completion_round(), Some(plan.total_rounds()));
            let mp = plan.run_mp(
                &g,
                FaultConfig::fault_free(),
                SilentMpAdversary,
                seed,
                SOURCE_BIT,
            );
            let radio = plan.run_radio(
                &g,
                FaultConfig::fault_free(),
                SilentRadioAdversary,
                seed,
                SOURCE_BIT,
            );
            assert_eq!(mp.rounds, plan.total_rounds());
            assert_eq!(radio.rounds, plan.total_rounds());
            for v in g.nodes() {
                assert_eq!(
                    mp.values[v.index()],
                    Some(SOURCE_BIT),
                    "n={}",
                    g.node_count()
                );
                assert_eq!(radio.values[v.index()], Some(SOURCE_BIT));
                assert!(out.is_correct(v));
            }
        }
    }
}

#[test]
fn scenario_level_simple_paths_agree() {
    // End to end through the Scenario layer: the same spec executed by
    // the forced fast path and by the trait-object engine (below the
    // auto-switch threshold) must produce matching success rates.
    let n = 100;
    let graph = GraphFamily::Gnp {
        n,
        avg_deg: 6,
        seed: 21,
    };
    assert!(n < SIMPLE_FAST_MIN_N, "must exercise the general engine");
    let p = 0.55;
    for model in [Model::Mp, Model::Radio] {
        let general = Scenario {
            graph,
            algorithm: Algorithm::Simple,
            model,
            fault: FaultConfig::omission(p),
            shards: ShardSpec::Auto,
        }
        .try_prepare()
        .expect("valid");
        assert!(!general.uses_fast_path());
        let fast = Scenario {
            graph,
            algorithm: Algorithm::SimpleFast { phase_len: None },
            model,
            fault: FaultConfig::omission(p),
            shards: ShardSpec::Auto,
        }
        .try_prepare()
        .expect("valid");
        assert!(fast.uses_fast_path());
        assert_eq!(general.phase_len(), fast.phase_len(), "same Theorem 2.1 m");
        assert_eq!(general.rounds(), fast.rounds());

        let rates = |prep: &randcast_core::scenario::PreparedScenario| {
            (0..TRIALS)
                .map(|seed| f64::from(u8::from(prep.trial(seed).success)))
                .collect::<Vec<f64>>()
        };
        let (g_rates, f_rates) = (rates(&general), rates(&fast));
        assert_means_close(
            &format!("scenario gnp{n} p={p} {model}"),
            &summarize(&g_rates),
            &summarize(&f_rates),
        );
    }
}
