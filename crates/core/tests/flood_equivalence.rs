//! Statistical equivalence of the bitset fast-path flood engine
//! (`randcast_engine::flood_fast`) and the general `MpNetwork` flood
//! (`randcast_core::flood::FloodPlan`).
//!
//! The two engines draw different RNG streams, so per-seed outcomes
//! differ; what must agree is the *distribution*: each round, each
//! informed node's transmitter works independently with probability
//! `1 − p` and informs all of its targets. These tests run ≥ 200
//! fixed-seed trials per engine per scenario and compare mean
//! completion rounds under a Welch-style confidence tolerance (4
//! standard errors — with fixed seeds the tests are deterministic, and
//! the margin makes the pinned draws comfortably interior).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use randcast_core::flood::{theorem_horizon, FloodPlan, FloodVariant};
use randcast_core::scenario::{
    Algorithm, GraphFamily, Model, Scenario, ShardSpec, FLOOD_FAST_MIN_N,
};
use randcast_engine::fault::FaultConfig;
use randcast_engine::flood_fast::{FastFlood, FastFloodVariant};
use randcast_graph::{generators, CsrGraph, Graph};

const TRIALS: u64 = 250;

struct Sample {
    mean: f64,
    var: f64,
    n: f64,
}

fn summarize(rounds: &[f64]) -> Sample {
    let n = rounds.len() as f64;
    let mean = rounds.iter().sum::<f64>() / n;
    let var = rounds.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
    Sample { mean, var, n }
}

/// Welch tolerance: |m₁ − m₂| within 4 standard errors (plus a hair for
/// degenerate zero-variance cases like p = 0).
fn assert_means_close(label: &str, a: &Sample, b: &Sample) {
    let se = (a.var / a.n + b.var / b.n).sqrt();
    let tol = 4.0 * se + 1e-9;
    assert!(
        (a.mean - b.mean).abs() <= tol,
        "{label}: mp mean {:.3} vs fast mean {:.3} (tol {:.3})",
        a.mean,
        b.mean,
        tol
    );
}

fn compare_engines(label: &str, g: &Graph, p: f64, variant: FloodVariant) {
    let source = g.node(0);
    // Generous horizon so effectively every trial completes and the
    // mean is over the same (full) support for both engines.
    let horizon = 3 * theorem_horizon(g, source, p) + 60;
    let mp_plan = FloodPlan::with_horizon(g, source, horizon, variant);
    let fast_variant = match variant {
        FloodVariant::Tree => FastFloodVariant::Tree,
        FloodVariant::Graph => FastFloodVariant::Graph,
    };
    let fast_plan = FastFlood::new(CsrGraph::from(g), source, horizon, fast_variant);

    let mp_rounds: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            mp_plan
                .run(g, FaultConfig::omission(p), seed)
                .completion_round()
                .unwrap_or_else(|| panic!("{label}: mp trial {seed} incomplete")) as f64
        })
        .collect();
    let fast_rounds: Vec<f64> = (0..TRIALS)
        .map(|seed| {
            let out = fast_plan.run(p, seed);
            assert!(
                (out.informed_fraction() - 1.0).abs() < 1e-12,
                "{label}: fast trial {seed} incomplete"
            );
            out.completion_round().expect("complete") as f64
        })
        .collect();
    assert_means_close(label, &summarize(&mp_rounds), &summarize(&fast_rounds));
}

#[test]
fn tree_flood_means_agree_on_grid() {
    let g = generators::grid(8, 8);
    compare_engines("grid8x8 p=0.3", &g, 0.3, FloodVariant::Tree);
}

#[test]
fn tree_flood_means_agree_on_path_at_high_p() {
    // p = 0.8 exercises the geometric-skip sampler against MpNetwork.
    let g = generators::path(30);
    compare_engines("path30 p=0.8", &g, 0.8, FloodVariant::Tree);
}

#[test]
fn tree_flood_means_agree_on_random_graph() {
    let g = generators::gnp_connected(300, 0.02, &mut SmallRng::seed_from_u64(5));
    compare_engines("gnp300 p=0.2", &g, 0.2, FloodVariant::Tree);
}

#[test]
fn graph_flood_means_agree_on_cycle() {
    let g = generators::cycle(60);
    compare_engines("cycle60 p=0.5 graph-variant", &g, 0.5, FloodVariant::Graph);
}

#[test]
fn fault_free_engines_agree_exactly() {
    // At p = 0 both engines are deterministic and must agree per seed,
    // not just in distribution.
    for g in [
        generators::grid(7, 9),
        generators::balanced_tree(3, 4),
        generators::gnp_connected(200, 0.03, &mut SmallRng::seed_from_u64(8)),
    ] {
        let source = g.node(0);
        let horizon = theorem_horizon(&g, source, 0.0);
        let mp = FloodPlan::with_horizon(&g, source, horizon, FloodVariant::Tree)
            .run(&g, FaultConfig::fault_free(), 3)
            .completion_round();
        let fast = FastFlood::new(CsrGraph::from(&g), source, horizon, FastFloodVariant::Tree)
            .run(0.0, 3)
            .completion_round();
        assert_eq!(mp, fast);
    }
}

#[test]
fn scenario_level_fast_and_general_floods_agree() {
    // End to end through the Scenario layer: the same spec executed by
    // the forced fast path and by the general engine (below the
    // auto-switch threshold) must produce matching mean times.
    let n = 400;
    let graph = GraphFamily::Gnp {
        n,
        avg_deg: 6,
        seed: 21,
    };
    assert!(n < FLOOD_FAST_MIN_N, "must exercise the general engine");
    let p = 0.4;
    let general = Scenario {
        graph,
        algorithm: Algorithm::Flood { horizon_scale: 3 },
        model: Model::Mp,
        fault: FaultConfig::omission(p),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid");
    assert!(!general.uses_fast_path());
    let fast = Scenario {
        graph,
        algorithm: Algorithm::FloodFast { horizon_scale: 3 },
        model: Model::Mp,
        fault: FaultConfig::omission(p),
        shards: ShardSpec::Auto,
    }
    .try_prepare()
    .expect("valid");
    assert!(fast.uses_fast_path());
    assert_eq!(general.rounds(), fast.rounds(), "same horizon prescription");

    let collect = |prep: &randcast_core::scenario::PreparedScenario| {
        (0..TRIALS)
            .map(|seed| {
                let out = prep.trial(seed);
                assert!(out.success, "trial {seed} incomplete");
                out.rounds.expect("completed trials report rounds")
            })
            .collect::<Vec<f64>>()
    };
    let (g_rounds, f_rounds) = (collect(&general), collect(&fast));
    assert_means_close(
        "scenario gnp400 p=0.4",
        &summarize(&g_rounds),
        &summarize(&f_rounds),
    );
}
