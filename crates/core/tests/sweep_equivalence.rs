//! Property test: the `Sweep` driver's outcome vectors are a pure
//! function of the root seed and the cell definitions — independent of
//! the worker-thread count. This is the harness's central determinism
//! guarantee (`--threads` must never change a result, only wall-clock).

use proptest::prelude::*;

use randcast_core::scenario::{Algorithm, GraphFamily, Model, Scenario, ShardSpec};
use randcast_core::sweep::{Sweep, TrialOutcome};
use randcast_engine::fault::FaultConfig;
use randcast_stats::seed::SeedSequence;

/// Builds the fixed scenario sweep used by the equivalence property:
/// one Simple-Omission cell per model, a timed Flood cell, and two
/// fast-path cells sharing one cached graph build — so the property
/// exercises cell-level parallelism, the per-family graph cache, and
/// the per-cell trial chunking all at once.
fn build_sweep(seed: u64, p: f64, trials: usize, threads: usize) -> Sweep<'static> {
    let mut sweep = Sweep::new("equivalence", SeedSequence::new(seed)).with_threads(threads);
    for model in [Model::Mp, Model::Radio] {
        sweep.scenario(
            Scenario {
                graph: GraphFamily::Grid(3, 4),
                algorithm: Algorithm::Simple,
                model,
                fault: FaultConfig::omission(p),
                shards: ShardSpec::Auto,
            },
            trials,
        );
    }
    sweep.scenario(
        Scenario {
            graph: GraphFamily::Path(9),
            algorithm: Algorithm::Flood { horizon_scale: 2 },
            model: Model::Mp,
            fault: FaultConfig::omission(p),
            shards: ShardSpec::Auto,
        },
        trials,
    );
    // Two cells over the same (family, seed): one shared graph build.
    let family = GraphFamily::Gnp {
        n: 40,
        avg_deg: 4,
        seed: 77,
    };
    for algorithm in [
        Algorithm::SimpleFast { phase_len: Some(3) },
        Algorithm::FloodFast { horizon_scale: 2 },
    ] {
        sweep
            .try_scenario(
                Scenario {
                    graph: family,
                    algorithm,
                    model: Model::Mp,
                    fault: FaultConfig::omission(p),
                    shards: ShardSpec::Auto,
                },
                trials,
            )
            .expect("valid scenario");
    }
    sweep
}

fn outcomes(seed: u64, p: f64, trials: usize, threads: usize) -> Vec<Vec<TrialOutcome>> {
    build_sweep(seed, p, trials, threads)
        .run()
        .cells
        .into_iter()
        .map(|c| c.outcomes)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn outcome_vectors_are_identical_for_threads_1_2_8(
        seed in any::<u64>(),
        p in 0.05f64..0.7,
        trials in 3usize..40,
    ) {
        let sequential = outcomes(seed, p, trials, 1);
        for threads in [2usize, 8] {
            let parallel = outcomes(seed, p, trials, threads);
            prop_assert_eq!(
                &parallel,
                &sequential,
                "threads={} diverged (seed={}, p={}, trials={})",
                threads,
                seed,
                p,
                trials
            );
        }
    }

    #[test]
    fn outcomes_depend_on_the_root_seed(
        seed in any::<u64>(),
    ) {
        // Sanity companion: the determinism above is not because the
        // sweep ignores its seed.
        let a = outcomes(seed, 0.5, 24, 2);
        let b = outcomes(seed.wrapping_add(1), 0.5, 24, 2);
        prop_assert_ne!(a, b);
    }
}
