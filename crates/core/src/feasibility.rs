//! The paper's feasibility landscape (Theorems 2.1–2.4).
//!
//! | model | omission | malicious |
//! |-------|----------|-----------|
//! | message passing | feasible ∀ `p < 1` | feasible **iff** `p < 1/2` |
//! | radio | feasible ∀ `p < 1` | feasible **iff** `p < (1 − p)^{Δ+1}` |
//!
//! The radio threshold `p*(Δ)` — the unique fixed point of
//! `p = (1 − p)^{Δ+1}` in `(0, 1)` — is computed by [`radio_threshold`].

/// Whether almost-safe broadcast with node-omission failures is feasible
/// (Theorem 2.1): any `p < 1`, in both models.
#[must_use]
pub fn omission_feasible(p: f64) -> bool {
    (0.0..1.0).contains(&p)
}

/// Whether almost-safe broadcast with malicious failures is feasible in
/// the message-passing model (Theorems 2.2–2.3): iff `p < 1/2`.
#[must_use]
pub fn malicious_mp_feasible(p: f64) -> bool {
    (0.0..0.5).contains(&p)
}

/// Whether almost-safe broadcast with malicious failures is feasible in
/// the radio model on a graph of maximum degree `Δ` (Theorem 2.4):
/// iff `p < (1 − p)^{Δ+1}`.
#[must_use]
pub fn malicious_radio_feasible(p: f64, max_degree: usize) -> bool {
    (0.0..1.0).contains(&p) && p < (1.0 - p).powi(max_degree as i32 + 1)
}

/// The radio feasibility threshold `p*(Δ)`: the unique solution of
/// `p = (1 − p)^{Δ+1}` in `(0, 1)`, computed by bisection to absolute
/// precision `1e-12`.
///
/// Malicious radio broadcast is feasible for `p < p*(Δ)` and infeasible
/// for `p ≥ p*(Δ)`. The threshold decreases in `Δ` (denser neighborhoods
/// give the jamming adversary more leverage): `p*(0) = 1/2` exactly
/// (matching the two-node message-passing threshold, where the
/// neighborhood argument degenerates), `p*(1) = (3 − √5)/2 ≈ 0.382`, and
/// `p*(Δ) → 0` as `Δ → ∞`.
///
/// # Example
///
/// ```
/// use randcast_core::feasibility::{malicious_radio_feasible, radio_threshold};
///
/// let t = radio_threshold(4);
/// assert!(malicious_radio_feasible(t - 1e-6, 4));
/// assert!(!malicious_radio_feasible(t + 1e-6, 4));
/// ```
#[must_use]
pub fn radio_threshold(max_degree: usize) -> f64 {
    // f(p) = (1-p)^{Δ+1} - p is strictly decreasing on [0,1],
    // f(0) = 1 > 0, f(1) = -1 < 0: unique root.
    let exponent = max_degree as i32 + 1;
    let f = |p: f64| (1.0 - p).powi(exponent) - p;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while hi - lo > 1e-12 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The per-step clean-reception probability `q = (1 − p)^{Δ+1}` from the
/// Theorem 2.4 analysis: all of `v`'s neighbors plus `v` itself must be
/// fault-free for `v` to be guaranteed a clean, correct reception.
#[must_use]
pub fn radio_clean_reception_prob(p: f64, max_degree: usize) -> f64 {
    (1.0 - p).powi(max_degree as i32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omission_feasibility_boundaries() {
        assert!(omission_feasible(0.0));
        assert!(omission_feasible(0.999));
        assert!(!omission_feasible(1.0));
        assert!(!omission_feasible(-0.1));
    }

    #[test]
    fn mp_malicious_threshold_is_half() {
        assert!(malicious_mp_feasible(0.499));
        assert!(!malicious_mp_feasible(0.5));
        assert!(!malicious_mp_feasible(0.75));
    }

    #[test]
    fn radio_threshold_is_fixed_point() {
        for delta in [0usize, 1, 2, 4, 8, 16, 64] {
            let t = radio_threshold(delta);
            let rhs = (1.0 - t).powi(delta as i32 + 1);
            assert!((t - rhs).abs() < 1e-9, "Δ={delta}: {t} vs {rhs}");
        }
    }

    #[test]
    fn radio_threshold_delta_zero_is_half() {
        // p = (1-p)^1 has solution exactly 1/2.
        assert!((radio_threshold(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn radio_threshold_decreases_with_degree() {
        let mut last = radio_threshold(0);
        for delta in 1..20 {
            let t = radio_threshold(delta);
            assert!(t < last, "Δ={delta}");
            last = t;
        }
    }

    #[test]
    fn radio_feasibility_agrees_with_threshold() {
        for delta in [1usize, 3, 7] {
            let t = radio_threshold(delta);
            assert!(malicious_radio_feasible(t - 1e-6, delta));
            assert!(!malicious_radio_feasible(t + 1e-6, delta));
        }
    }

    #[test]
    fn radio_threshold_known_value_delta_one() {
        // p = (1-p)^2 => p^2 - 3p + 1 = 0 => p = (3 - sqrt(5))/2 ≈ 0.381966.
        let expect = (3.0 - 5.0f64.sqrt()) / 2.0;
        assert!((radio_threshold(1) - expect).abs() < 1e-9);
    }

    #[test]
    fn clean_reception_prob_matches_formula() {
        let q = radio_clean_reception_prob(0.2, 3);
        assert!((q - 0.8f64.powi(4)).abs() < 1e-12);
    }
}
