//! `Omission-Radio` and `Malicious-Radio` (Theorem 3.4): almost-safe radio
//! broadcast in `O(opt · log n)` rounds.
//!
//! Take any fault-free broadcast schedule `A` (of length `opt` when
//! optimal). Repeat each round `i` of `A` as a *series* `S_i` of
//! `m = ⌈c log n⌉` consecutive rounds. A node `v` that receives the
//! message from `p(v)` in round `i` of `A` instead listens during the
//! whole series `S_i` and sets its value `M_v` to
//!
//! * **any** bit received during `S_i` (`Omission-Radio`, any `p < 1`), or
//! * the **majority** bit over `S_i`, default `0`
//!   (`Malicious-Radio`, feasible when `p < (1 − p)^{Δ+1}`).
//!
//! In later series where `v` is scheduled to transmit, it transmits `M_v`.

use randcast_engine::fault::FaultConfig;
use randcast_engine::radio::{RadioAction, RadioAdversary, RadioNetwork, RadioNode};
use randcast_graph::{Graph, NodeId};
use randcast_stats::chernoff;

use crate::radio_sched::RadioSchedule;
use crate::simple::{BroadcastOutcome, VoteMode};

/// A compiled robust radio plan: the base schedule expanded `m`-fold.
#[derive(Clone, Debug)]
pub struct ExpandedPlan {
    /// Base rounds in which each node transmits.
    transmit_rounds: Vec<Vec<usize>>,
    /// Base round in which each node listens for its message (`None` for
    /// the source).
    listen_round: Vec<Option<usize>>,
    source: NodeId,
    mode: VoteMode,
    m: usize,
    base_len: usize,
}

impl ExpandedPlan {
    /// `Omission-Radio`: series length `m = ⌈2 ln n / ln(1/p)⌉`, any-bit
    /// vote.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid for `(graph, source)` or
    /// `p ∉ [0, 1)`.
    #[must_use]
    pub fn omission(graph: &Graph, source: NodeId, base: &RadioSchedule, p: f64) -> Self {
        let m = chernoff::phase_len_omission(graph.node_count().max(2), p);
        Self::with_phase_len(graph, source, base, m, VoteMode::Any)
    }

    /// `Malicious-Radio`: series length from the `(1 − p)^{Δ+1} − p`
    /// margin, majority vote.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ (1 − p)^{Δ+1}` or the schedule is invalid.
    #[must_use]
    pub fn malicious(graph: &Graph, source: NodeId, base: &RadioSchedule, p: f64) -> Self {
        let m =
            chernoff::phase_len_malicious_radio(graph.node_count().max(2), p, graph.max_degree());
        Self::with_phase_len(graph, source, base, m, VoteMode::Majority)
    }

    /// Expansion with an explicit series length (ablation entry point).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or the base schedule does not validate.
    #[must_use]
    pub fn with_phase_len(
        graph: &Graph,
        source: NodeId,
        base: &RadioSchedule,
        m: usize,
        mode: VoteMode,
    ) -> Self {
        assert!(m > 0, "series length must be positive");
        base.validate(graph, source)
            .expect("base schedule must be a valid fault-free broadcast schedule");
        let n = graph.node_count();
        let mut transmit_rounds = vec![Vec::new(); n];
        for (t, set) in base.rounds().iter().enumerate() {
            for &u in set {
                transmit_rounds[u.index()].push(t);
            }
        }
        let listen_round = base
            .reception_map(graph, source)
            .into_iter()
            .map(|r| r.map(|(t, _)| t))
            .collect();
        ExpandedPlan {
            transmit_rounds,
            listen_round,
            source,
            mode,
            m,
            base_len: base.len(),
        }
    }

    /// The series length `m`.
    #[must_use]
    pub fn phase_len(&self) -> usize {
        self.m
    }

    /// Total expanded rounds: `|A| · m`.
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.base_len * self.m
    }

    /// Executes the expanded schedule in the radio model.
    pub fn run<A: RadioAdversary<bool>>(
        &self,
        graph: &Graph,
        fault: FaultConfig,
        adversary: A,
        seed: u64,
        source_bit: bool,
    ) -> BroadcastOutcome {
        let mut net = RadioNetwork::with_adversary(graph, fault, adversary, seed, |v| {
            let is_source = v == self.source;
            ExpandedNode {
                transmit_rounds: self.transmit_rounds[v.index()].clone(),
                listen_round: self.listen_round[v.index()],
                m: self.m,
                mode: self.mode,
                value: is_source.then_some(source_bit),
                decided: is_source,
                votes: Vec::new(),
            }
        });
        net.run(self.total_rounds());
        // Finalize nodes whose listening series was the last base round:
        // their vote is still pending when the schedule ends.
        for v in graph.nodes() {
            net.node_mut(v).maybe_decide(self.total_rounds());
        }
        BroadcastOutcome {
            values: graph.nodes().map(|v| net.node(v).value).collect(),
            rounds: self.total_rounds(),
        }
    }
}

/// Automaton for one node of the expanded schedule.
#[derive(Clone, Debug)]
struct ExpandedNode {
    transmit_rounds: Vec<usize>,
    listen_round: Option<usize>,
    m: usize,
    mode: VoteMode,
    value: Option<bool>,
    decided: bool,
    votes: Vec<bool>,
}

impl ExpandedNode {
    fn base_round(&self, round: usize) -> usize {
        round / self.m
    }

    /// Finalize the vote once the listening series has passed.
    fn maybe_decide(&mut self, round: usize) {
        if self.decided {
            return;
        }
        let Some(listen) = self.listen_round else {
            return;
        };
        if self.base_round(round) > listen {
            let ones = self.votes.iter().filter(|&&b| b).count();
            self.value = Some(match self.mode {
                // Any-bit: with omission faults every received bit is the
                // truth; `votes` nonempty iff something was heard.
                VoteMode::Any => self.votes.first().copied().unwrap_or(false),
                VoteMode::Majority => 2 * ones > self.votes.len(),
            });
            self.decided = true;
        }
    }
}

impl RadioNode for ExpandedNode {
    type Msg = bool;

    fn act(&mut self, round: usize) -> RadioAction<bool> {
        self.maybe_decide(round);
        let base = self.base_round(round);
        if self.transmit_rounds.binary_search(&base).is_ok() {
            RadioAction::Transmit(self.value.unwrap_or(false))
        } else {
            RadioAction::Listen
        }
    }

    fn recv(&mut self, round: usize, heard: Option<bool>) {
        let Some(listen) = self.listen_round else {
            return;
        };
        if self.base_round(round) == listen && !self.decided {
            if let Some(bit) = heard {
                self.votes.push(bit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio_sched::{greedy_schedule, path_schedule};
    use randcast_engine::adversary::{JamRadioAdversary, LieOrJamAdversary};
    use randcast_engine::radio::SilentRadioAdversary;
    use randcast_graph::generators;

    #[test]
    fn fault_free_expansion_reproduces_base_schedule() {
        let g = generators::path(4);
        let base = path_schedule(4);
        let plan = ExpandedPlan::with_phase_len(&g, g.node(0), &base, 3, VoteMode::Any);
        assert_eq!(plan.total_rounds(), 12);
        let out = plan.run(&g, FaultConfig::fault_free(), SilentRadioAdversary, 0, true);
        assert!(out.all_correct(true));
    }

    #[test]
    fn omission_expansion_succeeds_at_high_p() {
        let g = generators::path(6);
        let base = path_schedule(6);
        let p = 0.5;
        let plan = ExpandedPlan::omission(&g, g.node(0), &base, p);
        let mut ok = 0;
        for seed in 0..20 {
            let out = plan.run(
                &g,
                FaultConfig::omission(p),
                SilentRadioAdversary,
                seed,
                true,
            );
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 18, "ok={ok}");
    }

    #[test]
    fn malicious_expansion_survives_jamming_below_threshold() {
        // Path: Δ = 2, threshold p*(2) ≈ 0.276; take p = 0.05.
        let g = generators::path(5);
        let base = path_schedule(5);
        let p = 0.05;
        let plan = ExpandedPlan::malicious(&g, g.node(0), &base, p);
        let mut ok = 0;
        for seed in 0..20 {
            let out = plan.run(
                &g,
                FaultConfig::malicious(p),
                JamRadioAdversary::new(false),
                seed,
                true,
            );
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 18, "ok={ok}");
    }

    #[test]
    fn malicious_expansion_survives_lie_or_jam_below_threshold() {
        let g = generators::path(4);
        let base = path_schedule(4);
        let p = 0.05;
        let plan = ExpandedPlan::malicious(&g, g.node(0), &base, p);
        let mut ok = 0;
        for seed in 0..20 {
            let out = plan.run(
                &g,
                FaultConfig::malicious(p),
                LieOrJamAdversary::new(true),
                seed,
                true,
            );
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 18, "ok={ok}");
    }

    #[test]
    fn works_with_greedy_schedules_on_gm() {
        let g = generators::lower_bound_graph(3);
        let base = greedy_schedule(&g, g.node(0));
        let p = 0.3;
        let plan = ExpandedPlan::omission(&g, g.node(0), &base, p);
        let mut ok = 0;
        for seed in 0..10 {
            let out = plan.run(
                &g,
                FaultConfig::omission(p),
                SilentRadioAdversary,
                seed,
                true,
            );
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 9, "ok={ok}");
    }

    #[test]
    fn any_vote_breaks_under_flip_majority_survives() {
        // Ablation A1: under a flip adversary, Omission-Radio's any-vote
        // adopts the first lie it hears; Malicious-Radio's majority
        // tolerates it (p far below threshold).
        use randcast_engine::adversary::FlipRadioAdversary;
        let g = generators::path(3);
        let base = path_schedule(3);
        let p = 0.10;
        let any = ExpandedPlan::with_phase_len(&g, g.node(0), &base, 21, VoteMode::Any);
        let maj = ExpandedPlan::with_phase_len(&g, g.node(0), &base, 21, VoteMode::Majority);
        let mut any_ok = 0;
        let mut maj_ok = 0;
        for seed in 0..60 {
            let a = any.run(
                &g,
                FaultConfig::malicious(p),
                FlipRadioAdversary,
                seed,
                true,
            );
            let m = maj.run(
                &g,
                FaultConfig::malicious(p),
                FlipRadioAdversary,
                seed,
                true,
            );
            any_ok += usize::from(a.all_correct(true));
            maj_ok += usize::from(m.all_correct(true));
        }
        assert!(maj_ok >= 55, "majority should survive: {maj_ok}");
        assert!(
            any_ok < maj_ok,
            "any-vote should do worse: any={any_ok} maj={maj_ok}"
        );
    }

    #[test]
    #[should_panic(expected = "valid fault-free broadcast schedule")]
    fn rejects_invalid_base_schedule() {
        let g = generators::path(4);
        let base = path_schedule(2); // incomplete for a length-4 path
        let _ = ExpandedPlan::with_phase_len(&g, g.node(0), &base, 3, VoteMode::Any);
    }
}
