//! `Flood-Omission` (Theorem 3.1): optimal-time `O(D + log n)` broadcast
//! under node-omission failures in the message-passing model.
//!
//! Following the paper's adaptation of Diks–Pelc (Lemma 3.1): build a BFS
//! spanning tree of depth `D` and let every informed node transmit to its
//! children simultaneously in every step for `O(D + log n)` steps. Along
//! each root-to-leaf branch the message front advances one hop whenever
//! the frontier node's transmitter works, so completion time is a sum of
//! geometric delays that concentrates at `O(D)`; the `+ log n` in the
//! horizon buys a per-branch Chernoff exponent strong enough to
//! union-bound over all branches.
//!
//! The module also offers full-graph flooding ([`FloodVariant::Graph`]),
//! which dominates tree flooding (more disjoint paths) — an ablation, not
//! part of the paper's analysis.

use randcast_engine::adversary::FlipMpAdversary;
use randcast_engine::fault::{FaultConfig, FaultKind};
use randcast_engine::mp::{MpNetwork, MpNode, Outgoing};
use randcast_graph::{traversal, Graph, NodeId, SpanningTree};
use randcast_stats::chernoff;

/// Which edges carry the flood.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FloodVariant {
    /// Transmit only to spanning-tree children (the paper's analyzed
    /// algorithm).
    Tree,
    /// Transmit to all neighbors (dominates tree flooding; ablation).
    Graph,
}

/// Outcome of one flooding execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FloodOutcome {
    /// Round (1-based: "informed by end of round r") at which each node
    /// first became informed; `None` if never. The source is `Some(0)`.
    pub informed_at: Vec<Option<usize>>,
    /// The horizon that was run.
    pub rounds: usize,
}

impl FloodOutcome {
    /// Whether every node was informed within the horizon.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.informed_at.iter().all(Option::is_some)
    }

    /// The broadcast completion time: the round by which the last node
    /// was informed (`None` if incomplete).
    #[must_use]
    pub fn completion_round(&self) -> Option<usize> {
        self.informed_at
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()
            .map(|rs| rs.into_iter().max().unwrap_or(0))
    }

    /// Number of informed nodes.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed_at.iter().filter(|r| r.is_some()).count()
    }
}

/// The Theorem 3.1 horizon `τ = ⌈2(D + 4 ln n)/(1 − p)⌉ = O(D + log n)`
/// for flooding `graph` from `source` under failure probability `p`:
/// per-branch failure `≤ 1/n²`, hence overall failure `≤ 1/n`.
///
/// Defined on graphs disconnected from the source (`D` is the radius of
/// the source's component) so the fast-path engine can use it in the
/// almost-complete broadcast regime.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1)`.
#[must_use]
pub fn theorem_horizon(graph: &Graph, source: NodeId, p: f64) -> usize {
    let d = traversal::reachable_radius(graph, source);
    let n = graph.node_count().max(2);
    chernoff::flood_horizon(d, p, 4.0 * (n as f64).ln()).max(1)
}

/// A compiled flooding plan: spanning tree plus horizon.
#[derive(Clone, Debug)]
pub struct FloodPlan {
    children: Vec<Vec<NodeId>>,
    neighbors: Vec<Vec<NodeId>>,
    source: NodeId,
    horizon: usize,
    variant: FloodVariant,
}

impl FloodPlan {
    /// Plan with the Theorem 3.1 horizon
    /// `τ = ⌈2(D + 4 ln n)/(1 − p)⌉ = O(D + log n)`:
    /// per-branch failure `≤ 1/n²`, hence overall failure `≤ 1/n`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or the graph is disconnected from `source`.
    #[must_use]
    pub fn new(graph: &Graph, source: NodeId, p: f64) -> Self {
        let horizon = theorem_horizon(graph, source, p);
        Self::with_horizon(graph, source, horizon, FloodVariant::Tree)
    }

    /// Plan with an explicit horizon and flood variant (ablations and
    /// time-measurement experiments).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected from `source`.
    #[must_use]
    pub fn with_horizon(
        graph: &Graph,
        source: NodeId,
        horizon: usize,
        variant: FloodVariant,
    ) -> Self {
        let tree = SpanningTree::bfs(graph, source);
        FloodPlan {
            children: graph.nodes().map(|v| tree.children(v).to_vec()).collect(),
            neighbors: graph.nodes().map(|v| graph.neighbors(v).to_vec()).collect(),
            source,
            horizon,
            variant,
        }
    }

    /// The horizon (number of rounds executed).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Executes the flood in the message-passing model, reporting per-node
    /// informing times. Runs up to the horizon, stopping early once every
    /// node is informed — further rounds cannot change any `informed_at`,
    /// so the outcome is identical to running the full horizon.
    ///
    /// Under [`FaultKind::Omission`] a faulty transmitter is silent for
    /// the step. Under the malicious kinds the flood faces the Theorem
    /// 2.3 flip adversary ([`FlipMpAdversary`]): deliveries always happen
    /// on the fault-free schedule, but a faulty transmitter sends the
    /// complement of its adopted bit, and a node conjoins every bit
    /// delivered in its informing round. `informed_at` then records
    /// *correct* informing times — a node that adopted a corrupted bit is
    /// reported as never informed, matching the correct-set semantics of
    /// the fast kernels.
    #[must_use]
    pub fn run(&self, graph: &Graph, fault: FaultConfig, seed: u64) -> FloodOutcome {
        if fault.kind == FaultKind::Omission {
            self.run_omission(graph, fault, seed)
        } else {
            self.run_malicious(graph, fault, seed)
        }
    }

    fn targets_of(&self, v: NodeId) -> Vec<NodeId> {
        match self.variant {
            FloodVariant::Tree => self.children[v.index()].clone(),
            FloodVariant::Graph => self.neighbors[v.index()].clone(),
        }
    }

    fn run_omission(&self, graph: &Graph, fault: FaultConfig, seed: u64) -> FloodOutcome {
        let mut net = MpNetwork::new(graph, fault, seed, |v| FloodNode {
            targets: self.targets_of(v),
            informed_at: (v == self.source).then_some(0),
        });
        for _ in 0..self.horizon {
            net.step();
            if net.nodes().all(|node| node.informed_at.is_some()) {
                break;
            }
        }
        FloodOutcome {
            informed_at: graph.nodes().map(|v| net.node(v).informed_at).collect(),
            rounds: self.horizon,
        }
    }

    fn run_malicious(&self, graph: &Graph, fault: FaultConfig, seed: u64) -> FloodOutcome {
        let mut net =
            MpNetwork::with_adversary(graph, fault, FlipMpAdversary, seed, |v| FloodValueNode {
                targets: self.targets_of(v),
                informed_at: (v == self.source).then_some(0),
                value: true,
            });
        for _ in 0..self.horizon {
            net.step();
            if net.nodes().all(|node| node.informed_at.is_some()) {
                break;
            }
        }
        FloodOutcome {
            informed_at: graph
                .nodes()
                .map(|v| {
                    let node = net.node(v);
                    node.informed_at.filter(|_| node.value)
                })
                .collect(),
            rounds: self.horizon,
        }
    }
}

/// Flooding automaton: once informed, transmit to targets every round.
#[derive(Clone, Debug)]
struct FloodNode {
    targets: Vec<NodeId>,
    informed_at: Option<usize>,
}

impl MpNode for FloodNode {
    type Msg = bool;

    fn send(&mut self, _round: usize) -> Outgoing<bool> {
        if self.informed_at.is_some() && !self.targets.is_empty() {
            Outgoing::Directed(self.targets.iter().map(|&c| (c, true)).collect())
        } else {
            Outgoing::Silent
        }
    }

    fn recv(&mut self, round: usize, _from: NodeId, _msg: bool) {
        if self.informed_at.is_none() {
            self.informed_at = Some(round + 1);
        }
    }
}

/// Value-carrying flooding automaton for the malicious kinds: once
/// informed, relay the adopted bit to targets every round. All bits
/// delivered in the informing round are conjoined, so one corrupted
/// parent-level transmitter poisons the node; bits delivered after the
/// informing round are ignored (the adopted value is final).
#[derive(Clone, Debug)]
struct FloodValueNode {
    targets: Vec<NodeId>,
    informed_at: Option<usize>,
    value: bool,
}

impl MpNode for FloodValueNode {
    type Msg = bool;

    fn send(&mut self, _round: usize) -> Outgoing<bool> {
        if self.informed_at.is_some() && !self.targets.is_empty() {
            Outgoing::Directed(self.targets.iter().map(|&c| (c, self.value)).collect())
        } else {
            Outgoing::Silent
        }
    }

    fn recv(&mut self, round: usize, _from: NodeId, msg: bool) {
        match self.informed_at {
            None => {
                self.informed_at = Some(round + 1);
                self.value = msg;
            }
            Some(at) if at == round + 1 => self.value &= msg,
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::generators;

    #[test]
    fn fault_free_flood_takes_exactly_d_rounds() {
        let g = generators::path(7);
        let plan = FloodPlan::with_horizon(&g, g.node(0), 10, FloodVariant::Tree);
        let out = plan.run(&g, FaultConfig::fault_free(), 0);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(7));
        // Node i informed exactly at round i.
        for i in 0..=7 {
            assert_eq!(out.informed_at[i], Some(i));
        }
    }

    #[test]
    fn default_horizon_suffices_with_high_probability() {
        let g = generators::grid(5, 5);
        let p = 0.4;
        let plan = FloodPlan::new(&g, g.node(0), p);
        let mut complete = 0;
        for seed in 0..20 {
            if plan.run(&g, FaultConfig::omission(p), seed).complete() {
                complete += 1;
            }
        }
        assert_eq!(complete, 20, "horizon {} too short", plan.horizon());
    }

    #[test]
    fn short_horizon_fails() {
        let g = generators::path(20);
        // Horizon 5 cannot inform a node at distance 20.
        let plan = FloodPlan::with_horizon(&g, g.node(0), 5, FloodVariant::Tree);
        let out = plan.run(&g, FaultConfig::fault_free(), 0);
        assert!(!out.complete());
        assert_eq!(out.informed_count(), 6);
        assert_eq!(out.completion_round(), None);
    }

    #[test]
    fn graph_variant_dominates_tree_variant_on_cycle() {
        // On a cycle, the BFS tree cuts one edge; graph flooding uses
        // both directions and should never be slower.
        let g = generators::cycle(9);
        for seed in 0..10 {
            let tree = FloodPlan::with_horizon(&g, g.node(0), 60, FloodVariant::Tree).run(
                &g,
                FaultConfig::omission(0.5),
                seed,
            );
            let graph = FloodPlan::with_horizon(&g, g.node(0), 60, FloodVariant::Graph).run(
                &g,
                FaultConfig::omission(0.5),
                seed,
            );
            if let (Some(t), Some(gr)) = (tree.completion_round(), graph.completion_round()) {
                assert!(gr <= t, "seed={seed}: graph {gr} vs tree {t}");
            }
        }
    }

    #[test]
    fn horizon_scales_like_d_plus_log_n() {
        // Doubling D roughly doubles the horizon; fixed p.
        let g1 = generators::path(50);
        let g2 = generators::path(100);
        let h1 = FloodPlan::new(&g1, g1.node(0), 0.2).horizon();
        let h2 = FloodPlan::new(&g2, g2.node(0), 0.2).horizon();
        assert!(h2 > h1);
        assert!((h2 as f64) < 2.5 * h1 as f64);
    }

    #[test]
    fn malicious_at_p_zero_matches_omission_exactly() {
        // With no faults the flip adversary never fires, and every node
        // adopts the true bit — the correct-set outcome coincides with
        // the omission outcome per seed.
        let g = generators::grid(4, 4);
        for variant in [FloodVariant::Tree, FloodVariant::Graph] {
            let plan = FloodPlan::with_horizon(&g, g.node(0), 30, variant);
            for seed in 0..5 {
                let omission = plan.run(&g, FaultConfig::fault_free(), seed);
                let malicious = plan.run(&g, FaultConfig::malicious(0.0), seed);
                assert_eq!(omission, malicious, "variant {variant:?} seed {seed}");
            }
        }
    }

    #[test]
    fn flip_adversary_poisons_but_never_slows() {
        // Under the flip adversary deliveries always succeed, so every
        // node hears *something* on the fault-free BFS schedule: each
        // reported informing time is exactly the node's BFS depth, with
        // poisoned nodes reported as never (correctly) informed.
        let g = generators::path(6);
        let plan = FloodPlan::with_horizon(&g, g.node(0), 20, FloodVariant::Tree);
        let mut poisoned = 0usize;
        for seed in 0..20 {
            let out = plan.run(&g, FaultConfig::malicious(0.5), seed);
            assert_eq!(out.informed_at[0], Some(0));
            for (i, at) in out.informed_at.iter().enumerate() {
                match at {
                    Some(r) => assert_eq!(*r, i, "seed {seed}"),
                    None => poisoned += 1,
                }
            }
        }
        assert!(poisoned > 0, "p = 0.5 never corrupted a relay");
    }

    #[test]
    fn malicious_flood_is_deterministic_given_seed() {
        let g = generators::grid(4, 4);
        let plan = FloodPlan::with_horizon(&g, g.node(0), 30, FloodVariant::Graph);
        let a = plan.run(&g, FaultConfig::limited_malicious(0.3), 7);
        let b = plan.run(&g, FaultConfig::limited_malicious(0.3), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn outcome_on_single_node() {
        let g = generators::path(0);
        let plan = FloodPlan::with_horizon(&g, g.node(0), 1, FloodVariant::Tree);
        let out = plan.run(&g, FaultConfig::fault_free(), 0);
        assert!(out.complete());
        assert_eq!(out.completion_round(), Some(0));
    }
}
