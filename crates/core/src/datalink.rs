//! Single-link protocols and the Theorem 2.3 impossibility harness
//! (§2.2.2).
//!
//! Two results live here:
//!
//! * **The even/odd "hello" protocol** ([`run_hello`]): under *limited*
//!   malicious failures (no speaking out of turn), a sender can transmit
//!   one bit to a receiver for **any** `p < 1`, by encoding the bit in the
//!   *timing pattern* of transmissions — `M = 0` ⇒ transmit every step of
//!   `1..2m`; `M = 1` ⇒ transmit only the even steps. The receiver
//!   outputs 0 iff it heard transmissions in two consecutive steps.
//!   `M = 1` is decoded correctly *always*; `M = 0` fails only if no two
//!   consecutive transmissions survive, probability `e^{−Θ(m)}`.
//!
//! * **The Theorem 2.3 adversary** ([`run_two_node_majority`]): with full
//!   malicious failures and `p ≥ 1/2`, no algorithm beats success 1/2 on
//!   the two-node graph. We demonstrate it on the natural
//!   repetition-with-majority receiver against the flip adversary, with
//!   the paper's throttling reduction applied for `p > 1/2`.

use randcast_engine::adversary::{FlipMpAdversary, Throttled};
use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::{MpNetwork, MpNode, Outgoing, SilentMpAdversary};
use randcast_graph::{generators, NodeId};

/// Sender for the even/odd "hello" protocol. The message *content* is
/// irrelevant; only presence matters.
#[derive(Clone, Debug)]
struct HelloSender {
    bit: bool,
    m: usize,
}

impl MpNode for HelloSender {
    type Msg = bool;

    fn send(&mut self, round: usize) -> Outgoing<bool> {
        // Paper steps are 1-based: step = round + 1 ∈ 1..=2m.
        let step = round + 1;
        if step > 2 * self.m {
            return Outgoing::Silent;
        }
        let speak = if self.bit {
            step.is_multiple_of(2)
        } else {
            true
        };
        if speak {
            Outgoing::Broadcast(true) // "hello"
        } else {
            Outgoing::Silent
        }
    }

    fn recv(&mut self, _round: usize, _from: NodeId, _msg: bool) {}
}

/// Receiver: decodes 0 iff transmissions arrived in two consecutive
/// steps.
#[derive(Clone, Debug, Default)]
struct HelloReceiver {
    prev_heard: bool,
    heard_this_round: bool,
    saw_consecutive: bool,
}

impl HelloReceiver {
    /// Marks a delivery in the current round.
    fn note_heard(&mut self) {
        self.heard_this_round = true;
    }

    /// Folds the completed round into the consecutive-pair detector.
    /// Called at the next round's start (the engine calls `send` before
    /// any delivery of the new round).
    fn roll_round(&mut self) {
        if self.prev_heard && self.heard_this_round {
            self.saw_consecutive = true;
        }
        self.prev_heard = self.heard_this_round;
        self.heard_this_round = false;
    }

    fn decode(&self) -> bool {
        // The final round's pair is still pending when the run stops.
        let pending = self.prev_heard && self.heard_this_round;
        // Two consecutive transmissions ⇒ 0 (false), else 1 (true).
        !(self.saw_consecutive || pending)
    }
}

/// Runs the even/odd protocol over one unreliable link for `2m` steps
/// under limited-malicious faults (the worst adversary drops every faulty
/// transmission — content corruption is harmless since only presence is
/// decoded). Returns whether the receiver decoded `bit` correctly.
///
/// # Panics
///
/// Panics if `m == 0` or `p ∉ [0, 1)`.
#[must_use]
pub fn run_hello(m: usize, p: f64, bit: bool, seed: u64) -> bool {
    assert!(m > 0, "need at least one step pair");
    let g = generators::path(1);
    let mut net = MpNetwork::with_adversary(
        &g,
        FaultConfig::limited_malicious(p),
        SilentMpAdversary, // faulty sends dropped: the worst case here
        seed,
        |v| {
            if v.index() == 0 {
                HelloLink::Sender(HelloSender { bit, m })
            } else {
                HelloLink::Receiver(HelloReceiver::default())
            }
        },
    );
    net.run(2 * m);
    match net.node(g.node(1)) {
        HelloLink::Receiver(r) => r.decode() == bit,
        HelloLink::Sender(_) => unreachable!("node 1 is the receiver"),
    }
}

/// Either endpoint of the datalink.
#[derive(Clone, Debug)]
enum HelloLink {
    Sender(HelloSender),
    Receiver(HelloReceiver),
}

impl MpNode for HelloLink {
    type Msg = bool;

    fn send(&mut self, round: usize) -> Outgoing<bool> {
        match self {
            HelloLink::Sender(s) => s.send(round),
            HelloLink::Receiver(r) => {
                // `send` marks the round boundary: fold the last round's
                // observation into the consecutive-pair detector.
                r.roll_round();
                Outgoing::Silent
            }
        }
    }

    fn recv(&mut self, round: usize, from: NodeId, msg: bool) {
        match self {
            HelloLink::Sender(s) => s.recv(round, from, msg),
            HelloLink::Receiver(r) => r.note_heard(),
        }
    }
}

/// The analytic error bound for `M = 0`: probability that no two
/// consecutive steps out of `2m` both deliver, each step delivering
/// independently with probability `1 − p`. Computed by the linear
/// recurrence over "no two consecutive successes" strings.
#[must_use]
pub fn hello_error_bound(m: usize, p: f64) -> f64 {
    // f(k): probability that a length-k Bernoulli(1-p) string has no two
    // consecutive successes. Conditioning on the first step:
    // f(k) = p·f(k-1) + (1-p)·p·f(k-2), with f(0) = f(1) = 1.
    let steps = 2 * m;
    let q = 1.0 - p;
    let (mut f_prev, mut f_cur) = (1.0f64, 1.0f64);
    for _ in 2..=steps {
        let f_next = p * f_cur + q * p * f_prev;
        f_prev = f_cur;
        f_cur = f_next;
    }
    f_cur
}

// ---------------------------------------------------------------------------
// Theorem 2.3 harness
// ---------------------------------------------------------------------------

/// Sender of the repetition code: broadcasts `bit` every round.
#[derive(Clone, Debug)]
struct RepSender {
    bit: bool,
}

/// Receiver: majority over all received bits.
#[derive(Clone, Debug, Default)]
struct RepReceiver {
    ones: usize,
    total: usize,
}

/// Either endpoint of the repetition link.
#[derive(Clone, Debug)]
enum RepLink {
    Sender(RepSender),
    Receiver(RepReceiver),
}

impl MpNode for RepLink {
    type Msg = bool;

    fn send(&mut self, _round: usize) -> Outgoing<bool> {
        match self {
            RepLink::Sender(s) => Outgoing::Broadcast(s.bit),
            RepLink::Receiver(_) => Outgoing::Silent,
        }
    }

    fn recv(&mut self, _round: usize, _from: NodeId, msg: bool) {
        if let RepLink::Receiver(r) = self {
            r.total += 1;
            r.ones += usize::from(msg);
        }
    }
}

/// Runs the repetition-with-majority algorithm on the two-node graph
/// against the Theorem 2.3 flip adversary for `rounds` rounds (odd
/// recommended) under full malicious faults with probability `p ≥ 1/2`.
///
/// When `p > 1/2`, the paper's throttling reduction is applied so the
/// effective malicious rate is exactly 1/2 — under which the received
/// bits are i.i.d. uniform and *no* decoder can beat success 1/2.
///
/// Returns whether the receiver's majority equals `bit`.
///
/// # Panics
///
/// Panics if `p < 1/2` (use the feasible-regime algorithms instead) or
/// `p ≥ 1`.
#[must_use]
pub fn run_two_node_majority(rounds: usize, p: f64, bit: bool, seed: u64) -> bool {
    assert!(
        (0.5..1.0).contains(&p),
        "harness models the infeasible regime"
    );
    let g = generators::path(1);
    let make = |v: NodeId| {
        if v.index() == 0 {
            RepLink::Sender(RepSender { bit })
        } else {
            RepLink::Receiver(RepReceiver::default())
        }
    };
    let decode = |net_ones: usize, net_total: usize| 2 * net_ones > net_total;
    let fault = FaultConfig::malicious(p);
    let (ones, total) = if p > 0.5 {
        let adversary = Throttled::new(FlipMpAdversary, p, 0.5);
        let mut net = MpNetwork::with_adversary(&g, fault, adversary, seed, make);
        net.run(rounds);
        match net.node(g.node(1)) {
            RepLink::Receiver(r) => (r.ones, r.total),
            RepLink::Sender(_) => unreachable!(),
        }
    } else {
        let mut net = MpNetwork::with_adversary(&g, fault, FlipMpAdversary, seed, make);
        net.run(rounds);
        match net.node(g.node(1)) {
            RepLink::Receiver(r) => (r.ones, r.total),
            RepLink::Sender(_) => unreachable!(),
        }
    };
    decode(ones, total) == bit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_bit_one_is_always_correct() {
        for seed in 0..30 {
            assert!(run_hello(10, 0.9, true, seed));
        }
    }

    #[test]
    fn hello_bit_zero_succeeds_with_moderate_m() {
        let ok = (0..50).filter(|&s| run_hello(40, 0.5, false, s)).count();
        assert!(ok >= 48, "ok={ok}");
    }

    #[test]
    fn hello_bit_zero_fails_often_with_tiny_m_high_p() {
        let ok = (0..50).filter(|&s| run_hello(1, 0.9, false, s)).count();
        // With m=1 (2 steps) and p=0.9, both steps survive w.p. 0.01.
        assert!(ok <= 5, "ok={ok}");
    }

    #[test]
    fn hello_error_bound_matches_simulation() {
        let m = 6;
        let p = 0.6;
        let bound = hello_error_bound(m, p);
        let trials = 4000;
        let fails = (0..trials)
            .filter(|&s| !run_hello(m, p, false, s as u64))
            .count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - bound).abs() < 0.03, "rate={rate} bound={bound}");
    }

    #[test]
    fn hello_error_bound_decreases_in_m() {
        let p = 0.7;
        let b1 = hello_error_bound(5, p);
        let b2 = hello_error_bound(20, p);
        assert!(b2 < b1);
        assert!(b2 > 0.0);
    }

    #[test]
    fn two_node_majority_pinned_at_half_for_p_half() {
        let trials: u64 = 600;
        let ok = (0..trials)
            .filter(|&s| run_two_node_majority(101, 0.5, s % 2 == 0, s))
            .count();
        let rate = ok as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.08, "rate={rate}");
    }

    #[test]
    fn two_node_majority_pinned_at_half_for_p_above_half() {
        // Throttled: still exactly 1/2.
        let trials: u64 = 600;
        let ok = (0..trials)
            .filter(|&s| run_two_node_majority(101, 0.8, s % 2 == 0, s))
            .count();
        let rate = ok as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.08, "rate={rate}");
    }

    #[test]
    #[should_panic(expected = "infeasible regime")]
    fn two_node_harness_rejects_feasible_p() {
        let _ = run_two_node_majority(11, 0.3, true, 0);
    }
}
