//! Algorithms `Simple-Omission` and `Simple-Malicious` (Section 2).
//!
//! Broadcasting proceeds along a BFS spanning tree `T` rooted at the
//! source. Nodes are enumerated `v1, …, vn` by nondecreasing distance from
//! the source; phase `i` consists of `m = ⌈c log n⌉` consecutive steps in
//! which only `v_i` transmits and all other nodes remain silent (so, in
//! the radio model, there are never collisions among correct nodes).
//!
//! * `Simple-Omission` (Theorem 2.1): `v_i` transmits the source message
//!   (or the default `0` if it has not received it); a child adopts *any*
//!   bit received from its parent during the parent's phase.
//! * `Simple-Malicious` (Theorems 2.2 / 2.4): a child takes the
//!   *majority* of the bits received from its parent during the parent's
//!   phase (default `0` on a tie or empty vote).
//!
//! Both variants run in the message-passing and radio models; the phase
//! lengths differ per model and failure type and are chosen by the
//! explicit Chernoff constants in [`randcast_stats::chernoff`].

use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::{MpAdversary, MpNetwork, MpNode, Outgoing};
use randcast_engine::radio::{RadioAction, RadioAdversary, RadioNetwork, RadioNode};
use randcast_graph::{Graph, NodeId, SpanningTree};
use randcast_stats::chernoff;

/// How a node aggregates the bits heard during its parent's phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VoteMode {
    /// Adopt any received bit (sound under omission failures, where
    /// received information can be trusted).
    Any,
    /// Adopt the majority bit, defaulting to `false` on ties or an empty
    /// vote (required under malicious failures).
    Majority,
}

/// The result of one broadcast execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BroadcastOutcome {
    /// Each node's final value (`None` = never decided, for
    /// [`VoteMode::Any`] nodes that heard nothing).
    pub values: Vec<Option<bool>>,
    /// Rounds executed.
    pub rounds: usize,
}

impl BroadcastOutcome {
    /// Whether every node ended with the source bit — the paper's
    /// success criterion.
    #[must_use]
    pub fn all_correct(&self, source_bit: bool) -> bool {
        self.values.iter().all(|v| *v == Some(source_bit))
    }

    /// Number of nodes holding the correct bit.
    #[must_use]
    pub fn correct_count(&self, source_bit: bool) -> usize {
        self.values
            .iter()
            .filter(|v| **v == Some(source_bit))
            .count()
    }
}

/// A compiled schedule for `Simple-Omission` / `Simple-Malicious`:
/// the spanning tree, the level-order enumeration, and the phase length.
#[derive(Clone, Debug)]
pub struct SimplePlan {
    /// Phase index of each node (indexed by node id): node with phase `k`
    /// transmits during rounds `[k·m, (k+1)·m)`.
    phase_of: Vec<usize>,
    /// Tree parent of each node (`None` for the source).
    parent: Vec<Option<NodeId>>,
    /// Tree children of each node.
    children: Vec<Vec<NodeId>>,
    source: NodeId,
    mode: VoteMode,
    m: usize,
}

impl SimplePlan {
    /// Plan for node-omission failures (Theorem 2.1): phase length
    /// `m = ⌈2 ln n / ln(1/p)⌉` so that `p^m ≤ 1/n²`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or `p ∉ [0, 1)`.
    #[must_use]
    pub fn omission_with_p(graph: &Graph, source: NodeId, p: f64) -> Self {
        let m = chernoff::phase_len_omission(graph.node_count().max(2), p);
        Self::with_phase_len(graph, source, m, VoteMode::Any)
    }

    /// Plan for node-omission failures with a representative default
    /// failure probability of `p = 0.5` (callers that know `p` should
    /// prefer [`omission_with_p`](Self::omission_with_p)).
    #[must_use]
    pub fn omission(graph: &Graph, source: NodeId) -> Self {
        Self::omission_with_p(graph, source, 0.5)
    }

    /// Plan for malicious failures in the message-passing model
    /// (Theorem 2.2): phase length `m = ⌈ln n / (1/2 − p)²⌉` (odd).
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ 1/2` (infeasible, Theorem 2.3) or the graph is
    /// disconnected.
    #[must_use]
    pub fn malicious_mp(graph: &Graph, source: NodeId, p: f64) -> Self {
        let m = chernoff::phase_len_malicious_mp(graph.node_count().max(2), p);
        Self::with_phase_len(graph, source, m, VoteMode::Majority)
    }

    /// Plan for malicious failures in the radio model (Theorem 2.4):
    /// phase length from the `q = (1−p)^{Δ+1}` margin.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ (1−p)^{Δ+1}` (infeasible) or the graph is
    /// disconnected.
    #[must_use]
    pub fn malicious_radio(graph: &Graph, source: NodeId, p: f64) -> Self {
        let m =
            chernoff::phase_len_malicious_radio(graph.node_count().max(2), p, graph.max_degree());
        Self::with_phase_len(graph, source, m, VoteMode::Majority)
    }

    /// Plan with an explicit phase length (ablation entry point).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or the graph is disconnected from `source`.
    #[must_use]
    pub fn with_phase_len(graph: &Graph, source: NodeId, m: usize, mode: VoteMode) -> Self {
        assert!(m > 0, "phase length must be positive");
        let tree = SpanningTree::bfs(graph, source);
        let order = tree.level_order();
        let mut phase_of = vec![0usize; graph.node_count()];
        for (k, &v) in order.iter().enumerate() {
            phase_of[v.index()] = k;
        }
        let parent = graph.nodes().map(|v| tree.parent(v)).collect();
        let children = graph.nodes().map(|v| tree.children(v).to_vec()).collect();
        SimplePlan {
            phase_of,
            parent,
            children,
            source,
            mode,
            m,
        }
    }

    /// The phase length `m`.
    #[must_use]
    pub fn phase_len(&self) -> usize {
        self.m
    }

    /// The vote mode.
    #[must_use]
    pub fn mode(&self) -> VoteMode {
        self.mode
    }

    /// Total rounds: `n · m`.
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.phase_of.len() * self.m
    }

    /// Builds the automaton for node `v` with the given source bit.
    fn node(&self, v: NodeId, source_bit: bool) -> SimpleNode {
        let is_source = v == self.source;
        SimpleNode {
            my_window: window(self.phase_of[v.index()], self.m),
            parent: self.parent[v.index()],
            parent_window: self.parent[v.index()].map(|p| window(self.phase_of[p.index()], self.m)),
            children: self.children[v.index()].clone(),
            mode: self.mode,
            value: is_source.then_some(source_bit),
            is_source,
            votes: Vec::new(),
            decided: is_source,
        }
    }

    /// Executes the plan in the message-passing model.
    pub fn run_mp<A: MpAdversary<bool>>(
        &self,
        graph: &Graph,
        fault: FaultConfig,
        adversary: A,
        seed: u64,
        source_bit: bool,
    ) -> BroadcastOutcome {
        let mut net =
            MpNetwork::with_adversary(graph, fault, adversary, seed, |v| self.node(v, source_bit));
        net.run(self.total_rounds());
        BroadcastOutcome {
            values: graph.nodes().map(|v| net.node(v).final_value()).collect(),
            rounds: self.total_rounds(),
        }
    }

    /// Executes the plan in the radio model.
    pub fn run_radio<A: RadioAdversary<bool>>(
        &self,
        graph: &Graph,
        fault: FaultConfig,
        adversary: A,
        seed: u64,
        source_bit: bool,
    ) -> BroadcastOutcome {
        let mut net = RadioNetwork::with_adversary(graph, fault, adversary, seed, |v| {
            self.node(v, source_bit)
        });
        net.run(self.total_rounds());
        BroadcastOutcome {
            values: graph.nodes().map(|v| net.node(v).final_value()).collect(),
            rounds: self.total_rounds(),
        }
    }
}

/// Half-open round window `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Window {
    start: usize,
    end: usize,
}

impl Window {
    fn contains(self, round: usize) -> bool {
        (self.start..self.end).contains(&round)
    }
}

fn window(phase: usize, m: usize) -> Window {
    Window {
        start: phase * m,
        end: (phase + 1) * m,
    }
}

/// Majority of a vote list; `false` on tie or empty (the paper's
/// default-0 rule).
fn majority(votes: &[bool]) -> bool {
    let ones = votes.iter().filter(|&&b| b).count();
    2 * ones > votes.len()
}

/// The per-node automaton shared by both algorithm variants and both
/// communication models.
#[derive(Clone, Debug)]
struct SimpleNode {
    my_window: Window,
    parent: Option<NodeId>,
    parent_window: Option<Window>,
    children: Vec<NodeId>,
    mode: VoteMode,
    value: Option<bool>,
    is_source: bool,
    votes: Vec<bool>,
    decided: bool,
}

impl SimpleNode {
    /// Accepts a bit heard during the parent's phase.
    fn observe(&mut self, round: usize, bit: bool) {
        let Some(w) = self.parent_window else {
            return;
        };
        if !w.contains(round) || self.is_source {
            return;
        }
        match self.mode {
            VoteMode::Any => {
                if self.value.is_none() {
                    self.value = Some(bit);
                    self.decided = true;
                }
            }
            VoteMode::Majority => self.votes.push(bit),
        }
    }

    /// Finalizes the majority vote once the parent's phase has ended.
    fn maybe_decide(&mut self, round: usize) {
        if self.decided || self.mode != VoteMode::Majority {
            return;
        }
        if let Some(w) = self.parent_window {
            if round >= w.end {
                self.value = Some(majority(&self.votes));
                self.decided = true;
            }
        }
    }

    /// The bit this node transmits during its phase (the paper's
    /// "Ms, or 0 if it has not received Ms").
    fn transmit_bit(&self) -> bool {
        self.value.unwrap_or(false)
    }

    fn final_value(&self) -> Option<bool> {
        self.value
    }
}

impl MpNode for SimpleNode {
    type Msg = bool;

    fn send(&mut self, round: usize) -> Outgoing<bool> {
        self.maybe_decide(round);
        if self.my_window.contains(round) && !self.children.is_empty() {
            let bit = self.transmit_bit();
            Outgoing::Directed(self.children.iter().map(|&c| (c, bit)).collect())
        } else {
            Outgoing::Silent
        }
    }

    fn recv(&mut self, round: usize, from: NodeId, msg: bool) {
        if Some(from) == self.parent {
            self.observe(round, msg);
        }
    }
}

impl RadioNode for SimpleNode {
    type Msg = bool;

    fn act(&mut self, round: usize) -> RadioAction<bool> {
        self.maybe_decide(round);
        if self.my_window.contains(round) {
            RadioAction::Transmit(self.transmit_bit())
        } else {
            RadioAction::Listen
        }
    }

    fn recv(&mut self, round: usize, heard: Option<bool>) {
        // In the radio model the receiver cannot name the sender; it
        // trusts the schedule: during the parent's phase only the parent
        // is *supposed* to transmit. (Malicious faults may violate that —
        // exactly the attack surface Theorem 2.4 quantifies.)
        if let Some(bit) = heard {
            self.observe(round, bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_engine::adversary::{FlipMpAdversary, JamRadioAdversary};
    use randcast_engine::mp::SilentMpAdversary;
    use randcast_engine::radio::SilentRadioAdversary;
    use randcast_graph::generators;

    #[test]
    fn majority_defaults_to_false() {
        assert!(!majority(&[]));
        assert!(!majority(&[true, false]));
        assert!(majority(&[true, true, false]));
        assert!(!majority(&[false, false, true]));
    }

    #[test]
    fn fault_free_mp_broadcast_succeeds_both_bits() {
        let g = generators::grid(3, 4);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 1, VoteMode::Any);
        for bit in [false, true] {
            let out = plan.run_mp(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, bit);
            assert!(out.all_correct(bit), "bit={bit}");
        }
    }

    #[test]
    fn fault_free_radio_broadcast_succeeds() {
        let g = generators::lower_bound_graph(3);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 1, VoteMode::Any);
        let out = plan.run_radio(&g, FaultConfig::fault_free(), SilentRadioAdversary, 0, true);
        assert!(out.all_correct(true));
    }

    #[test]
    fn fault_free_majority_mode_succeeds() {
        let g = generators::balanced_tree(2, 3);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 3, VoteMode::Majority);
        let out = plan.run_mp(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, true);
        assert!(out.all_correct(true));
        let out = plan.run_radio(&g, FaultConfig::fault_free(), SilentRadioAdversary, 0, true);
        assert!(out.all_correct(true));
    }

    #[test]
    fn omission_broadcast_usually_succeeds_at_high_p() {
        // p = 0.6 < 1: feasible (Theorem 2.1). With the prescribed m,
        // failure probability is at most 1/n per run.
        // Empirical success rate is ~0.95 (matching the n·p^m union
        // bound); 85/100 leaves ~5σ of slack so fixed seeds can't flake.
        let g = generators::path(15);
        let plan = SimplePlan::omission_with_p(&g, g.node(0), 0.6);
        let mut successes = 0;
        for seed in 0..100 {
            let out = plan.run_mp(
                &g,
                FaultConfig::omission(0.6),
                SilentMpAdversary,
                seed,
                true,
            );
            successes += usize::from(out.all_correct(true));
        }
        assert!(successes >= 85, "successes={successes}");
    }

    #[test]
    fn omission_radio_matches_mp_structure() {
        let g = generators::star(6);
        let plan = SimplePlan::omission_with_p(&g, g.node(0), 0.5);
        let out = plan.run_radio(
            &g,
            FaultConfig::omission(0.5),
            SilentRadioAdversary,
            3,
            true,
        );
        // Not asserting success (randomized) but shape: rounds = n * m.
        assert_eq!(out.rounds, plan.total_rounds());
        assert_eq!(out.values.len(), g.node_count());
    }

    #[test]
    fn malicious_mp_survives_flip_adversary_below_half() {
        let g = generators::grid(3, 3);
        let p = 0.3;
        let plan = SimplePlan::malicious_mp(&g, g.node(0), p);
        let mut successes = 0;
        for seed in 0..20 {
            let out = plan.run_mp(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, true);
            successes += usize::from(out.all_correct(true));
        }
        assert!(successes >= 18, "successes={successes}");
    }

    #[test]
    fn malicious_radio_survives_jam_below_threshold() {
        // Star with Δ = 3 (3 leaves + center... center degree 3):
        // threshold p*(3) ≈ 0.2; take p well below.
        let g = generators::star(3);
        let p = 0.05;
        let plan = SimplePlan::malicious_radio(&g, g.node(0), p);
        let mut successes = 0;
        for seed in 0..20 {
            let out = plan.run_radio(
                &g,
                FaultConfig::malicious(p),
                JamRadioAdversary::new(false),
                seed,
                true,
            );
            successes += usize::from(out.all_correct(true));
        }
        assert!(successes >= 18, "successes={successes}");
    }

    #[test]
    fn phase_windows_do_not_overlap() {
        let g = generators::path(5);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 4, VoteMode::Any);
        // All six nodes have disjoint windows covering 24 rounds.
        let mut seen = vec![false; plan.total_rounds()];
        for v in g.nodes() {
            let w = window(plan.phase_of[v.index()], plan.m);
            for (r, slot) in seen.iter_mut().enumerate().take(w.end).skip(w.start) {
                assert!(!*slot, "round {r} double-booked");
                *slot = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn source_keeps_its_bit_under_majority() {
        // Even with an adversary, the source's own value never changes.
        let g = generators::path(3);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 5, VoteMode::Majority);
        let out = plan.run_mp(&g, FaultConfig::malicious(0.4), FlipMpAdversary, 1, true);
        assert_eq!(out.values[0], Some(true));
    }

    #[test]
    fn outcome_counters() {
        let g = generators::path(2);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 1, VoteMode::Any);
        let out = plan.run_mp(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, true);
        assert_eq!(out.correct_count(true), 3);
        assert!(!out.all_correct(false));
    }

    #[test]
    fn total_rounds_is_n_times_m() {
        let g = generators::cycle(7);
        let plan = SimplePlan::with_phase_len(&g, g.node(0), 9, VoteMode::Any);
        assert_eq!(plan.total_rounds(), 63);
        assert_eq!(plan.phase_len(), 9);
        assert_eq!(plan.mode(), VoteMode::Any);
    }
}
