//! Self-timed (assumption-free) variants of the Section 2 algorithms.
//!
//! `Simple-Omission` and `Simple-Malicious` as stated assume every node
//! knows its index `v_i` and a global clock, so that phase `i` can be
//! scheduled at rounds `[i·m, (i+1)·m)`. The paper notes (§2.1 and
//! §2.2.2) that in the **message-passing model** both assumptions can be
//! discarded:
//!
//! * **Omission** (§2.1): "a node will start its window of transmissions
//!   upon receiving the message for the first time." Since received
//!   information can be trusted, a node simply relays for `m` rounds
//!   starting right after its first reception. Broadcast completes in
//!   `O(D · m)` worst-case rounds instead of `n · m` — and typically far
//!   faster, since subtrees progress in parallel.
//!
//! * **Malicious** (§2.2.2): a failure can make a link speak out of
//!   turn, so a receiver cannot trust timing alone. The paper's fix:
//!   each node listens on its parent link *at all times* and accepts a
//!   message as genuine once `m/2` identical copies arrived within the
//!   last `m` rounds, then starts its own transmission window. "By
//!   Chernoff's bound, the probability of receiving `m/2` (or more)
//!   identical copies of a false message over some link during a window
//!   of `m` rounds is exponentially small."
//!
//! Both variants run on the BFS spanning tree like their scheduled
//! counterparts; only the *timing* is self-organized.

use std::collections::VecDeque;

use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::{MpAdversary, MpNetwork, MpNode, Outgoing};
use randcast_graph::{Graph, NodeId, SpanningTree};
use randcast_stats::chernoff;

use crate::simple::BroadcastOutcome;

/// A compiled self-timed plan (tree + window length + horizon).
#[derive(Clone, Debug)]
pub struct SelfTimedPlan {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    source: NodeId,
    m: usize,
    horizon: usize,
    mode: SelfTimedMode,
}

/// Which acceptance rule the receivers use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelfTimedMode {
    /// Trust the first received bit (omission failures).
    FirstReception,
    /// Accept once `≥ m/2` identical copies arrived within the last `m`
    /// rounds (malicious failures, the §2.2.2 sliding-window rule).
    SlidingMajority,
}

impl SelfTimedPlan {
    /// Self-timed omission plan: window `m = ⌈2 ln n / ln(1/p)⌉`, horizon
    /// `(D + 1) · m` (each level delays at most one window behind its
    /// parent, except with probability `≤ 1/n²` per node).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)` or the graph is disconnected from `source`.
    #[must_use]
    pub fn omission(graph: &Graph, source: NodeId, p: f64) -> Self {
        let m = chernoff::phase_len_omission(graph.node_count().max(2), p);
        Self::with_window(graph, source, m, SelfTimedMode::FirstReception)
    }

    /// Self-timed malicious plan: sliding-window acceptance. The window
    /// uses the Theorem 2.2 length enlarged by the horizon union bound
    /// (every round starts a fresh window, so the per-window error must
    /// be divided among `O(D · m)` windows).
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ 1/2` or the graph is disconnected from `source`.
    #[must_use]
    pub fn malicious(graph: &Graph, source: NodeId, p: f64) -> Self {
        let n = graph.node_count().max(2);
        // Base window from Theorem 2.2, then pad for the sliding union
        // bound: error per window exp(-2m(1/2-p)²) must be ≤ 1/(n²·τ);
        // τ ≤ n·m ⇒ an extra ln(n·m)/(2(1/2-p)²) ≈ half the base again.
        let base = chernoff::phase_len_malicious_mp(n, p);
        let gap = 0.5 - p;
        let pad = (((n * base) as f64).ln() / (2.0 * gap * gap)).ceil() as usize;
        let m = chernoff::make_odd(base + pad);
        Self::with_window(graph, source, m, SelfTimedMode::SlidingMajority)
    }

    /// Explicit window length (ablation entry point).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or the graph is disconnected from `source`.
    #[must_use]
    pub fn with_window(graph: &Graph, source: NodeId, m: usize, mode: SelfTimedMode) -> Self {
        assert!(m > 0, "window length must be positive");
        let tree = SpanningTree::bfs(graph, source);
        let horizon = (tree.depth() + 1) * m;
        SelfTimedPlan {
            parent: graph.nodes().map(|v| tree.parent(v)).collect(),
            children: graph.nodes().map(|v| tree.children(v).to_vec()).collect(),
            source,
            m,
            horizon,
            mode,
        }
    }

    /// The window length `m`.
    #[must_use]
    pub fn window(&self) -> usize {
        self.m
    }

    /// The execution horizon `(D + 1) · m`.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Executes the plan in the message-passing model.
    pub fn run<A: MpAdversary<bool>>(
        &self,
        graph: &Graph,
        fault: FaultConfig,
        adversary: A,
        seed: u64,
        source_bit: bool,
    ) -> BroadcastOutcome {
        let mut net = MpNetwork::with_adversary(graph, fault, adversary, seed, |v| {
            let is_source = v == self.source;
            SelfTimedNode {
                parent: self.parent[v.index()],
                children: self.children[v.index()].clone(),
                m: self.m,
                mode: self.mode,
                value: is_source.then_some(source_bit),
                window_from: is_source.then_some(0),
                history: VecDeque::with_capacity(self.m),
            }
        });
        net.run(self.horizon);
        BroadcastOutcome {
            values: graph.nodes().map(|v| net.node(v).value).collect(),
            rounds: self.horizon,
        }
    }
}

/// Self-timed automaton.
#[derive(Clone, Debug)]
struct SelfTimedNode {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    m: usize,
    mode: SelfTimedMode,
    value: Option<bool>,
    /// Round at which this node's transmission window starts.
    window_from: Option<usize>,
    /// Per-round parent-link observations within the last `m` rounds
    /// (`None` = silence that round).
    history: VecDeque<Option<bool>>,
}

impl SelfTimedNode {
    /// Sliding-majority acceptance check over the last `m` observations.
    fn sliding_accept(&self) -> Option<bool> {
        for bit in [true, false] {
            let copies = self.history.iter().filter(|o| **o == Some(bit)).count();
            if 2 * copies >= self.m {
                return Some(bit);
            }
        }
        None
    }
}

impl MpNode for SelfTimedNode {
    type Msg = bool;

    fn send(&mut self, round: usize) -> Outgoing<bool> {
        // The engine calls `send` for every node before any delivery of
        // this round, so the history holds exactly the last completed
        // rounds: evaluate acceptance first, then open this round's slot.
        if self.mode == SelfTimedMode::SlidingMajority && self.value.is_none() {
            if let Some(bit) = self.sliding_accept() {
                self.value = Some(bit);
                self.window_from = Some(round);
            } else {
                if self.history.len() == self.m {
                    self.history.pop_front();
                }
                self.history.push_back(None);
            }
        }
        match (self.value, self.window_from) {
            (Some(bit), Some(from)) if round >= from && round < from + self.m => {
                if self.children.is_empty() {
                    Outgoing::Silent
                } else {
                    Outgoing::Directed(self.children.iter().map(|&c| (c, bit)).collect())
                }
            }
            _ => Outgoing::Silent,
        }
    }

    fn recv(&mut self, round: usize, from: NodeId, msg: bool) {
        if Some(from) != self.parent {
            return;
        }
        match self.mode {
            SelfTimedMode::FirstReception => {
                if self.value.is_none() {
                    self.value = Some(msg);
                    self.window_from = Some(round + 1);
                }
            }
            SelfTimedMode::SlidingMajority => {
                if self.value.is_none() {
                    if let Some(slot) = self.history.back_mut() {
                        *slot = Some(msg);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_engine::adversary::FlipMpAdversary;
    use randcast_engine::mp::SilentMpAdversary;
    use randcast_graph::{generators, traversal};

    #[test]
    fn fault_free_self_timed_completes_in_d_plus_one_windows() {
        let g = generators::path(6);
        let plan = SelfTimedPlan::with_window(&g, g.node(0), 3, SelfTimedMode::FirstReception);
        let out = plan.run(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, true);
        assert!(out.all_correct(true));
        assert_eq!(out.rounds, 7 * 3);
    }

    #[test]
    fn self_timed_omission_is_almost_safe() {
        let g = generators::grid(4, 4);
        let p = 0.5;
        let plan = SelfTimedPlan::omission(&g, g.node(0), p);
        let mut ok = 0;
        for seed in 0..30 {
            let out = plan.run(&g, FaultConfig::omission(p), SilentMpAdversary, seed, true);
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 28, "ok={ok}");
    }

    #[test]
    fn self_timed_is_much_faster_than_indexed() {
        // Horizon (D+1)·m vs n·m: on a balanced tree D ≪ n.
        let g = generators::balanced_tree(3, 4); // n = 121, D = 4
        let p = 0.4;
        let st = SelfTimedPlan::omission(&g, g.node(0), p);
        let indexed = crate::simple::SimplePlan::omission_with_p(&g, g.node(0), p);
        assert!(st.horizon() * 5 < indexed.total_rounds());
        let d = traversal::radius_from(&g, g.node(0));
        assert_eq!(st.horizon(), (d + 1) * st.window());
    }

    #[test]
    fn sliding_majority_survives_flip_adversary() {
        let g = generators::path(5);
        let p = 0.25;
        let plan = SelfTimedPlan::malicious(&g, g.node(0), p);
        let mut ok = 0;
        for seed in 0..30 {
            let out = plan.run(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, true);
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 28, "ok={ok}");
    }

    #[test]
    fn sliding_majority_fault_free_accepts_quickly() {
        let g = generators::path(3);
        let plan = SelfTimedPlan::with_window(&g, g.node(0), 5, SelfTimedMode::SlidingMajority);
        let out = plan.run(&g, FaultConfig::fault_free(), SilentMpAdversary, 0, false);
        assert!(out.all_correct(false));
    }

    #[test]
    fn sliding_majority_never_accepts_from_silence() {
        // With the source permanently silenced (p -> omission at huge
        // rate), children must not accept anything.
        let g = generators::path(2);
        let plan = SelfTimedPlan::with_window(&g, g.node(0), 7, SelfTimedMode::SlidingMajority);
        let out = plan.run(&g, FaultConfig::omission(0.99), SilentMpAdversary, 3, true);
        // Node 2 (grandchild) almost surely undecided at this rate.
        assert_eq!(out.values[2], None);
    }

    #[test]
    fn both_bits_survive(/* symmetry check */) {
        let g = generators::star(6);
        let p = 0.3;
        let plan = SelfTimedPlan::malicious(&g, g.node(0), p);
        for bit in [false, true] {
            let mut ok = 0;
            for seed in 0..20 {
                let out = plan.run(&g, FaultConfig::malicious(p), FlipMpAdversary, seed, bit);
                ok += usize::from(out.all_correct(bit));
            }
            assert!(ok >= 18, "bit={bit} ok={ok}");
        }
    }
}
