//! The Bar-Yehuda–Goldreich–Itai *Decay* protocol — the classical
//! randomized radio broadcast baseline (reference \[7\] of the paper).
//!
//! The paper's radio algorithms assume a centrally precomputed fault-free
//! schedule (Section 3). Decay needs none: time is divided into epochs of
//! `k = ⌈log₂ n⌉ + 1` rounds; in round `j` of an epoch, every informed
//! node transmits with probability `2^{−j}` (implemented by each node
//! halting its participation in the epoch after each coin flip — the
//! eponymous decay). Within one epoch, a node with at least one informed
//! neighbor receives the message with constant probability, regardless of
//! how many neighbors compete; `O(log n)` epochs per layer then suffice
//! w.h.p.
//!
//! This module is an **extension** beyond the paper's own algorithms: it
//! serves as the natural schedule-free baseline for the Theorem 3.4
//! expansion experiments, and it composes with the same fault model
//! (a transmitter-failed node simply loses its transmission that round —
//! the protocol is oblivious, so omission faults just scale the effective
//! transmission probability by `1 − p`).
//!
//! Note that Decay is a *randomized* protocol, while the paper's
//! algorithms are deterministic (only the environment is random); the
//! comparison is therefore between different algorithm classes — see the
//! discussion in `EXPERIMENTS.md`.

use randcast_engine::adversary::FlipRadioAdversary;
use randcast_engine::fault::{FaultConfig, FaultKind};
use randcast_engine::radio::{RadioAction, RadioNetwork, RadioNode};
use randcast_engine::radio_fast::{decay_coin, decay_tapes};
use randcast_graph::{Graph, NodeId};

/// Outcome of one Decay execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecayOutcome {
    /// Round at which each node first became informed (`Some(0)` for the
    /// source, `None` if never).
    pub informed_at: Vec<Option<usize>>,
    /// Rounds executed.
    pub rounds: usize,
}

impl DecayOutcome {
    /// Whether every node was informed.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.informed_at.iter().all(Option::is_some)
    }

    /// The completion round (`None` if incomplete).
    #[must_use]
    pub fn completion_round(&self) -> Option<usize> {
        self.informed_at
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()
            .map(|rs| rs.into_iter().max().unwrap_or(0))
    }
}

/// Configuration for the Decay protocol.
#[derive(Clone, Copy, Debug)]
pub struct DecayConfig {
    /// Epoch length `k` (rounds per epoch); the classical choice is
    /// `⌈log₂ n⌉ + 1`.
    pub epoch_len: usize,
    /// Number of epochs to run.
    pub epochs: usize,
}

impl DecayConfig {
    /// The classical parameterization for an `n`-node graph of source
    /// radius `d`: epoch length `⌈log₂ n⌉ + 1`, and `2·(d + log₂ n)`
    /// epochs (enough for w.h.p. completion layer by layer).
    #[must_use]
    pub fn classical(n: usize, d: usize) -> Self {
        let log_n = (n.max(2) as f64).log2().ceil() as usize;
        DecayConfig {
            epoch_len: log_n + 1,
            epochs: 2 * (d + log_n).max(1),
        }
    }

    /// Total rounds.
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.epoch_len * self.epochs
    }
}

/// Decay automaton: in each epoch, an informed node transmits in round
/// `j` iff all of its first `j` private coins came up heads — i.e. it
/// participates with probability `2^{−j}`, halving each round.
///
/// The automaton relays the bit it adopted when it first heard a sole
/// transmitter. Under omission faults that bit is always the truth;
/// under the flip adversary a corrupted transmission poisons the sole
/// listener, which then relays the poisoned bit onward.
struct DecayNode {
    informed_at: Option<usize>,
    /// The bit adopted at informing time (`true` at the source).
    value: bool,
    epoch_len: usize,
    /// Per-node random tape (deterministic from the network seed).
    tape: u64,
    /// Whether this node is still participating in the current epoch.
    active: bool,
}

impl DecayNode {
    fn coin(&self, epoch: usize, j: usize) -> bool {
        // One fair coin per (node-tape, epoch, round-in-epoch) — the
        // *same* pure coin function the fast kernel evaluates
        // (`randcast_engine::radio_fast`), so the two engines' Decay
        // participation schedules are identical per seed.
        decay_coin(self.tape, epoch, j)
    }
}

impl RadioNode for DecayNode {
    type Msg = bool;

    fn act(&mut self, round: usize) -> RadioAction<bool> {
        if self.informed_at.is_none() {
            return RadioAction::Listen;
        }
        let epoch = round / self.epoch_len;
        let j = round % self.epoch_len;
        if j == 0 {
            self.active = true;
        }
        if self.active {
            // Transmit this round, then flip a coin to stay in the epoch.
            if !self.coin(epoch, j) {
                self.active = false;
            }
            RadioAction::Transmit(self.value)
        } else {
            RadioAction::Listen
        }
    }

    fn recv(&mut self, round: usize, heard: Option<bool>) {
        if let Some(bit) = heard {
            if self.informed_at.is_none() {
                self.informed_at = Some(round + 1);
                self.value = bit;
            }
        }
    }
}

/// Runs the Decay protocol on `graph` from `source` under the given fault
/// configuration.
///
/// Omission faults compose naturally: a transmitter-failed node simply
/// loses its transmission that round. Under the malicious kinds the
/// protocol faces the flip adversary ([`FlipRadioAdversary`]): a faulty
/// scheduled transmitter still transmits — colliding like any other —
/// but delivers the complement of its adopted bit, so the participation
/// (and hence collision) schedule is exactly the fault-free one while
/// values are poisoned. `informed_at` then records *correct* informing
/// times: a node that adopted a corrupted bit is reported as never
/// informed, matching the correct-set semantics of the fast kernels.
/// Full-malicious jamming strategies are out of scope here — use
/// [`crate::radio_robust`] for those.
#[must_use]
pub fn run_decay(
    graph: &Graph,
    source: NodeId,
    config: DecayConfig,
    fault: FaultConfig,
    seed: u64,
) -> DecayOutcome {
    let tapes = decay_tapes(seed);
    let factory = |v: NodeId| DecayNode {
        informed_at: (v == source).then_some(0),
        value: v == source,
        epoch_len: config.epoch_len,
        tape: tapes.nth_seed(v.index() as u64),
        active: false,
    };
    if fault.kind == FaultKind::Omission {
        let mut net = RadioNetwork::new(graph, fault, seed, factory);
        net.run(config.total_rounds());
        DecayOutcome {
            informed_at: graph.nodes().map(|v| net.node(v).informed_at).collect(),
            rounds: config.total_rounds(),
        }
    } else {
        let mut net = RadioNetwork::with_adversary(graph, fault, FlipRadioAdversary, seed, factory);
        net.run(config.total_rounds());
        DecayOutcome {
            informed_at: graph
                .nodes()
                .map(|v| {
                    let node = net.node(v);
                    node.informed_at.filter(|_| node.value)
                })
                .collect(),
            rounds: config.total_rounds(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::{generators, traversal};

    fn classical_for(g: &Graph) -> DecayConfig {
        DecayConfig::classical(g.node_count(), traversal::radius_from(g, g.node(0)))
    }

    #[test]
    fn decay_completes_fault_free_on_families() {
        for g in [
            generators::path(12),
            generators::star(16),
            generators::grid(5, 5),
            generators::lower_bound_graph(4),
            generators::complete(12),
        ] {
            let cfg = classical_for(&g);
            let mut ok = 0;
            for seed in 0..10 {
                ok += usize::from(
                    run_decay(&g, g.node(0), cfg, FaultConfig::fault_free(), seed).complete(),
                );
            }
            assert!(ok >= 9, "graph n={} ok={ok}", g.node_count());
        }
    }

    #[test]
    fn decay_survives_omission_faults() {
        let g = generators::grid(5, 5);
        let mut cfg = classical_for(&g);
        // Omission at rate p scales effective transmission probability;
        // double the epochs to compensate at p = 0.5.
        cfg.epochs *= 2;
        let mut ok = 0;
        for seed in 0..20 {
            ok += usize::from(
                run_decay(&g, g.node(0), cfg, FaultConfig::omission(0.5), seed).complete(),
            );
        }
        assert!(ok >= 18, "ok={ok}");
    }

    #[test]
    fn decay_informs_nothing_with_zero_epochs() {
        let g = generators::path(3);
        let cfg = DecayConfig {
            epoch_len: 3,
            epochs: 0,
        };
        let out = run_decay(&g, g.node(0), cfg, FaultConfig::fault_free(), 0);
        assert!(!out.complete());
        assert_eq!(out.informed_at[0], Some(0));
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn decay_handles_high_contention() {
        // Complete bipartite: all of side A informed after one step would
        // collide forever under naive flooding; decay's back-off resolves
        // it.
        let g = generators::complete_bipartite(8, 8);
        let cfg = classical_for(&g);
        let mut ok = 0;
        for seed in 0..10 {
            ok += usize::from(
                run_decay(&g, g.node(0), cfg, FaultConfig::fault_free(), seed).complete(),
            );
        }
        assert!(ok >= 9, "ok={ok}");
    }

    #[test]
    fn malicious_decay_at_p_zero_matches_fault_free_exactly() {
        // With no faults the flip adversary never fires; the correct-set
        // outcome coincides with the omission outcome per seed.
        let g = generators::grid(4, 4);
        let cfg = classical_for(&g);
        for seed in 0..5 {
            let ff = run_decay(&g, g.node(0), cfg, FaultConfig::fault_free(), seed);
            let mal = run_decay(&g, g.node(0), cfg, FaultConfig::malicious(0.0), seed);
            assert_eq!(ff, mal, "seed {seed}");
        }
    }

    #[test]
    fn flip_adversary_preserves_the_fault_free_hearing_schedule() {
        // A flipped transmitter still transmits, so collisions — and
        // hence who hears in which round — are exactly as in the
        // fault-free run at the same seed. Only values are poisoned:
        // each reported informing time either matches the fault-free one
        // or becomes None (corrupted bit adopted). The Decay
        // participation coins come from a pure seed-derived tape, so the
        // fault-sampling RNG draws cannot perturb the schedule.
        let g = generators::grid(5, 5);
        let mut cfg = classical_for(&g);
        cfg.epochs *= 2;
        let mut poisoned = 0usize;
        for seed in 0..10 {
            let ff = run_decay(&g, g.node(0), cfg, FaultConfig::fault_free(), seed);
            let mal = run_decay(
                &g,
                g.node(0),
                cfg,
                FaultConfig::limited_malicious(0.4),
                seed,
            );
            for (i, (a, b)) in ff.informed_at.iter().zip(&mal.informed_at).enumerate() {
                match b {
                    Some(_) => assert_eq!(a, b, "seed {seed} node {i}"),
                    None => poisoned += usize::from(a.is_some()),
                }
            }
        }
        assert!(poisoned > 0, "p = 0.4 never corrupted an adoption");
    }

    #[test]
    fn decay_is_deterministic_given_seed() {
        let g = generators::grid(4, 4);
        let cfg = classical_for(&g);
        let a = run_decay(&g, g.node(0), cfg, FaultConfig::omission(0.3), 5);
        let b = run_decay(&g, g.node(0), cfg, FaultConfig::omission(0.3), 5);
        assert_eq!(a, b);
    }
}
