//! Declarative experiment scenarios: graph family × algorithm × model ×
//! fault, as plain data.
//!
//! A [`Scenario`] names everything needed to run one broadcast
//! experiment cell — which graph to build, which algorithm to plan,
//! which communication model to run it in, and which fault process (and
//! hence which worst-case adversary) to apply. [`Scenario::prepare`]
//! compiles it into a [`PreparedScenario`] holding the built graph and
//! plan, whose [`trial`](PreparedScenario::trial) method runs one
//! seeded execution. The sweep driver
//! ([`Sweep::scenario`](crate::sweep::Sweep::scenario)) accepts
//! scenarios directly, so experiment binaries reduce to data: a list of
//! scenarios plus trial counts.
//!
//! Adversary selection is part of the spec: each (model, fault-kind)
//! pair gets the binding worst case used throughout the paper's
//! experiments — silent transmitters for omission faults, the flip
//! adversary for (limited-)malicious message passing, and the
//! lie-or-jam adversary for malicious radio.

use rand::rngs::SmallRng;
use rand::SeedableRng as _;

use randcast_engine::adversary::{FlipMpAdversary, LieOrJamAdversary};
use randcast_engine::fault::{FaultConfig, FaultKind};
use randcast_engine::mp::SilentMpAdversary;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_graph::{generators, Graph};

use crate::decay::{run_decay, DecayConfig};
use crate::flood::{FloodPlan, FloodVariant};
use crate::kucera::{FailureBehavior, KuceraBroadcast};
use crate::radio_robust::ExpandedPlan;
use crate::radio_sched::greedy_schedule;
use crate::selftimed::SelfTimedPlan;
use crate::simple::SimplePlan;
use crate::sweep::TrialOutcome;

/// The source bit broadcast in every scenario trial.
pub const SOURCE_BIT: bool = true;

/// A named graph constructor; the broadcast source is always node 0.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphFamily {
    /// Path with `len` edges.
    Path(usize),
    /// Rows × columns grid.
    Grid(usize, usize),
    /// Balanced tree of the given arity and depth.
    BalancedTree(usize, usize),
    /// Hypercube of the given dimension.
    Hypercube(usize),
    /// Uniform random tree on `n` nodes, built from `seed`.
    RandomTree {
        /// Node count.
        n: usize,
        /// Construction seed (part of the spec, so labels are stable).
        seed: u64,
    },
    /// Star with the given number of leaves (center is node 0).
    Star(usize),
    /// Complete graph on `n` nodes.
    Complete(usize),
    /// The paper's three-layer lower-bound graph `G(m)`.
    LowerBound(usize),
}

impl GraphFamily {
    /// The family's table label (e.g. `grid-8x8`, `G(5)`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            GraphFamily::Path(len) => format!("path-{len}"),
            GraphFamily::Grid(r, c) => format!("grid-{r}x{c}"),
            GraphFamily::BalancedTree(a, d) => format!("tree-{a}-{d}"),
            GraphFamily::Hypercube(dim) => format!("hypercube-{dim}"),
            GraphFamily::RandomTree { n, .. } => format!("rand-tree-{n}"),
            GraphFamily::Star(leaves) => format!("star-{leaves}"),
            GraphFamily::Complete(n) => format!("complete-{n}"),
            GraphFamily::LowerBound(m) => format!("G({m})"),
        }
    }

    /// Builds the graph.
    #[must_use]
    pub fn build(&self) -> Graph {
        match *self {
            GraphFamily::Path(len) => generators::path(len),
            GraphFamily::Grid(r, c) => generators::grid(r, c),
            GraphFamily::BalancedTree(a, d) => generators::balanced_tree(a, d),
            GraphFamily::Hypercube(dim) => generators::hypercube(dim),
            GraphFamily::RandomTree { n, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                generators::random_tree(n, &mut rng)
            }
            GraphFamily::Star(leaves) => generators::star(leaves),
            GraphFamily::Complete(n) => generators::complete(n),
            GraphFamily::LowerBound(m) => generators::lower_bound_graph(m),
        }
    }
}

/// The standard six-graph suite shared by several experiments.
#[must_use]
pub fn standard_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::Path(32),
        GraphFamily::Grid(8, 8),
        GraphFamily::BalancedTree(2, 6),
        GraphFamily::Hypercube(6),
        GraphFamily::RandomTree { n: 64, seed: 12345 },
        GraphFamily::LowerBound(5),
    ]
}

/// The communication model a scenario runs in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Model {
    /// Synchronous message passing.
    Mp,
    /// Radio (single shared channel, collision = silence).
    Radio,
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Model::Mp => "mp",
            Model::Radio => "radio",
        })
    }
}

/// Which broadcast algorithm the scenario plans. The fault kind on the
/// [`Scenario`] selects the omission or malicious variant where the
/// paper distinguishes them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// `Simple-Omission` / `Simple-Malicious` (Theorems 2.1/2.2/2.4),
    /// per the fault kind; runs in both models.
    Simple,
    /// BFS-tree flooding (Theorem 3.1, MP + omission). The horizon is
    /// the Theorem 3.1 prescription scaled by `horizon_scale`.
    Flood {
        /// Multiplier on the prescribed horizon (1 = the theorem's).
        horizon_scale: usize,
    },
    /// Kučera composition broadcasting (Theorem 3.2, MP).
    Kucera,
    /// The self-timed sliding-majority variant (§2 remarks, MP).
    SelfTimed,
    /// `Omission-Radio` / `Malicious-Radio`: the Theorem 3.4 expansion
    /// of a greedy fault-free schedule (radio), per the fault kind.
    Expanded,
    /// The randomized Decay baseline (radio, omission only).
    Decay {
        /// Multiplier on the classical epoch count.
        epoch_factor: usize,
    },
}

impl Algorithm {
    /// The algorithm's table label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Simple => "simple",
            Algorithm::Flood { .. } => "flood",
            Algorithm::Kucera => "kucera",
            Algorithm::SelfTimed => "self-timed",
            Algorithm::Expanded => "expanded",
            Algorithm::Decay { .. } => "decay",
        }
    }
}

/// A full declarative experiment cell spec.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Scenario {
    /// The graph family (source is node 0).
    pub graph: GraphFamily,
    /// The algorithm to plan.
    pub algorithm: Algorithm,
    /// The communication model.
    pub model: Model,
    /// The fault process (kind + probability).
    pub fault: FaultConfig,
}

enum PlanKind {
    Simple(SimplePlan),
    Flood(FloodPlan),
    Kucera(KuceraBroadcast),
    SelfTimed(SelfTimedPlan),
    Expanded(ExpandedPlan),
    Decay(DecayConfig),
}

/// A compiled scenario: graph + plan, ready to run seeded trials.
pub struct PreparedScenario {
    scenario: Scenario,
    graph: Graph,
    plan: PlanKind,
}

impl Scenario {
    /// Builds the graph and compiles the algorithm's plan.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations: MP-only algorithms in the radio
    /// model (and vice versa), Decay under non-omission faults, or
    /// parameters outside an algorithm's feasible range (e.g. Kučera at
    /// `p ≥ 1/2`).
    #[must_use]
    pub fn prepare(self) -> PreparedScenario {
        let graph = self.graph.build();
        let source = graph.node(0);
        let p = self.fault.p.get();
        let malicious = self.fault.kind != FaultKind::Omission;
        let plan = match (self.algorithm, self.model) {
            (Algorithm::Simple, Model::Mp) => PlanKind::Simple(if malicious {
                SimplePlan::malicious_mp(&graph, source, p)
            } else {
                SimplePlan::omission_with_p(&graph, source, p)
            }),
            (Algorithm::Simple, Model::Radio) => PlanKind::Simple(if malicious {
                SimplePlan::malicious_radio(&graph, source, p)
            } else {
                SimplePlan::omission_with_p(&graph, source, p)
            }),
            (Algorithm::Flood { horizon_scale }, Model::Mp) => {
                assert!(horizon_scale > 0, "horizon_scale must be positive");
                let base = FloodPlan::new(&graph, source, p);
                PlanKind::Flood(if horizon_scale == 1 {
                    base
                } else {
                    FloodPlan::with_horizon(
                        &graph,
                        source,
                        base.horizon() * horizon_scale,
                        FloodVariant::Tree,
                    )
                })
            }
            (Algorithm::Kucera, Model::Mp) => {
                PlanKind::Kucera(KuceraBroadcast::new(&graph, source, p))
            }
            (Algorithm::SelfTimed, Model::Mp) => PlanKind::SelfTimed(if malicious {
                SelfTimedPlan::malicious(&graph, source, p)
            } else {
                SelfTimedPlan::omission(&graph, source, p)
            }),
            (Algorithm::Expanded, Model::Radio) => {
                let base = greedy_schedule(&graph, source);
                PlanKind::Expanded(if malicious {
                    ExpandedPlan::malicious(&graph, source, &base, p)
                } else {
                    ExpandedPlan::omission(&graph, source, &base, p)
                })
            }
            (Algorithm::Decay { epoch_factor }, Model::Radio) => {
                assert!(
                    !malicious,
                    "Decay tolerates omission faults only (use Expanded for malicious)"
                );
                assert!(epoch_factor > 0, "epoch_factor must be positive");
                let d = randcast_graph::traversal::radius_from(&graph, source);
                let mut cfg = DecayConfig::classical(graph.node_count(), d);
                cfg.epochs *= epoch_factor;
                PlanKind::Decay(cfg)
            }
            (alg, model) => panic!("{} does not run in the {model} model", alg.name()),
        };
        PreparedScenario {
            scenario: self,
            graph,
            plan,
        }
    }
}

impl PreparedScenario {
    /// The built graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The scenario this was compiled from.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Node count (the almost-safety `n`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// Total rounds one trial executes.
    #[must_use]
    pub fn rounds(&self) -> usize {
        match &self.plan {
            PlanKind::Simple(plan) => plan.total_rounds(),
            PlanKind::Flood(plan) => plan.horizon(),
            PlanKind::Kucera(kb) => kb.time(),
            PlanKind::SelfTimed(plan) => plan.horizon(),
            PlanKind::Expanded(plan) => plan.total_rounds(),
            PlanKind::Decay(cfg) => cfg.total_rounds(),
        }
    }

    /// The per-phase repetition length `m`, for algorithms that have
    /// one.
    #[must_use]
    pub fn phase_len(&self) -> Option<usize> {
        match &self.plan {
            PlanKind::Simple(plan) => Some(plan.phase_len()),
            PlanKind::SelfTimed(plan) => Some(plan.window()),
            PlanKind::Expanded(plan) => Some(plan.phase_len()),
            PlanKind::Flood(_) | PlanKind::Kucera(_) | PlanKind::Decay(_) => None,
        }
    }

    /// The standard parameter columns: graph, n, algorithm, model,
    /// fault, p, m, rounds.
    #[must_use]
    pub fn params(&self) -> Vec<(String, String)> {
        let sc = &self.scenario;
        vec![
            ("graph".into(), sc.graph.label()),
            ("n".into(), self.n().to_string()),
            ("algorithm".into(), sc.algorithm.name().into()),
            ("model".into(), sc.model.to_string()),
            ("fault".into(), sc.fault.kind.to_string()),
            ("p".into(), fmt_p(sc.fault.p.get())),
            (
                "m".into(),
                self.phase_len()
                    .map_or_else(|| "-".into(), |m| m.to_string()),
            ),
            ("rounds".into(), self.rounds().to_string()),
        ]
    }

    /// Runs one trial from the given seed, against the binding
    /// adversary for the scenario's (model, fault-kind) pair.
    #[must_use]
    pub fn trial(&self, seed: u64) -> TrialOutcome {
        let g = &self.graph;
        let fault = self.scenario.fault;
        let malicious = fault.kind != FaultKind::Omission;
        let bit = SOURCE_BIT;
        match &self.plan {
            PlanKind::Simple(plan) => match self.scenario.model {
                Model::Mp => TrialOutcome::pass(if malicious {
                    plan.run_mp(g, fault, FlipMpAdversary, seed, bit)
                        .all_correct(bit)
                } else {
                    plan.run_mp(g, fault, SilentMpAdversary, seed, bit)
                        .all_correct(bit)
                }),
                Model::Radio => TrialOutcome::pass(if malicious {
                    plan.run_radio(g, fault, LieOrJamAdversary::new(bit), seed, bit)
                        .all_correct(bit)
                } else {
                    plan.run_radio(g, fault, SilentRadioAdversary, seed, bit)
                        .all_correct(bit)
                }),
            },
            PlanKind::Flood(plan) => {
                TrialOutcome::completed(plan.run(g, fault, seed).completion_round())
            }
            PlanKind::Kucera(kb) => {
                let behavior = if malicious {
                    FailureBehavior::Flip
                } else {
                    FailureBehavior::Drop
                };
                TrialOutcome::pass(
                    kb.run(g, fault.p.get(), behavior, seed, bit)
                        .all_correct(bit),
                )
            }
            PlanKind::SelfTimed(plan) => TrialOutcome::pass(if malicious {
                plan.run(g, fault, FlipMpAdversary, seed, bit)
                    .all_correct(bit)
            } else {
                plan.run(g, fault, SilentMpAdversary, seed, bit)
                    .all_correct(bit)
            }),
            PlanKind::Expanded(plan) => TrialOutcome::pass(if malicious {
                plan.run(g, fault, LieOrJamAdversary::new(bit), seed, bit)
                    .all_correct(bit)
            } else {
                plan.run(g, fault, SilentRadioAdversary, seed, bit)
                    .all_correct(bit)
            }),
            PlanKind::Decay(cfg) => TrialOutcome::completed(
                run_decay(g, g.node(0), *cfg, fault, seed).completion_round(),
            ),
        }
    }
}

/// Formats a probability compactly (at most 4 decimal places, no
/// trailing zeros beyond what `{}` prints for round values).
#[must_use]
pub fn fmt_p(p: f64) -> String {
    let rounded = (p * 1e4).round() / 1e4;
    format!("{rounded}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_is_connected_and_labelled() {
        for family in standard_families() {
            let g = family.build();
            assert!(g.node_count() >= 33, "{}", family.label());
            assert!(
                randcast_graph::traversal::is_connected(&g),
                "{}",
                family.label()
            );
            assert!(!family.label().is_empty());
        }
    }

    #[test]
    fn random_tree_build_is_deterministic() {
        let f = GraphFamily::RandomTree { n: 20, seed: 9 };
        let a = f.build();
        let b = f.build();
        assert_eq!(a.node_count(), b.node_count());
        for v in a.nodes() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn simple_omission_scenario_runs_in_both_models() {
        for model in [Model::Mp, Model::Radio] {
            let prep = Scenario {
                graph: GraphFamily::Star(4),
                algorithm: Algorithm::Simple,
                model,
                fault: FaultConfig::omission(0.3),
            }
            .prepare();
            assert!(prep.rounds() > 0);
            assert!(prep.phase_len().is_some());
            // Deterministic per seed.
            assert_eq!(prep.trial(5), prep.trial(5));
        }
    }

    #[test]
    fn params_cover_the_spec() {
        let prep = Scenario {
            graph: GraphFamily::Grid(3, 3),
            algorithm: Algorithm::Flood { horizon_scale: 2 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.4),
        }
        .prepare();
        let params = prep.params();
        let keys: Vec<&str> = params.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "graph",
                "n",
                "algorithm",
                "model",
                "fault",
                "p",
                "m",
                "rounds"
            ]
        );
        assert_eq!(params[0].1, "grid-3x3");
        assert_eq!(params[5].1, "0.4");
    }

    #[test]
    fn flood_horizon_scales() {
        let base = Scenario {
            graph: GraphFamily::Path(8),
            algorithm: Algorithm::Flood { horizon_scale: 1 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.2),
        };
        let doubled = Scenario {
            algorithm: Algorithm::Flood { horizon_scale: 2 },
            ..base
        };
        assert_eq!(doubled.prepare().rounds(), 2 * base.prepare().rounds());
    }

    #[test]
    fn malicious_radio_uses_lie_or_jam_and_stays_feasible_below_threshold() {
        let delta = 4;
        let p = crate::feasibility::radio_threshold(delta) * 0.4;
        let prep = Scenario {
            graph: GraphFamily::Star(delta),
            algorithm: Algorithm::Simple,
            model: Model::Radio,
            fault: FaultConfig::malicious(p),
        }
        .prepare();
        let ok = (0..30).filter(|&s| prep.trial(s).success).count();
        assert!(
            ok >= 25,
            "feasible-side star should mostly succeed: {ok}/30"
        );
    }

    #[test]
    #[should_panic(expected = "does not run in the radio model")]
    fn invalid_model_combo_panics() {
        let _ = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Kucera,
            model: Model::Radio,
            fault: FaultConfig::omission(0.1),
        }
        .prepare();
    }

    #[test]
    #[should_panic(expected = "omission faults only")]
    fn decay_rejects_malicious() {
        let _ = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Decay { epoch_factor: 1 },
            model: Model::Radio,
            fault: FaultConfig::malicious(0.1),
        }
        .prepare();
    }

    #[test]
    fn fmt_p_truncates() {
        assert_eq!(fmt_p(0.3), "0.3");
        assert_eq!(fmt_p(0.123456), "0.1235");
        assert_eq!(fmt_p(0.0), "0");
    }
}
