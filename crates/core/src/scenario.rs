//! Declarative experiment scenarios: graph family × algorithm × model ×
//! fault, as plain data.
//!
//! A [`Scenario`] names everything needed to run one broadcast
//! experiment cell — which graph to build, which algorithm to plan,
//! which communication model to run it in, and which fault process (and
//! hence which worst-case adversary) to apply. [`Scenario::prepare`]
//! compiles it into a [`PreparedScenario`] holding the built graph and
//! plan, whose [`trial`](PreparedScenario::trial) method runs one
//! seeded execution. The sweep driver
//! ([`Sweep::scenario`](crate::sweep::Sweep::scenario)) accepts
//! scenarios directly, so experiment binaries reduce to data: a list of
//! scenarios plus trial counts.
//!
//! Adversary selection is part of the spec: each (model, fault-kind)
//! pair gets the binding worst case used throughout the paper's
//! experiments — silent transmitters for omission faults, the flip
//! adversary for (limited-)malicious message passing, and the
//! lie-or-jam adversary for malicious radio.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng as _;

use randcast_engine::adversary::{FlipMpAdversary, LieOrJamAdversary};
use randcast_engine::fault::{FaultConfig, FaultKind};
use randcast_engine::flood_fast::{FastFlood, FastFloodVariant};
use randcast_engine::kernel::{FaultModel, FaultTapes, FlipFault, LieOrJamFault, LANES};
use randcast_engine::mp::SilentMpAdversary;
use randcast_engine::radio::SilentRadioAdversary;
use randcast_engine::radio_fast::{FastRadio, FastRadioSchedule};
use randcast_engine::simple_fast::FastSimple;
use randcast_graph::shard::ShardPlan;
use randcast_graph::{generators, CsrGraph, Graph};
use randcast_stats::chernoff;

use crate::decay::{run_decay, DecayConfig};
use crate::flood::{theorem_horizon, FloodPlan, FloodVariant};
use crate::kucera::{FailureBehavior, KuceraBroadcast, KuceraError};
use crate::radio_robust::ExpandedPlan;
use crate::radio_sched::greedy_schedule;
use crate::selftimed::SelfTimedPlan;
use crate::simple::SimplePlan;
use crate::sweep::TrialOutcome;

/// The source bit broadcast in every scenario trial.
pub const SOURCE_BIT: bool = true;

/// Node count at or above which [`Algorithm::Flood`] in the
/// message-passing model is executed by the bitset fast path
/// ([`randcast_engine::flood_fast`]) instead of the general `MpNetwork`
/// engine. The two are statistically equivalent (pinned by
/// `tests/flood_equivalence.rs`) but draw different RNG streams, so the
/// threshold sits above every pre-existing experiment size to keep
/// their per-seed outcomes byte-stable.
pub const FLOOD_FAST_MIN_N: usize = 4096;

/// Node count at or above which [`Algorithm::Decay`] in the radio
/// model is executed by the bitset collision-counting fast path
/// ([`randcast_engine::radio_fast`]) instead of the per-node
/// `RadioNetwork` automata. The two engines share the Decay coin tapes
/// and are statistically equivalent (pinned by
/// `tests/radio_equivalence.rs`, exactly equal at `p = 0`), but their
/// fault coins come from different RNG streams, so the threshold sits
/// above every pre-existing experiment size to keep per-seed outcomes
/// byte-stable. Omission and limited-malicious (the flip rule) both
/// cross to the fast path; full-malicious Decay is rejected at every
/// size — jamming strategies need [`Algorithm::Expanded`].
pub const RADIO_FAST_MIN_N: usize = 4096;

/// Node count at or above which [`Algorithm::Simple`] is executed by
/// the geometric-draw / vote-counting fast path
/// ([`randcast_engine::simple_fast`]) instead of the per-node automata.
/// The two are statistically equivalent (pinned by
/// `tests/simple_equivalence.rs` and `tests/malicious_equivalence.rs`)
/// but draw different RNG streams, so the threshold sits above every
/// pre-existing experiment size to keep their per-seed outcomes
/// byte-stable. The fast kernel realizes omission (both models),
/// (limited-)malicious MP (the flip rule), and limited-malicious radio
/// (the clamped lie-or-jam speaker rule); only full-malicious radio
/// Simple stays on the general engine at every size — the jamming half
/// of the lie-or-jam adversary needs per-round adjacency scans.
pub const SIMPLE_FAST_MIN_N: usize = 4096;

/// Node count at or above which [`ShardSpec::Auto`] starts running
/// batched fast-path trials shard-at-a-time. Below it one frontier pass
/// touches at most a few hundred MB of CSR, so sharding only adds view
/// bookkeeping; above it the per-shard working set is what keeps peak
/// RSS inside [`SHARD_AUTO_BUDGET_BYTES`]. Sharded passes are
/// **bit-identical** to monolithic ones (the engines pin this), so the
/// threshold is a pure performance knob — crossing it never changes an
/// outcome vector.
pub const SHARD_AUTO_MIN_N: usize = 8 << 20;

/// Per-shard adjacency budget (bytes) that [`ShardSpec::Auto`] targets
/// when it engages: shards are sized so one shard's offsets + targets
/// stay under this, keeping the hot working set cache- and RSS-friendly
/// at `n = 10⁷`–`10⁸`.
pub const SHARD_AUTO_BUDGET_BYTES: usize = 1 << 30;

/// How a fast-path plan partitions its node range for shard-at-a-time
/// frontier passes. Sharding never changes outcomes — sharded and
/// monolithic passes are bit-identical for every plan
/// (`crates/core/tests/shard_equivalence.rs`) — so this knob tunes
/// locality and peak RSS only. It applies to the batched entry points
/// ([`PreparedScenario::trial_block`] /
/// [`PreparedScenario::trial_lane`]); scalar
/// [`trial`](PreparedScenario::trial) keeps its sequential RNG stream,
/// whose draw order cannot be sharded without changing it. The same
/// contract extends to the out-of-core kernels behind the scale
/// binaries: their store backend (`--store ram|disk`), pipelined
/// segment prefetch (`--prefetch on|off`), and drain/merge thread
/// count are all byte-invisible too, so any `threads × shards ×
/// prefetch × store` combination replays the identical trial.
/// Deliberately
/// **not** part of [`PreparedScenario::params`]: two runs differing
/// only in sharding must produce identical reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ShardSpec {
    /// One shard below [`SHARD_AUTO_MIN_N`] nodes; above it, enough
    /// shards to keep one shard's adjacency under
    /// [`SHARD_AUTO_BUDGET_BYTES`].
    #[default]
    Auto,
    /// Exactly this many node-range shards (clamped to the node count;
    /// `1` means monolithic). `Fixed(0)` is rejected by
    /// [`Scenario::validate`].
    Fixed(usize),
}

/// A named graph constructor; the broadcast source is always node 0.
/// `Hash`/`Eq` cover the full spec (including construction seeds), so a
/// family value is a usable cache key for its built graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GraphFamily {
    /// Path with `len` edges.
    Path(usize),
    /// Rows × columns grid.
    Grid(usize, usize),
    /// Balanced tree of the given arity and depth.
    BalancedTree(usize, usize),
    /// Hypercube of the given dimension.
    Hypercube(usize),
    /// Uniform random tree on `n` nodes, built from `seed`.
    RandomTree {
        /// Node count.
        n: usize,
        /// Construction seed (part of the spec, so labels are stable).
        seed: u64,
    },
    /// Star with the given number of leaves (center is node 0).
    Star(usize),
    /// Complete graph on `n` nodes.
    Complete(usize),
    /// The paper's three-layer lower-bound graph `G(m)`.
    LowerBound(usize),
    /// Erdős–Rényi `G(n, q)` conditioned on connectivity, with
    /// `q = avg_deg / (n − 1)` (a random recursive-tree skeleton adds
    /// at most 2 to the realized average degree). Built by geometric
    /// skip-sampling, so `n = 10⁶` is practical.
    Gnp {
        /// Node count.
        n: usize,
        /// Target average degree (before the connectivity skeleton).
        avg_deg: usize,
        /// Construction seed (part of the spec, so labels are stable).
        seed: u64,
    },
    /// Random geometric (unit-disk) graph with radius chosen so the
    /// expected degree is `deg` (`r = √(deg / (π(n−1)))`). **May be
    /// disconnected** below `deg ≈ ln n` — the almost-complete
    /// broadcast regime; only the fast kernels
    /// ([`Algorithm::FloodFast`], [`Algorithm::DecayFast`],
    /// [`Algorithm::SimpleFast`]) accept it.
    RandomGeometric {
        /// Node count.
        n: usize,
        /// Target expected degree.
        deg: usize,
        /// Construction seed.
        seed: u64,
    },
    /// Preferential-attachment (Barabási–Albert) graph: node `v`
    /// attaches to `min(m, v)` earlier nodes, degree-proportionally.
    /// Connected, with scale-free hubs.
    PreferentialAttachment {
        /// Node count.
        n: usize,
        /// Edges attached per arriving node.
        m: usize,
        /// Construction seed.
        seed: u64,
    },
}

impl GraphFamily {
    /// The family's table label (e.g. `grid-8x8`, `G(5)`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            GraphFamily::Path(len) => format!("path-{len}"),
            GraphFamily::Grid(r, c) => format!("grid-{r}x{c}"),
            GraphFamily::BalancedTree(a, d) => format!("tree-{a}-{d}"),
            GraphFamily::Hypercube(dim) => format!("hypercube-{dim}"),
            GraphFamily::RandomTree { n, .. } => format!("rand-tree-{n}"),
            GraphFamily::Star(leaves) => format!("star-{leaves}"),
            GraphFamily::Complete(n) => format!("complete-{n}"),
            GraphFamily::LowerBound(m) => format!("G({m})"),
            GraphFamily::Gnp { n, avg_deg, .. } => format!("gnp-{n}-d{avg_deg}"),
            GraphFamily::RandomGeometric { n, deg, .. } => format!("rgg-{n}-d{deg}"),
            GraphFamily::PreferentialAttachment { n, m, .. } => format!("pa-{n}-m{m}"),
        }
    }

    /// Whether the built graph can be disconnected from the source —
    /// such families are only valid with algorithms that measure the
    /// informed fraction instead of assuming reachability
    /// ([`Algorithm::FloodFast`], [`Algorithm::DecayFast`],
    /// [`Algorithm::SimpleFast`]).
    #[must_use]
    pub fn may_be_disconnected(&self) -> bool {
        matches!(self, GraphFamily::RandomGeometric { .. })
    }

    /// Builds the graph.
    #[must_use]
    pub fn build(&self) -> Graph {
        match *self {
            GraphFamily::Path(len) => generators::path(len),
            GraphFamily::Grid(r, c) => generators::grid(r, c),
            GraphFamily::BalancedTree(a, d) => generators::balanced_tree(a, d),
            GraphFamily::Hypercube(dim) => generators::hypercube(dim),
            GraphFamily::RandomTree { n, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                generators::random_tree(n, &mut rng)
            }
            GraphFamily::Star(leaves) => generators::star(leaves),
            GraphFamily::Complete(n) => generators::complete(n),
            GraphFamily::LowerBound(m) => generators::lower_bound_graph(m),
            GraphFamily::Gnp { n, avg_deg, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let q = (avg_deg as f64 / (n.max(2) - 1) as f64).min(1.0);
                generators::gnp_connected(n, q, &mut rng)
            }
            GraphFamily::RandomGeometric { n, deg, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let radius = (deg as f64 / (std::f64::consts::PI * (n.max(2) - 1) as f64)).sqrt();
                generators::random_geometric(n, radius.min(1.0), &mut rng)
            }
            GraphFamily::PreferentialAttachment { n, m, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                generators::preferential_attachment(n, m, &mut rng)
            }
        }
    }
}

/// The standard six-graph suite shared by several experiments.
#[must_use]
pub fn standard_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::Path(32),
        GraphFamily::Grid(8, 8),
        GraphFamily::BalancedTree(2, 6),
        GraphFamily::Hypercube(6),
        GraphFamily::RandomTree { n: 64, seed: 12345 },
        GraphFamily::LowerBound(5),
    ]
}

/// The communication model a scenario runs in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Model {
    /// Synchronous message passing.
    Mp,
    /// Radio (single shared channel, collision = silence).
    Radio,
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Model::Mp => "mp",
            Model::Radio => "radio",
        })
    }
}

/// Which broadcast algorithm the scenario plans. The fault kind on the
/// [`Scenario`] selects the omission or malicious variant where the
/// paper distinguishes them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// `Simple-Omission` / `Simple-Malicious` (Theorems 2.1/2.2/2.4),
    /// per the fault kind; runs in both models. Under omission faults
    /// at `n ≥` [`SIMPLE_FAST_MIN_N`] the harness transparently selects
    /// the statistically equivalent geometric-draw fast path.
    Simple,
    /// The paper's Simple protocol forced onto the large-`n` fast path
    /// ([`randcast_engine::simple_fast`]) regardless of size — omission
    /// faults only, both models (under the Simple schedule the two
    /// models are the same process). Accepts possibly-disconnected
    /// families: trials additionally report the correct fraction and
    /// the almost-complete (`1 − 1/n`) time.
    SimpleFast {
        /// Explicit phase length `m`, or `None` for the Theorem 2.1
        /// prescription `⌈2 ln n / ln(1/p)⌉`. Fixing `m` while sweeping
        /// `p` exposes the completion collapse at `p* = n^{−1/m}` —
        /// the feasibility-threshold bracketing of `exp_scale_simple`.
        phase_len: Option<usize>,
    },
    /// BFS-tree flooding (Theorem 3.1, MP + omission). The horizon is
    /// the Theorem 3.1 prescription scaled by `horizon_scale`. At
    /// `n ≥` [`FLOOD_FAST_MIN_N`] the harness transparently selects the
    /// statistically equivalent bitset fast path.
    Flood {
        /// Multiplier on the prescribed horizon (1 = the theorem's).
        horizon_scale: usize,
    },
    /// BFS-tree flooding forced onto the large-`n` fast path
    /// ([`randcast_engine::flood_fast`]) regardless of size. The only
    /// algorithm accepting possibly-disconnected families: trials
    /// additionally report the informed fraction and the
    /// almost-complete (`1 − 1/n`) time.
    FloodFast {
        /// Multiplier on the prescribed Theorem 3.1 horizon.
        horizon_scale: usize,
    },
    /// Kučera composition broadcasting (Theorem 3.2, MP).
    Kucera,
    /// The self-timed sliding-majority variant (§2 remarks, MP).
    SelfTimed,
    /// `Omission-Radio` / `Malicious-Radio`: the Theorem 3.4 expansion
    /// of a greedy fault-free schedule (radio), per the fault kind.
    Expanded,
    /// The randomized Decay baseline (radio, omission only). At
    /// `n ≥` [`RADIO_FAST_MIN_N`] the harness transparently selects
    /// the statistically equivalent collision-counting fast path.
    Decay {
        /// Multiplier on the classical epoch count.
        epoch_factor: usize,
    },
    /// Decay forced onto the large-`n` radio fast path
    /// ([`randcast_engine::radio_fast`]) regardless of size. Together
    /// with [`Algorithm::FloodFast`] this is the only algorithm
    /// accepting possibly-disconnected families: trials additionally
    /// report the informed fraction and the almost-complete
    /// (`1 − 1/n`) time.
    DecayFast {
        /// Multiplier on the classical epoch count.
        epoch_factor: usize,
    },
}

impl Algorithm {
    /// The algorithm's table label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Simple => "simple",
            Algorithm::SimpleFast { .. } => "simple-fast",
            Algorithm::Flood { .. } => "flood",
            Algorithm::FloodFast { .. } => "flood-fast",
            Algorithm::Kucera => "kucera",
            Algorithm::SelfTimed => "self-timed",
            Algorithm::Expanded => "expanded",
            Algorithm::Decay { .. } => "decay",
            Algorithm::DecayFast { .. } => "decay-fast",
        }
    }
}

/// Why a [`Scenario`] is invalid. Produced by [`Scenario::validate`] /
/// [`Scenario::try_prepare`] **before any trial runs**, so a
/// misconfigured sweep fails fast with a usable message instead of
/// aborting mid-run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ScenarioError {
    /// The algorithm does not run in the requested communication model.
    ModelMismatch {
        /// The algorithm's table name.
        algorithm: &'static str,
        /// The requested model.
        model: Model,
    },
    /// The algorithm rejects the requested fault kind.
    FaultMismatch {
        /// The algorithm's table name.
        algorithm: &'static str,
        /// What the algorithm tolerates.
        tolerates: &'static str,
        /// The rejected fault kind, so the message can point at the
        /// algorithms that do support it
        /// ([`algorithms_supporting`]).
        requested: FaultKind,
    },
    /// The graph family may be disconnected from the source, which only
    /// the informed-fraction-aware fast flood accepts.
    RequiresConnectivity {
        /// The algorithm's table name.
        algorithm: &'static str,
    },
    /// An algorithm parameter is out of its meaningful range.
    InvalidParameter(
        /// What is wrong with it.
        &'static str,
    ),
    /// Kučera planning failed (infeasible `p ≥ 1/2`, or amplification
    /// beyond the repetition cap).
    Kucera(
        /// The underlying planner error.
        KuceraError,
    ),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioError::ModelMismatch { algorithm, model } => {
                write!(f, "{algorithm} does not run in the {model} model")
            }
            ScenarioError::FaultMismatch {
                algorithm,
                tolerates,
                requested,
            } => write!(
                f,
                "{algorithm} tolerates {tolerates}; {requested} faults are supported by: {}",
                algorithms_supporting(requested)
            ),
            ScenarioError::RequiresConnectivity { algorithm } => write!(
                f,
                "{algorithm} requires a graph connected to the source; only the \
                 fast kernels (flood-fast, decay-fast, simple-fast) accept \
                 possibly-disconnected families"
            ),
            ScenarioError::InvalidParameter(what) => f.write_str(what),
            ScenarioError::Kucera(e) => write!(f, "kucera planning failed: {e}"),
        }
    }
}

impl Error for ScenarioError {}

/// The algorithm table names that accept the given fault kind, so a
/// [`ScenarioError::FaultMismatch`] can point at what *would* work
/// instead of only naming what failed.
#[must_use]
pub fn algorithms_supporting(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Omission | FaultKind::LimitedMalicious => {
            "simple, simple-fast, flood, flood-fast, kucera, self-timed, \
             expanded, decay, decay-fast"
        }
        FaultKind::Malicious => {
            "simple, simple-fast (mp only), flood, flood-fast, kucera, \
             self-timed, expanded"
        }
    }
}

impl From<KuceraError> for ScenarioError {
    fn from(e: KuceraError) -> Self {
        ScenarioError::Kucera(e)
    }
}

/// A full declarative experiment cell spec.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Scenario {
    /// The graph family (source is node 0).
    pub graph: GraphFamily,
    /// The algorithm to plan.
    pub algorithm: Algorithm,
    /// The communication model.
    pub model: Model,
    /// The fault process (kind + probability).
    pub fault: FaultConfig,
    /// Shard-at-a-time execution of batched fast-path trials
    /// (outcome-neutral; see [`ShardSpec`]).
    pub shards: ShardSpec,
}

enum PlanKind {
    Simple(SimplePlan),
    SimpleFast(FastSimple),
    Flood(FloodPlan),
    FloodFast(FastFlood),
    Kucera(KuceraBroadcast),
    SelfTimed(SelfTimedPlan),
    Expanded(ExpandedPlan),
    Decay(DecayConfig),
    DecayFast(FastRadio),
}

/// A compiled scenario: graph + plan, ready to run seeded trials. The
/// graph is held behind an [`Arc`] so sweeps spanning several cells
/// over the same `(family, seed)` share one built copy.
pub struct PreparedScenario {
    scenario: Scenario,
    graph: Arc<Graph>,
    plan: PlanKind,
    /// Resolved from the scenario's [`ShardSpec`] at prepare time;
    /// `None` means monolithic passes.
    shard_plan: Option<ShardPlan>,
}

impl Scenario {
    /// Checks the Algorithm × Model × fault-kind × graph-family
    /// combination *without building anything*, so sweeps can reject
    /// misconfigured cells up front.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] describing the first violated
    /// constraint. Kučera amplification limits that depend on the built
    /// graph are only caught by [`try_prepare`](Self::try_prepare); the
    /// parameter-level `p ≥ 1/2` infeasibility is caught here.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let name = self.algorithm.name();
        let mismatch = |model| {
            Err(ScenarioError::ModelMismatch {
                algorithm: name,
                model,
            })
        };
        match (self.algorithm, self.model) {
            (Algorithm::Simple, _) => {}
            (Algorithm::SimpleFast { phase_len }, model) => {
                // The fast kernel realizes the flip rule (MP, Theorem
                // 2.2) and the clamped lie-or-jam speaker rule
                // (limited-malicious radio, Theorem 2.4). Full-malicious
                // radio needs the general engine's jamming adversary —
                // the auto-fast path for plain Simple applies the same
                // restriction by construction.
                if model == Model::Radio && self.fault.kind == FaultKind::Malicious {
                    return Err(ScenarioError::FaultMismatch {
                        algorithm: name,
                        tolerates: "omission and limited-malicious faults in the radio \
                                    model (use simple for full-malicious radio)",
                        requested: self.fault.kind,
                    });
                }
                if phase_len == Some(0) {
                    return Err(ScenarioError::InvalidParameter(
                        "phase_len must be positive",
                    ));
                }
            }
            (
                Algorithm::Flood { horizon_scale } | Algorithm::FloodFast { horizon_scale },
                Model::Mp,
            ) => {
                if horizon_scale == 0 {
                    return Err(ScenarioError::InvalidParameter(
                        "horizon_scale must be positive",
                    ));
                }
            }
            (Algorithm::Kucera, Model::Mp) => {
                if self.fault.p.get() >= 0.5 {
                    return Err(ScenarioError::Kucera(KuceraError::ErrorBoundTooHigh {
                        q: self.fault.p.get(),
                    }));
                }
            }
            (Algorithm::SelfTimed, Model::Mp) => {}
            (Algorithm::Expanded, Model::Radio) => {}
            (
                Algorithm::Decay { epoch_factor } | Algorithm::DecayFast { epoch_factor },
                Model::Radio,
            ) => {
                // Decay tolerates omission and limited-malicious (the
                // flip rule: a corrupted transmitter still collides,
                // only its value lies). Full-malicious radio jamming
                // needs the Expanded plan's robust schedule — both
                // engines reject it identically at every size.
                if self.fault.kind == FaultKind::Malicious {
                    return Err(ScenarioError::FaultMismatch {
                        algorithm: name,
                        tolerates: "omission and limited-malicious faults \
                                    (use expanded for full-malicious radio)",
                        requested: self.fault.kind,
                    });
                }
                if epoch_factor == 0 {
                    return Err(ScenarioError::InvalidParameter(
                        "epoch_factor must be positive",
                    ));
                }
            }
            (_, model) => return mismatch(model),
        }
        if self.shards == ShardSpec::Fixed(0) {
            return Err(ScenarioError::InvalidParameter(
                "shards must be positive (use ShardSpec::Auto or Fixed(k ≥ 1))",
            ));
        }
        if self.graph.may_be_disconnected()
            && !matches!(
                self.algorithm,
                Algorithm::FloodFast { .. }
                    | Algorithm::DecayFast { .. }
                    | Algorithm::SimpleFast { .. }
            )
        {
            return Err(ScenarioError::RequiresConnectivity { algorithm: name });
        }
        Ok(())
    }

    /// Builds the graph and compiles the algorithm's plan.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for invalid combinations: MP-only
    /// algorithms in the radio model (and vice versa), Decay under
    /// full-malicious faults, possibly-disconnected families outside
    /// the fast flood, or parameters outside an algorithm's feasible
    /// range (e.g. Kučera at `p ≥ 1/2`).
    pub fn try_prepare(self) -> Result<PreparedScenario, ScenarioError> {
        let graph = self.graph.build();
        self.try_prepare_on(graph)
    }

    /// [`try_prepare_on`](Self::try_prepare_on) against a shared,
    /// already-built copy of this scenario's graph — the zero-copy
    /// entry point of the sweep driver's per-`(family, seed)` graph
    /// cache: every cell over the same family clones only the [`Arc`],
    /// not the graph.
    ///
    /// `graph` must be the graph `self.graph.build()` would produce —
    /// the structure is trusted, not re-derived.
    ///
    /// # Errors
    ///
    /// As [`try_prepare`](Self::try_prepare).
    pub fn try_prepare_shared(self, graph: Arc<Graph>) -> Result<PreparedScenario, ScenarioError> {
        self.validate()?;
        let source = graph.node(0);
        let p = self.fault.p.get();
        let malicious = self.fault.kind != FaultKind::Omission;
        let plan = match (self.algorithm, self.model) {
            (Algorithm::Simple, model) => {
                // Full-malicious radio Simple stays on the general
                // engine at every size (the jamming half of lie-or-jam
                // needs per-round adjacency scans); everything else
                // crosses to the statistically equivalent fast path at
                // scale, with the theorem's fault-kind phase length.
                let fast_capable =
                    !(model == Model::Radio && self.fault.kind == FaultKind::Malicious);
                if fast_capable && graph.node_count() >= SIMPLE_FAST_MIN_N {
                    PlanKind::SimpleFast(simple_fast_plan(&graph, self.fault, model, None))
                } else if malicious {
                    PlanKind::Simple(match model {
                        Model::Mp => SimplePlan::malicious_mp(&graph, source, p),
                        Model::Radio => SimplePlan::malicious_radio(&graph, source, p),
                    })
                } else {
                    PlanKind::Simple(SimplePlan::omission_with_p(&graph, source, p))
                }
            }
            (Algorithm::SimpleFast { phase_len }, model) => {
                // Full-malicious radio is rejected by validation;
                // defined on disconnected graphs (unreachable nodes
                // never adopt).
                PlanKind::SimpleFast(simple_fast_plan(&graph, self.fault, model, phase_len))
            }
            (Algorithm::Flood { horizon_scale }, Model::Mp) => {
                let horizon = theorem_horizon(&graph, source, p) * horizon_scale;
                if graph.node_count() >= FLOOD_FAST_MIN_N {
                    // Statistically equivalent fast path for large n.
                    PlanKind::FloodFast(FastFlood::new(
                        CsrGraph::from(graph.as_ref()),
                        source,
                        horizon,
                        FastFloodVariant::Tree,
                    ))
                } else {
                    PlanKind::Flood(FloodPlan::with_horizon(
                        &graph,
                        source,
                        horizon,
                        FloodVariant::Tree,
                    ))
                }
            }
            (Algorithm::FloodFast { horizon_scale }, Model::Mp) => {
                let horizon = theorem_horizon(&graph, source, p) * horizon_scale;
                PlanKind::FloodFast(FastFlood::new(
                    CsrGraph::from(graph.as_ref()),
                    source,
                    horizon,
                    FastFloodVariant::Tree,
                ))
            }
            (Algorithm::Kucera, Model::Mp) => {
                PlanKind::Kucera(KuceraBroadcast::new(&graph, source, p)?)
            }
            (Algorithm::SelfTimed, Model::Mp) => PlanKind::SelfTimed(if malicious {
                SelfTimedPlan::malicious(&graph, source, p)
            } else {
                SelfTimedPlan::omission(&graph, source, p)
            }),
            (Algorithm::Expanded, Model::Radio) => {
                let base = greedy_schedule(&graph, source);
                PlanKind::Expanded(if malicious {
                    ExpandedPlan::malicious(&graph, source, &base, p)
                } else {
                    ExpandedPlan::omission(&graph, source, &base, p)
                })
            }
            (Algorithm::Decay { epoch_factor }, Model::Radio) => {
                let d = randcast_graph::traversal::radius_from(&graph, source);
                let mut cfg = DecayConfig::classical(graph.node_count(), d);
                cfg.epochs *= epoch_factor;
                if graph.node_count() >= RADIO_FAST_MIN_N {
                    // Statistically equivalent fast path for large n.
                    PlanKind::DecayFast(decay_fast_plan(&graph, cfg))
                } else {
                    PlanKind::Decay(cfg)
                }
            }
            (Algorithm::DecayFast { epoch_factor }, Model::Radio) => {
                // Defined on disconnected graphs: parameterize by the
                // source component's radius (equal to the paper's `D`
                // on connected graphs).
                let d = randcast_graph::traversal::reachable_radius(&graph, source);
                let mut cfg = DecayConfig::classical(graph.node_count(), d);
                cfg.epochs *= epoch_factor;
                PlanKind::DecayFast(decay_fast_plan(&graph, cfg))
            }
            (alg, model) => {
                return Err(ScenarioError::ModelMismatch {
                    algorithm: alg.name(),
                    model,
                })
            }
        };
        // Resolve the shard plan once, at prepare time. Only the
        // batch-capable fast-path plans consume it; the general
        // engines never shard.
        let shard_plan = if matches!(
            plan,
            PlanKind::FloodFast(_) | PlanKind::DecayFast(_) | PlanKind::SimpleFast(_)
        ) {
            let n = graph.node_count();
            match self.shards {
                ShardSpec::Fixed(k) => (k > 1 && n > 0).then(|| ShardPlan::uniform(n, k)),
                ShardSpec::Auto => (n >= SHARD_AUTO_MIN_N).then(|| {
                    ShardPlan::for_budget(
                        n,
                        2 * graph.edge_count() as u64,
                        SHARD_AUTO_BUDGET_BYTES as u64,
                    )
                }),
            }
        } else {
            None
        };
        Ok(PreparedScenario {
            scenario: self,
            graph,
            plan,
            shard_plan,
        })
    }

    /// [`try_prepare`](Self::try_prepare) against an already-built copy
    /// of this scenario's graph. Graph construction is deterministic per
    /// family spec, so sweeps spanning several fault levels over the
    /// same `(family, seed)` can call [`GraphFamily::build`] once and
    /// hand each cell a clone instead of rebuilding — at `n = 10⁶` the
    /// build (edge sampling + CSR sort) dominates sweep setup.
    ///
    /// `graph` must be the graph `self.graph.build()` would produce —
    /// the structure is trusted, not re-derived.
    ///
    /// # Errors
    ///
    /// As [`try_prepare`](Self::try_prepare).
    pub fn try_prepare_on(self, graph: Graph) -> Result<PreparedScenario, ScenarioError> {
        self.try_prepare_shared(Arc::new(graph))
    }

    /// [`try_prepare`](Self::try_prepare), panicking on invalid
    /// scenarios — the convenience entry point for experiment binaries
    /// whose scenarios are static.
    ///
    /// # Panics
    ///
    /// Panics with the [`ScenarioError`] message on any invalid
    /// combination.
    #[must_use]
    pub fn prepare(self) -> PreparedScenario {
        self.try_prepare()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }
}

/// Compiles the fast-path Decay kernel for a scenario graph (the
/// source is always node 0).
fn decay_fast_plan(graph: &Graph, cfg: DecayConfig) -> FastRadio {
    FastRadio::new(
        CsrGraph::from(graph),
        graph.node(0),
        cfg.total_rounds(),
        FastRadioSchedule::Decay {
            epoch_len: cfg.epoch_len,
        },
    )
}

/// Compiles the fast-path Simple kernel for a scenario graph (the
/// source is always node 0). Unless an explicit `m` is given, the
/// phase length is the theorem prescription for the fault kind —
/// Theorem 2.1 for omission, Theorem 2.2 for (limited-)malicious MP,
/// Theorem 2.4 for limited-malicious radio — exactly as the general
/// [`SimplePlan`] constructors compute it, so the two engines stay
/// parameter-identical. An explicit `m` bypasses the prescriptions'
/// feasibility asserts, which is how threshold sweeps trace across
/// `p*` without panicking.
fn simple_fast_plan(
    graph: &Graph,
    fault: FaultConfig,
    model: Model,
    phase_len: Option<usize>,
) -> FastSimple {
    let m = phase_len.unwrap_or_else(|| {
        let n = graph.node_count().max(2);
        let p = fault.p.get();
        match (fault.kind, model) {
            (FaultKind::Omission, _) => chernoff::phase_len_omission(n, p),
            (_, Model::Mp) => chernoff::phase_len_malicious_mp(n, p),
            (_, Model::Radio) => chernoff::phase_len_malicious_radio(n, p, graph.max_degree()),
        }
    });
    FastSimple::new(&CsrGraph::from(graph), graph.node(0), m)
}

impl PreparedScenario {
    /// The built graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph.as_ref()
    }

    /// The fast-kernel [`FaultModel`] realizing this scenario's binding
    /// adversary, or `None` when trials run the hard-wired omission
    /// kernels (whose outputs must stay byte-identical) or a general
    /// engine. The mapping mirrors the scalar adversary table: the flip
    /// rule for (limited-)malicious MP and for limited-malicious Decay,
    /// the lie-or-jam speaker rule for limited-malicious radio Simple.
    fn fast_fault_model(&self) -> Option<Box<dyn FaultModel>> {
        if self.scenario.fault.kind == FaultKind::Omission {
            return None;
        }
        let p = self.scenario.fault.p.get();
        match (&self.plan, self.scenario.model) {
            (PlanKind::SimpleFast(_), Model::Radio) => Some(Box::new(LieOrJamFault::new(p))),
            (PlanKind::SimpleFast(_) | PlanKind::FloodFast(_) | PlanKind::DecayFast(_), _) => {
                Some(Box::new(FlipFault::new(p)))
            }
            _ => None,
        }
    }

    /// The scenario this was compiled from.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Node count (the almost-safety `n`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// Total rounds one trial executes.
    #[must_use]
    pub fn rounds(&self) -> usize {
        match &self.plan {
            PlanKind::Simple(plan) => plan.total_rounds(),
            PlanKind::SimpleFast(plan) => plan.total_rounds(),
            PlanKind::Flood(plan) => plan.horizon(),
            PlanKind::FloodFast(plan) => plan.horizon(),
            PlanKind::Kucera(kb) => kb.time(),
            PlanKind::SelfTimed(plan) => plan.horizon(),
            PlanKind::Expanded(plan) => plan.total_rounds(),
            PlanKind::Decay(cfg) => cfg.total_rounds(),
            PlanKind::DecayFast(plan) => plan.horizon(),
        }
    }

    /// Whether trials execute on a bitset fast path — forced via
    /// [`Algorithm::FloodFast`] / [`Algorithm::DecayFast`] /
    /// [`Algorithm::SimpleFast`], or auto-selected for
    /// [`Algorithm::Flood`] at `n ≥` [`FLOOD_FAST_MIN_N`],
    /// [`Algorithm::Decay`] at `n ≥` [`RADIO_FAST_MIN_N`], and
    /// omission [`Algorithm::Simple`] at `n ≥` [`SIMPLE_FAST_MIN_N`].
    #[must_use]
    pub fn uses_fast_path(&self) -> bool {
        matches!(
            self.plan,
            PlanKind::FloodFast(_) | PlanKind::DecayFast(_) | PlanKind::SimpleFast(_)
        )
    }

    /// The per-phase repetition length `m`, for algorithms that have
    /// one.
    #[must_use]
    pub fn phase_len(&self) -> Option<usize> {
        match &self.plan {
            PlanKind::Simple(plan) => Some(plan.phase_len()),
            PlanKind::SimpleFast(plan) => Some(plan.phase_len()),
            PlanKind::SelfTimed(plan) => Some(plan.window()),
            PlanKind::Expanded(plan) => Some(plan.phase_len()),
            PlanKind::Flood(_)
            | PlanKind::FloodFast(_)
            | PlanKind::Kucera(_)
            | PlanKind::Decay(_)
            | PlanKind::DecayFast(_) => None,
        }
    }

    /// The standard parameter columns: graph, n, algorithm, model,
    /// fault, p, m, rounds.
    #[must_use]
    pub fn params(&self) -> Vec<(String, String)> {
        let sc = &self.scenario;
        vec![
            ("graph".into(), sc.graph.label()),
            ("n".into(), self.n().to_string()),
            ("algorithm".into(), sc.algorithm.name().into()),
            ("model".into(), sc.model.to_string()),
            ("fault".into(), sc.fault.kind.to_string()),
            ("p".into(), fmt_p(sc.fault.p.get())),
            (
                "m".into(),
                self.phase_len()
                    .map_or_else(|| "-".into(), |m| m.to_string()),
            ),
            ("rounds".into(), self.rounds().to_string()),
        ]
    }

    /// Runs one trial from the given seed, against the binding
    /// adversary for the scenario's (model, fault-kind) pair.
    #[must_use]
    pub fn trial(&self, seed: u64) -> TrialOutcome {
        let g = self.graph.as_ref();
        let fault = self.scenario.fault;
        let malicious = fault.kind != FaultKind::Omission;
        let bit = SOURCE_BIT;
        match &self.plan {
            PlanKind::Simple(plan) => match self.scenario.model {
                Model::Mp => TrialOutcome::pass(if malicious {
                    plan.run_mp(g, fault, FlipMpAdversary, seed, bit)
                        .all_correct(bit)
                } else {
                    plan.run_mp(g, fault, SilentMpAdversary, seed, bit)
                        .all_correct(bit)
                }),
                Model::Radio => TrialOutcome::pass(if malicious {
                    plan.run_radio(g, fault, LieOrJamAdversary::new(bit), seed, bit)
                        .all_correct(bit)
                } else {
                    plan.run_radio(g, fault, SilentRadioAdversary, seed, bit)
                        .all_correct(bit)
                }),
            },
            PlanKind::SimpleFast(plan) => {
                // Success iff every node holds the source bit; the
                // fraction and almost-complete round mirror the flood
                // metrics. Malicious kinds run the model kernel as
                // lane 0 of block `seed`; omission keeps the scalar
                // geometric-draw stream byte-stable.
                let out = match self.fast_fault_model() {
                    Some(model) => plan.run_lane_model(model.as_ref(), seed, 0),
                    None => plan.run(fault.p.get(), seed),
                };
                TrialOutcome::flooded(
                    out.completion_round(),
                    out.correct_fraction(),
                    out.almost_complete_round(),
                )
            }
            PlanKind::Flood(plan) => {
                TrialOutcome::completed(plan.run(g, fault, seed).completion_round())
            }
            PlanKind::FloodFast(plan) => {
                // Omission runs the byte-stable silent-fault frontier;
                // malicious kinds run the flip value pass (deliveries
                // on the BFS schedule, corrupted values, correct-set
                // reporting) as lane 0 of block `seed` — the same
                // semantics the general flood's flip adversary has.
                let out = match self.fast_fault_model() {
                    Some(model) => plan.run_lane_model(model.as_ref(), &FaultTapes::new(seed), 0),
                    None => plan.run(fault.p.get(), seed),
                };
                TrialOutcome::flooded(
                    out.completion_round(),
                    out.informed_fraction(),
                    out.almost_complete_round(),
                )
            }
            PlanKind::Kucera(kb) => {
                let behavior = if malicious {
                    FailureBehavior::Flip
                } else {
                    FailureBehavior::Drop
                };
                TrialOutcome::pass(
                    kb.run(g, fault.p.get(), behavior, seed, bit)
                        .all_correct(bit),
                )
            }
            PlanKind::SelfTimed(plan) => TrialOutcome::pass(if malicious {
                plan.run(g, fault, FlipMpAdversary, seed, bit)
                    .all_correct(bit)
            } else {
                plan.run(g, fault, SilentMpAdversary, seed, bit)
                    .all_correct(bit)
            }),
            PlanKind::Expanded(plan) => TrialOutcome::pass(if malicious {
                plan.run(g, fault, LieOrJamAdversary::new(bit), seed, bit)
                    .all_correct(bit)
            } else {
                plan.run(g, fault, SilentRadioAdversary, seed, bit)
                    .all_correct(bit)
            }),
            PlanKind::Decay(cfg) => TrialOutcome::completed(
                run_decay(g, g.node(0), *cfg, fault, seed).completion_round(),
            ),
            PlanKind::DecayFast(plan) => {
                // Omission keeps the byte-stable collision frontier;
                // limited-malicious runs the flip value pass (the
                // fault-free participation schedule with corrupted
                // values) as lane 0 of block `seed`.
                let out = match self.fast_fault_model() {
                    Some(model) => plan.run_lane_model(model.as_ref(), seed, 0),
                    None => plan.run(fault.p.get(), seed),
                };
                TrialOutcome::flooded(
                    out.completion_round(),
                    out.informed_fraction(),
                    out.almost_complete_round(),
                )
            }
        }
    }

    /// The shard plan resolved from the scenario's [`ShardSpec`]:
    /// `None` when batched trials run monolithic passes. Sharding is
    /// outcome-neutral, so this is diagnostic only (e.g. for benches
    /// reporting their shard-pass geometry).
    #[must_use]
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard_plan.as_ref()
    }

    /// Whether trials can execute in bit-sliced blocks of [`LANES`]
    /// coupled trials via [`trial_block`](Self::trial_block) — exactly
    /// the plans on a bitset fast path
    /// ([`uses_fast_path`](Self::uses_fast_path)).
    #[must_use]
    pub fn supports_batch(&self) -> bool {
        self.uses_fast_path()
    }

    /// Runs one bit-sliced block of [`LANES`] trials rooted at
    /// `block_seed` and returns the outcomes in lane order. Element
    /// `k` is byte-identical to
    /// [`trial_lane`](Self::trial_lane)`(block_seed, k)` — the
    /// engines' lane-coupling guarantee — and each lane is distributed
    /// exactly like a scalar [`trial`](Self::trial) from an
    /// independent seed.
    ///
    /// # Panics
    ///
    /// Panics when the plan is not batch-capable
    /// ([`supports_batch`](Self::supports_batch)).
    #[must_use]
    pub fn trial_block(&self, block_seed: u64) -> Vec<TrialOutcome> {
        self.trial_block_threads(block_seed, 1)
    }

    /// [`trial_block`](Self::trial_block) with the block's independent
    /// shard passes fanned across up to `threads` scoped workers —
    /// **byte-identical** to the single-threaded block for every thread
    /// count (the engines' deferred-write merge guarantee; see
    /// DESIGN.md, "Parallel shard passes"). Only sharded omission
    /// flood/radio blocks have a parallel backend; every other
    /// combination runs the sequential path unchanged.
    ///
    /// # Panics
    ///
    /// Panics when the plan is not batch-capable
    /// ([`supports_batch`](Self::supports_batch)).
    #[must_use]
    pub fn trial_block_threads(&self, block_seed: u64, threads: usize) -> Vec<TrialOutcome> {
        let p = self.scenario.fault.p.get();
        let lanes = 0..LANES as u32;
        let sp = self.shard_plan.as_ref();
        let model = self.fast_fault_model();
        match &self.plan {
            PlanKind::SimpleFast(plan) => {
                let out = match (&model, sp) {
                    (Some(m), Some(sp)) => plan.run_batch_sharded_model(sp, m.as_ref(), block_seed),
                    (Some(m), None) => plan.run_batch_model(m.as_ref(), block_seed),
                    (None, Some(sp)) => plan.run_batch_sharded(sp, p, block_seed),
                    (None, None) => plan.run_batch(p, block_seed),
                };
                lanes
                    .map(|lane| {
                        TrialOutcome::flooded(
                            out.completion_round(lane),
                            out.correct_fraction(lane),
                            out.almost_complete_round(lane),
                        )
                    })
                    .collect()
            }
            PlanKind::FloodFast(plan) => {
                let out = match (&model, sp) {
                    (Some(m), Some(sp)) => {
                        plan.run_batch_sharded_model(sp, m.as_ref(), &FaultTapes::new(block_seed))
                    }
                    (Some(m), None) => {
                        plan.run_batch_model(m.as_ref(), &FaultTapes::new(block_seed))
                    }
                    (None, Some(sp)) => plan.run_batch_sharded_threads(sp, p, block_seed, threads),
                    (None, None) => plan.run_batch(p, block_seed),
                };
                lanes
                    .map(|lane| {
                        TrialOutcome::flooded(
                            out.completion_round(lane),
                            out.informed_fraction(lane),
                            out.almost_complete_round(lane),
                        )
                    })
                    .collect()
            }
            PlanKind::DecayFast(plan) => {
                let out = match (&model, sp) {
                    (Some(m), Some(sp)) => plan.run_batch_sharded_model(sp, m.as_ref(), block_seed),
                    (Some(m), None) => plan.run_batch_model(m.as_ref(), block_seed),
                    (None, Some(sp)) => plan.run_batch_sharded_threads(sp, p, block_seed, threads),
                    (None, None) => plan.run_batch(p, block_seed),
                };
                lanes
                    .map(|lane| {
                        TrialOutcome::flooded(
                            out.completion_round(lane),
                            out.informed_fraction(lane),
                            out.almost_complete_round(lane),
                        )
                    })
                    .collect()
            }
            _ => panic!("trial_block requires a batch-capable fast-path plan"),
        }
    }

    /// Runs lane `lane` of block `block_seed` as one scalar trial —
    /// the reference semantics [`trial_block`](Self::trial_block)
    /// reproduces bit-for-bit, and the entry point for the tail of a
    /// partial block.
    ///
    /// # Panics
    ///
    /// Panics when the plan is not batch-capable or
    /// `lane ≥ `[`LANES`].
    #[must_use]
    pub fn trial_lane(&self, block_seed: u64, lane: u32) -> TrialOutcome {
        assert!((lane as usize) < LANES, "lane {lane} out of range");
        let p = self.scenario.fault.p.get();
        let sp = self.shard_plan.as_ref();
        let model = self.fast_fault_model();
        match &self.plan {
            PlanKind::SimpleFast(plan) => {
                let out = match (&model, sp) {
                    (Some(m), Some(sp)) => {
                        plan.run_lane_sharded_model(sp, m.as_ref(), block_seed, lane)
                    }
                    (Some(m), None) => plan.run_lane_model(m.as_ref(), block_seed, lane),
                    (None, Some(sp)) => plan.run_lane_sharded(sp, p, block_seed, lane),
                    (None, None) => plan.run_lane(p, block_seed, lane),
                };
                TrialOutcome::flooded(
                    out.completion_round(),
                    out.correct_fraction(),
                    out.almost_complete_round(),
                )
            }
            PlanKind::FloodFast(plan) => {
                let out = match (&model, sp) {
                    (Some(m), Some(sp)) => plan.run_lane_sharded_model(
                        sp,
                        m.as_ref(),
                        &FaultTapes::new(block_seed),
                        lane,
                    ),
                    (Some(m), None) => {
                        plan.run_lane_model(m.as_ref(), &FaultTapes::new(block_seed), lane)
                    }
                    (None, Some(sp)) => plan.run_lane_sharded(sp, p, block_seed, lane),
                    (None, None) => plan.run_lane(p, block_seed, lane),
                };
                TrialOutcome::flooded(
                    out.completion_round(),
                    out.informed_fraction(),
                    out.almost_complete_round(),
                )
            }
            PlanKind::DecayFast(plan) => {
                let out = match (&model, sp) {
                    (Some(m), Some(sp)) => {
                        plan.run_lane_sharded_model(sp, m.as_ref(), block_seed, lane)
                    }
                    (Some(m), None) => plan.run_lane_model(m.as_ref(), block_seed, lane),
                    (None, Some(sp)) => plan.run_lane_sharded(sp, p, block_seed, lane),
                    (None, None) => plan.run_lane(p, block_seed, lane),
                };
                TrialOutcome::flooded(
                    out.completion_round(),
                    out.informed_fraction(),
                    out.almost_complete_round(),
                )
            }
            _ => panic!("trial_lane requires a batch-capable fast-path plan"),
        }
    }
}

/// Formats a probability compactly (at most 4 decimal places, no
/// trailing zeros beyond what `{}` prints for round values).
#[must_use]
pub fn fmt_p(p: f64) -> String {
    let rounded = (p * 1e4).round() / 1e4;
    format!("{rounded}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_is_connected_and_labelled() {
        for family in standard_families() {
            let g = family.build();
            assert!(g.node_count() >= 33, "{}", family.label());
            assert!(
                randcast_graph::traversal::is_connected(&g),
                "{}",
                family.label()
            );
            assert!(!family.label().is_empty());
        }
    }

    #[test]
    fn random_tree_build_is_deterministic() {
        let f = GraphFamily::RandomTree { n: 20, seed: 9 };
        let a = f.build();
        let b = f.build();
        assert_eq!(a.node_count(), b.node_count());
        for v in a.nodes() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn simple_omission_scenario_runs_in_both_models() {
        for model in [Model::Mp, Model::Radio] {
            let prep = Scenario {
                graph: GraphFamily::Star(4),
                algorithm: Algorithm::Simple,
                model,
                fault: FaultConfig::omission(0.3),
                shards: ShardSpec::Auto,
            }
            .prepare();
            assert!(prep.rounds() > 0);
            assert!(prep.phase_len().is_some());
            // Deterministic per seed.
            assert_eq!(prep.trial(5), prep.trial(5));
        }
    }

    #[test]
    fn params_cover_the_spec() {
        let prep = Scenario {
            graph: GraphFamily::Grid(3, 3),
            algorithm: Algorithm::Flood { horizon_scale: 2 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.4),
            shards: ShardSpec::Auto,
        }
        .prepare();
        let params = prep.params();
        let keys: Vec<&str> = params.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "graph",
                "n",
                "algorithm",
                "model",
                "fault",
                "p",
                "m",
                "rounds"
            ]
        );
        assert_eq!(params[0].1, "grid-3x3");
        assert_eq!(params[5].1, "0.4");
    }

    #[test]
    fn flood_horizon_scales() {
        let base = Scenario {
            graph: GraphFamily::Path(8),
            algorithm: Algorithm::Flood { horizon_scale: 1 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.2),
            shards: ShardSpec::Auto,
        };
        let doubled = Scenario {
            algorithm: Algorithm::Flood { horizon_scale: 2 },
            ..base
        };
        assert_eq!(doubled.prepare().rounds(), 2 * base.prepare().rounds());
    }

    #[test]
    fn malicious_radio_uses_lie_or_jam_and_stays_feasible_below_threshold() {
        let delta = 4;
        let p = crate::feasibility::radio_threshold(delta) * 0.4;
        let prep = Scenario {
            graph: GraphFamily::Star(delta),
            algorithm: Algorithm::Simple,
            model: Model::Radio,
            fault: FaultConfig::malicious(p),
            shards: ShardSpec::Auto,
        }
        .prepare();
        let ok = (0..30).filter(|&s| prep.trial(s).success).count();
        assert!(
            ok >= 25,
            "feasible-side star should mostly succeed: {ok}/30"
        );
    }

    #[test]
    #[should_panic(expected = "does not run in the radio model")]
    fn invalid_model_combo_panics() {
        let _ = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Kucera,
            model: Model::Radio,
            fault: FaultConfig::omission(0.1),
            shards: ShardSpec::Auto,
        }
        .prepare();
    }

    /// Every Algorithm × Model pairing, checked against the validity
    /// table — misconfigured sweeps must fail in `validate`, before any
    /// graph is built or trial runs.
    #[test]
    fn validate_enumerates_all_algorithm_model_pairs() {
        let algorithms = [
            Algorithm::Simple,
            Algorithm::SimpleFast { phase_len: None },
            Algorithm::Flood { horizon_scale: 1 },
            Algorithm::FloodFast { horizon_scale: 1 },
            Algorithm::Kucera,
            Algorithm::SelfTimed,
            Algorithm::Expanded,
            Algorithm::Decay { epoch_factor: 1 },
            Algorithm::DecayFast { epoch_factor: 1 },
        ];
        for algorithm in algorithms {
            for model in [Model::Mp, Model::Radio] {
                let scenario = Scenario {
                    graph: GraphFamily::Path(4),
                    algorithm,
                    model,
                    fault: FaultConfig::omission(0.1),
                    shards: ShardSpec::Auto,
                };
                let valid = match (algorithm, model) {
                    (Algorithm::Simple | Algorithm::SimpleFast { .. }, _) => true,
                    (
                        Algorithm::Flood { .. }
                        | Algorithm::FloodFast { .. }
                        | Algorithm::Kucera
                        | Algorithm::SelfTimed,
                        m,
                    ) => m == Model::Mp,
                    (
                        Algorithm::Expanded | Algorithm::Decay { .. } | Algorithm::DecayFast { .. },
                        m,
                    ) => m == Model::Radio,
                };
                match scenario.validate() {
                    Ok(()) => assert!(valid, "{}/{model} accepted", algorithm.name()),
                    Err(e) => {
                        assert!(!valid, "{}/{model} rejected: {e}", algorithm.name());
                        assert_eq!(
                            e,
                            ScenarioError::ModelMismatch {
                                algorithm: algorithm.name(),
                                model
                            }
                        );
                        // And try_prepare fails identically without
                        // running a trial.
                        assert_eq!(scenario.try_prepare().err(), Some(e));
                    }
                }
                if !valid {
                    continue;
                }
                // For every valid Algorithm × Model pair, sweep the
                // fault kinds against the tolerance table. The only
                // remaining rejections are full-malicious radio for
                // the Decay engines and the fast Simple kernel; each
                // FaultMismatch must name algorithms that *do* support
                // the requested kind.
                for kind in [
                    FaultKind::Omission,
                    FaultKind::LimitedMalicious,
                    FaultKind::Malicious,
                ] {
                    let cell = Scenario {
                        fault: FaultConfig::new(kind, 0.1).expect("valid p"),
                        ..scenario
                    };
                    let rejected = kind == FaultKind::Malicious
                        && (matches!(
                            algorithm,
                            Algorithm::Decay { .. } | Algorithm::DecayFast { .. }
                        ) || (model == Model::Radio
                            && matches!(algorithm, Algorithm::SimpleFast { .. })));
                    let fault_valid = !rejected;
                    match cell.validate() {
                        Ok(()) => {
                            assert!(fault_valid, "{}/{model}/{kind} accepted", algorithm.name())
                        }
                        Err(e) => {
                            assert!(
                                !fault_valid,
                                "{}/{model}/{kind} rejected: {e}",
                                algorithm.name()
                            );
                            assert!(matches!(e, ScenarioError::FaultMismatch { .. }), "{e:?}");
                            let msg = e.to_string();
                            assert!(
                                msg.contains(&format!(
                                    "{kind} faults are supported by: {}",
                                    algorithms_supporting(kind)
                                )),
                                "hint must list supporters: {msg}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn validate_rejects_fault_and_parameter_misconfigurations() {
        let base = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Decay { epoch_factor: 1 },
            model: Model::Radio,
            fault: FaultConfig::malicious(0.1),
            shards: ShardSpec::Auto,
        };
        assert!(matches!(
            base.validate(),
            Err(ScenarioError::FaultMismatch { .. })
        ));
        let kucera_infeasible = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Kucera,
            model: Model::Mp,
            fault: FaultConfig::limited_malicious(0.6),
            shards: ShardSpec::Auto,
        };
        assert!(matches!(
            kucera_infeasible.validate(),
            Err(ScenarioError::Kucera(KuceraError::ErrorBoundTooHigh { .. }))
        ));
        let zero_scale = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Flood { horizon_scale: 0 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.1),
            shards: ShardSpec::Auto,
        };
        assert!(matches!(
            zero_scale.validate(),
            Err(ScenarioError::InvalidParameter(_))
        ));
        // Disconnected-capable families are fast-flood only.
        let rgg = GraphFamily::RandomGeometric {
            n: 64,
            deg: 4,
            seed: 3,
        };
        assert!(rgg.may_be_disconnected());
        let rgg_flood = Scenario {
            graph: rgg,
            algorithm: Algorithm::Flood { horizon_scale: 1 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.1),
            shards: ShardSpec::Auto,
        };
        assert!(matches!(
            rgg_flood.validate(),
            Err(ScenarioError::RequiresConnectivity { .. })
        ));
        let rgg_fast = Scenario {
            algorithm: Algorithm::FloodFast { horizon_scale: 1 },
            ..rgg_flood
        };
        assert!(rgg_fast.validate().is_ok());
        assert!(rgg_fast.try_prepare().is_ok());
    }

    #[test]
    fn kucera_infeasible_p_is_an_error_not_a_panic() {
        let err = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Kucera,
            model: Model::Mp,
            fault: FaultConfig::limited_malicious(0.5),
            shards: ShardSpec::Auto,
        }
        .try_prepare()
        .err()
        .expect("p = 0.5 is infeasible");
        assert!(err.to_string().contains("1/2"), "{err}");
    }

    #[test]
    fn new_families_build_and_label() {
        let cases = [
            (
                GraphFamily::Gnp {
                    n: 200,
                    avg_deg: 6,
                    seed: 1,
                },
                "gnp-200-d6",
            ),
            (
                GraphFamily::RandomGeometric {
                    n: 200,
                    deg: 9,
                    seed: 2,
                },
                "rgg-200-d9",
            ),
            (
                GraphFamily::PreferentialAttachment {
                    n: 200,
                    m: 3,
                    seed: 3,
                },
                "pa-200-m3",
            ),
        ];
        for (family, label) in cases {
            assert_eq!(family.label(), label);
            let g = family.build();
            assert_eq!(g.node_count(), 200);
            // Deterministic per seed.
            let h = family.build();
            for v in g.nodes() {
                assert_eq!(g.neighbors(v), h.neighbors(v), "{label}");
            }
        }
        // Gnp and PA are connected by construction.
        assert!(randcast_graph::traversal::is_connected(
            &GraphFamily::Gnp {
                n: 300,
                avg_deg: 4,
                seed: 9
            }
            .build()
        ));
        assert!(randcast_graph::traversal::is_connected(
            &GraphFamily::PreferentialAttachment {
                n: 300,
                m: 2,
                seed: 9
            }
            .build()
        ));
    }

    #[test]
    fn flood_selects_fast_path_only_at_scale() {
        let small = Scenario {
            graph: GraphFamily::Grid(8, 8),
            algorithm: Algorithm::Flood { horizon_scale: 1 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(!small.uses_fast_path());
        let large = Scenario {
            graph: GraphFamily::Gnp {
                n: FLOOD_FAST_MIN_N,
                avg_deg: 6,
                seed: 4,
            },
            algorithm: Algorithm::Flood { horizon_scale: 1 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(large.uses_fast_path());
        let forced = Scenario {
            graph: GraphFamily::Grid(8, 8),
            algorithm: Algorithm::FloodFast { horizon_scale: 1 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(forced.uses_fast_path());
    }

    #[test]
    fn prepare_on_prebuilt_graph_matches_prepare() {
        let scenario = Scenario {
            graph: GraphFamily::Gnp {
                n: 120,
                avg_deg: 5,
                seed: 31,
            },
            algorithm: Algorithm::FloodFast { horizon_scale: 1 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        };
        let direct = scenario.try_prepare().expect("valid");
        let shared = scenario
            .try_prepare_on(scenario.graph.build())
            .expect("valid");
        assert_eq!(direct.rounds(), shared.rounds());
        for seed in 0..10 {
            assert_eq!(direct.trial(seed), shared.trial(seed));
        }
    }

    #[test]
    fn fast_path_trial_reports_fraction_and_almost_time() {
        let prep = Scenario {
            graph: GraphFamily::Grid(6, 6),
            algorithm: Algorithm::FloodFast { horizon_scale: 2 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        let out = prep.trial(17);
        assert!(out.success);
        let frac = out.informed_frac.expect("fast path reports fraction");
        assert!((frac - 1.0).abs() < 1e-12);
        let almost = out.almost_rounds.expect("almost-complete reached");
        let full = out.rounds.expect("completed");
        assert!(almost <= full);
        // Deterministic per seed.
        assert_eq!(prep.trial(17), out);
    }

    /// Batched execution rides the fast-path plans, so its fault-model
    /// surface is exactly theirs: the adversary kernels cover
    /// (limited-)malicious MP Simple, limited-malicious radio Simple,
    /// every flood kind, and limited-malicious Decay. The two
    /// remaining rejections — full-malicious radio for `simple-fast` /
    /// `decay-fast` — surface the typed [`FaultMismatch`] at validate
    /// time, and its message names the algorithms that *do* support
    /// the requested kind.
    ///
    /// [`FaultMismatch`]: ScenarioError::FaultMismatch
    #[test]
    fn batch_capable_plans_reject_malicious_like_their_scalar_twins() {
        for (algorithm, model) in [
            (Algorithm::SimpleFast { phase_len: None }, Model::Radio),
            (Algorithm::DecayFast { epoch_factor: 1 }, Model::Radio),
        ] {
            let err = Scenario {
                graph: GraphFamily::Path(4),
                algorithm,
                model,
                fault: FaultConfig::malicious(0.1),
                shards: ShardSpec::Auto,
            }
            .validate()
            .expect_err("full-malicious radio needs a jamming adversary");
            assert!(
                matches!(err, ScenarioError::FaultMismatch { .. }),
                "{err:?}"
            );
            let msg = err.to_string();
            assert!(
                msg.contains("malicious faults are supported by: simple,"),
                "hint must list supporting algorithms: {msg}"
            );
            assert!(msg.contains("expanded"), "{msg}");
        }
        // Everything else is batch-capable under its malicious kinds.
        for (algorithm, model, fault) in [
            (
                Algorithm::SimpleFast { phase_len: None },
                Model::Mp,
                FaultConfig::malicious(0.2),
            ),
            (
                Algorithm::SimpleFast { phase_len: None },
                Model::Radio,
                FaultConfig::limited_malicious(0.05),
            ),
            (
                Algorithm::FloodFast { horizon_scale: 1 },
                Model::Mp,
                FaultConfig::malicious(0.1),
            ),
            (
                Algorithm::DecayFast { epoch_factor: 1 },
                Model::Radio,
                FaultConfig::limited_malicious(0.1),
            ),
        ] {
            let prep = Scenario {
                graph: GraphFamily::Path(4),
                algorithm,
                model,
                fault,
                shards: ShardSpec::Auto,
            }
            .prepare();
            assert!(prep.supports_batch(), "{} {model}", algorithm.name());
        }
    }

    /// `supports_batch` must track the fast path exactly: plain
    /// algorithms become batch-capable at the same `n ≥ 4096`
    /// threshold where the auto-fast selection engages, forced fast
    /// variants are batch-capable at every size, and general-engine
    /// plans never are.
    #[test]
    fn supports_batch_mirrors_the_auto_fast_threshold() {
        let omission = FaultConfig::omission(0.3);
        for (algorithm, model) in [
            (Algorithm::Flood { horizon_scale: 1 }, Model::Mp),
            (Algorithm::Decay { epoch_factor: 2 }, Model::Radio),
            (Algorithm::Simple, Model::Mp),
        ] {
            let small = Scenario {
                graph: GraphFamily::Grid(8, 8),
                algorithm,
                model,
                fault: omission,
                shards: ShardSpec::Auto,
            }
            .prepare();
            assert!(
                !small.supports_batch(),
                "{} below the threshold",
                algorithm.name()
            );
            let large = Scenario {
                graph: GraphFamily::Gnp {
                    n: FLOOD_FAST_MIN_N,
                    avg_deg: 6,
                    seed: 4,
                },
                algorithm,
                model,
                fault: omission,
                shards: ShardSpec::Auto,
            }
            .prepare();
            assert!(
                large.supports_batch(),
                "{} at the threshold",
                algorithm.name()
            );
            assert_eq!(large.supports_batch(), large.uses_fast_path());
        }
        for (algorithm, model) in [
            (Algorithm::FloodFast { horizon_scale: 1 }, Model::Mp),
            (Algorithm::DecayFast { epoch_factor: 1 }, Model::Radio),
            (Algorithm::SimpleFast { phase_len: None }, Model::Mp),
        ] {
            let forced = Scenario {
                graph: GraphFamily::Grid(4, 4),
                algorithm,
                model,
                fault: omission,
                shards: ShardSpec::Auto,
            }
            .prepare();
            assert!(forced.supports_batch(), "forced {}", algorithm.name());
        }
        let general = Scenario {
            graph: GraphFamily::Path(6),
            algorithm: Algorithm::SelfTimed,
            model: Model::Mp,
            fault: FaultConfig::omission(0.1),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(!general.supports_batch());
    }

    #[test]
    #[should_panic(expected = "batch-capable")]
    fn trial_block_panics_off_the_fast_path() {
        let prep = Scenario {
            graph: GraphFamily::Path(6),
            algorithm: Algorithm::SelfTimed,
            model: Model::Mp,
            fault: FaultConfig::omission(0.1),
            shards: ShardSpec::Auto,
        }
        .prepare();
        let _ = prep.trial_block(1);
    }

    #[test]
    #[should_panic(expected = "decay tolerates omission and limited-malicious")]
    fn decay_rejects_full_malicious() {
        let _ = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Decay { epoch_factor: 1 },
            model: Model::Radio,
            fault: FaultConfig::malicious(0.1),
            shards: ShardSpec::Auto,
        }
        .prepare();
    }

    /// Decay accepts limited-malicious (the flip rule) on both engines
    /// but rejects full-malicious jamming at every size, with a typed
    /// error whose message points at the supporting algorithms —
    /// before any graph is built.
    #[test]
    fn decay_fast_rejects_full_malicious_with_typed_error() {
        for algorithm in [
            Algorithm::DecayFast { epoch_factor: 1 },
            Algorithm::Decay { epoch_factor: 1 },
        ] {
            // Both below and above the auto-fast threshold.
            for graph in [
                GraphFamily::Path(4),
                GraphFamily::Gnp {
                    n: RADIO_FAST_MIN_N,
                    avg_deg: 6,
                    seed: 2,
                },
            ] {
                let scenario = Scenario {
                    graph,
                    algorithm,
                    model: Model::Radio,
                    fault: FaultConfig::malicious(0.1),
                    shards: ShardSpec::Auto,
                };
                let err = scenario
                    .validate()
                    .expect_err("full-malicious radio needs a jamming adversary");
                assert_eq!(
                    err,
                    ScenarioError::FaultMismatch {
                        algorithm: algorithm.name(),
                        tolerates: "omission and limited-malicious faults \
                                    (use expanded for full-malicious radio)",
                        requested: FaultKind::Malicious,
                    }
                );
                assert!(err.to_string().contains("supported by:"), "{err}");
                // …while limited-malicious is now valid.
                assert!(Scenario {
                    fault: FaultConfig::limited_malicious(0.1),
                    ..scenario
                }
                .validate()
                .is_ok());
            }
        }
    }

    #[test]
    fn decay_selects_fast_path_only_at_scale() {
        let small = Scenario {
            graph: GraphFamily::Grid(8, 8),
            algorithm: Algorithm::Decay { epoch_factor: 1 },
            model: Model::Radio,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(!small.uses_fast_path());
        let large = Scenario {
            graph: GraphFamily::Gnp {
                n: RADIO_FAST_MIN_N,
                avg_deg: 6,
                seed: 4,
            },
            algorithm: Algorithm::Decay { epoch_factor: 1 },
            model: Model::Radio,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(large.uses_fast_path());
        let forced = Scenario {
            graph: GraphFamily::Grid(8, 8),
            algorithm: Algorithm::DecayFast { epoch_factor: 1 },
            model: Model::Radio,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(forced.uses_fast_path());
        // Same classical parameterization on either path.
        assert_eq!(small.rounds(), forced.rounds());
    }

    #[test]
    fn decay_fast_accepts_disconnected_families_and_reports_fraction() {
        let rgg = GraphFamily::RandomGeometric {
            n: 64,
            deg: 4,
            seed: 3,
        };
        assert!(rgg.may_be_disconnected());
        // Plain decay must keep rejecting it…
        let decay = Scenario {
            graph: rgg,
            algorithm: Algorithm::Decay { epoch_factor: 1 },
            model: Model::Radio,
            fault: FaultConfig::omission(0.2),
            shards: ShardSpec::Auto,
        };
        assert!(matches!(
            decay.validate(),
            Err(ScenarioError::RequiresConnectivity { .. })
        ));
        // …while decay-fast measures the informed fraction.
        let prep = Scenario {
            algorithm: Algorithm::DecayFast { epoch_factor: 2 },
            ..decay
        }
        .try_prepare()
        .expect("valid");
        assert!(prep.uses_fast_path());
        let out = prep.trial(5);
        let frac = out.informed_frac.expect("fast path reports fraction");
        assert!(frac > 0.0 && frac <= 1.0);
        assert_eq!(out.success, (frac - 1.0).abs() < 1e-12);
        assert_eq!(prep.trial(5), out, "deterministic per seed");
    }

    #[test]
    fn simple_selects_fast_path_at_scale_for_all_but_full_malicious_radio() {
        let small = Scenario {
            graph: GraphFamily::Grid(8, 8),
            algorithm: Algorithm::Simple,
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(!small.uses_fast_path());
        for model in [Model::Mp, Model::Radio] {
            let large = Scenario {
                graph: GraphFamily::Gnp {
                    n: SIMPLE_FAST_MIN_N,
                    avg_deg: 6,
                    seed: 4,
                },
                algorithm: Algorithm::Simple,
                model,
                fault: FaultConfig::omission(0.3),
                shards: ShardSpec::Auto,
            }
            .prepare();
            assert!(large.uses_fast_path(), "{model}");
            // The fast plan keeps the Theorem 2.1 phase length.
            let m = randcast_stats::chernoff::phase_len_omission(SIMPLE_FAST_MIN_N, 0.3);
            assert_eq!(large.phase_len(), Some(m));
            assert_eq!(large.rounds(), SIMPLE_FAST_MIN_N * m);
        }
        // Malicious Simple crosses to the adversary kernels at scale
        // too: the flip rule in MP (with the Theorem 2.2 phase
        // length), the lie-or-jam speaker rule for limited-malicious
        // radio. Only full-malicious radio stays general.
        let large_gnp = GraphFamily::Gnp {
            n: SIMPLE_FAST_MIN_N,
            avg_deg: 6,
            seed: 4,
        };
        let malicious_mp = Scenario {
            graph: large_gnp,
            algorithm: Algorithm::Simple,
            model: Model::Mp,
            fault: FaultConfig::malicious(0.2),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(malicious_mp.uses_fast_path());
        assert_eq!(
            malicious_mp.phase_len(),
            Some(randcast_stats::chernoff::phase_len_malicious_mp(
                SIMPLE_FAST_MIN_N,
                0.2
            ))
        );
        let limited_radio = Scenario {
            graph: large_gnp,
            algorithm: Algorithm::Simple,
            model: Model::Radio,
            fault: FaultConfig::limited_malicious(0.001),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(limited_radio.uses_fast_path());
        let full_radio = Scenario {
            graph: large_gnp,
            algorithm: Algorithm::Simple,
            model: Model::Radio,
            fault: FaultConfig::malicious(0.001),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(!full_radio.uses_fast_path());
        // Below the threshold malicious Simple stays general.
        let small_malicious = Scenario {
            graph: GraphFamily::Grid(8, 8),
            algorithm: Algorithm::Simple,
            model: Model::Mp,
            fault: FaultConfig::malicious(0.2),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(!small_malicious.uses_fast_path());
    }

    #[test]
    fn simple_fast_forced_path_matches_simple_parameterization() {
        let base = Scenario {
            graph: GraphFamily::Grid(6, 6),
            algorithm: Algorithm::Simple,
            model: Model::Mp,
            fault: FaultConfig::omission(0.4),
            shards: ShardSpec::Auto,
        };
        let forced = Scenario {
            algorithm: Algorithm::SimpleFast { phase_len: None },
            ..base
        }
        .prepare();
        assert!(forced.uses_fast_path());
        assert_eq!(forced.phase_len(), base.prepare().phase_len());
        assert_eq!(forced.rounds(), base.prepare().rounds());
        // An explicit phase length overrides the prescription.
        let fixed = Scenario {
            algorithm: Algorithm::SimpleFast { phase_len: Some(7) },
            ..base
        }
        .prepare();
        assert_eq!(fixed.phase_len(), Some(7));
        assert_eq!(fixed.rounds(), 36 * 7);
        // Trials report the correct fraction and are deterministic.
        let out = fixed.trial(3);
        assert_eq!(out, fixed.trial(3));
        let frac = out.informed_frac.expect("fast path reports fraction");
        assert!(frac > 0.0 && frac <= 1.0);
        assert_eq!(out.success, (frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simple_fast_rejects_full_malicious_radio_and_zero_phase_len() {
        let err = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::SimpleFast { phase_len: None },
            model: Model::Radio,
            fault: FaultConfig::malicious(0.1),
            shards: ShardSpec::Auto,
        }
        .validate()
        .expect_err("full-malicious radio needs the jamming adversary");
        assert_eq!(
            err,
            ScenarioError::FaultMismatch {
                algorithm: "simple-fast",
                tolerates: "omission and limited-malicious faults in the radio \
                            model (use simple for full-malicious radio)",
                requested: FaultKind::Malicious,
            }
        );
        assert!(err.to_string().contains("supported by:"), "{err}");
        // MP malicious and radio limited-malicious are kernel-capable.
        for (model, fault) in [
            (Model::Mp, FaultConfig::malicious(0.1)),
            (Model::Mp, FaultConfig::limited_malicious(0.1)),
            (Model::Radio, FaultConfig::limited_malicious(0.05)),
        ] {
            assert!(Scenario {
                graph: GraphFamily::Path(4),
                algorithm: Algorithm::SimpleFast { phase_len: None },
                model,
                fault,
                shards: ShardSpec::Auto,
            }
            .validate()
            .is_ok());
        }
        assert!(matches!(
            Scenario {
                graph: GraphFamily::Path(4),
                algorithm: Algorithm::SimpleFast { phase_len: Some(0) },
                model: Model::Mp,
                fault: FaultConfig::omission(0.1),
                shards: ShardSpec::Auto,
            }
            .validate(),
            Err(ScenarioError::InvalidParameter(_))
        ));
    }

    #[test]
    fn simple_fast_accepts_disconnected_families_and_reports_fraction() {
        let rgg = GraphFamily::RandomGeometric {
            n: 64,
            deg: 4,
            seed: 3,
        };
        assert!(rgg.may_be_disconnected());
        // Plain simple must keep rejecting it…
        let simple = Scenario {
            graph: rgg,
            algorithm: Algorithm::Simple,
            model: Model::Mp,
            fault: FaultConfig::omission(0.2),
            shards: ShardSpec::Auto,
        };
        assert!(matches!(
            simple.validate(),
            Err(ScenarioError::RequiresConnectivity { .. })
        ));
        // …while simple-fast measures the correct fraction.
        let prep = Scenario {
            algorithm: Algorithm::SimpleFast { phase_len: None },
            ..simple
        }
        .try_prepare()
        .expect("valid");
        assert!(prep.uses_fast_path());
        let out = prep.trial(5);
        let frac = out.informed_frac.expect("fast path reports fraction");
        assert!(frac > 0.0 && frac < 1.0, "this rgg is disconnected");
        assert!(!out.success);
    }

    /// The malicious fast plans keep the engines' lane-coupling and
    /// shard-neutrality guarantees through the scenario layer: lane
    /// `k` of a block equals the lane replay, the scalar trial is lane
    /// 0 of block `seed`, and a fixed shard count changes nothing.
    #[test]
    fn malicious_fast_trials_couple_lanes_blocks_and_shards() {
        for (algorithm, model, fault) in [
            (
                Algorithm::SimpleFast { phase_len: Some(5) },
                Model::Mp,
                FaultConfig::malicious(0.3),
            ),
            (
                Algorithm::SimpleFast { phase_len: Some(5) },
                Model::Radio,
                FaultConfig::limited_malicious(0.05),
            ),
            (
                Algorithm::FloodFast { horizon_scale: 1 },
                Model::Mp,
                FaultConfig::malicious(0.3),
            ),
            (
                Algorithm::DecayFast { epoch_factor: 1 },
                Model::Radio,
                FaultConfig::limited_malicious(0.3),
            ),
        ] {
            let base = Scenario {
                graph: GraphFamily::Grid(6, 6),
                algorithm,
                model,
                fault,
                shards: ShardSpec::Auto,
            };
            let prep = base.prepare();
            let block = prep.trial_block(9);
            for lane in [0u32, 7, 63] {
                assert_eq!(
                    block[lane as usize],
                    prep.trial_lane(9, lane),
                    "{} {model} lane {lane}",
                    algorithm.name()
                );
            }
            assert_eq!(prep.trial(9), block[0], "{}", algorithm.name());
            let sharded = Scenario {
                shards: ShardSpec::Fixed(3),
                ..base
            }
            .prepare();
            assert_eq!(sharded.trial_block(9), block, "{}", algorithm.name());
        }
    }

    #[test]
    fn decay_selects_fast_path_for_limited_malicious_at_scale() {
        let small = Scenario {
            graph: GraphFamily::Grid(8, 8),
            algorithm: Algorithm::Decay { epoch_factor: 2 },
            model: Model::Radio,
            fault: FaultConfig::limited_malicious(0.2),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(!small.uses_fast_path());
        assert_eq!(small.trial(3), small.trial(3), "deterministic per seed");
        let large = Scenario {
            graph: GraphFamily::Gnp {
                n: RADIO_FAST_MIN_N,
                avg_deg: 6,
                seed: 4,
            },
            algorithm: Algorithm::Decay { epoch_factor: 2 },
            model: Model::Radio,
            fault: FaultConfig::limited_malicious(0.2),
            shards: ShardSpec::Auto,
        }
        .prepare();
        assert!(large.uses_fast_path());
        assert!(large.supports_batch());
    }

    #[test]
    fn prepare_shared_matches_prepare() {
        let scenario = Scenario {
            graph: GraphFamily::Gnp {
                n: 120,
                avg_deg: 5,
                seed: 31,
            },
            algorithm: Algorithm::SimpleFast { phase_len: None },
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        };
        let direct = scenario.try_prepare().expect("valid");
        let graph = std::sync::Arc::new(scenario.graph.build());
        let shared = scenario
            .try_prepare_shared(std::sync::Arc::clone(&graph))
            .expect("valid");
        assert_eq!(direct.rounds(), shared.rounds());
        for seed in 0..10 {
            assert_eq!(direct.trial(seed), shared.trial(seed));
        }
    }

    #[test]
    fn fmt_p_truncates() {
        assert_eq!(fmt_p(0.3), "0.3");
        assert_eq!(fmt_p(0.123456), "0.1235");
        assert_eq!(fmt_p(0.0), "0");
    }
}
