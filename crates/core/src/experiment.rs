//! Monte-Carlo experiment drivers shared by the reproduction binaries.
//!
//! Experiments ask one question over and over: *with what probability does
//! algorithm X broadcast correctly on graph G under failure scenario F?*
//! This module packages the trial loop, the deterministic per-trial
//! seeding and the almost-safety verdict so the `randcast-bench` binaries
//! stay declarative.

use randcast_stats::estimate::{SuccessEstimate, Verdict};
use randcast_stats::seed::SeedSequence;

/// Runs `trials` success/failure trials; trial `i` receives the derived
/// engine seed `seeds.nth_seed(i)`.
///
/// # Panics
///
/// Panics if `trials == 0`.
///
/// # Example
///
/// ```
/// use randcast_core::experiment::run_success_trials;
/// use randcast_stats::seed::SeedSequence;
///
/// let est = run_success_trials(100, SeedSequence::new(1), |_seed| true);
/// assert_eq!(est.rate(), 1.0);
/// ```
pub fn run_success_trials<F>(trials: usize, seeds: SeedSequence, mut trial: F) -> SuccessEstimate
where
    F: FnMut(u64) -> bool,
{
    assert!(trials > 0, "need at least one trial");
    let successes = (0..trials)
        .filter(|&i| trial(seeds.nth_seed(i as u64)))
        .count();
    SuccessEstimate::new(successes, trials)
}

/// A labelled row of an experiment report: the estimate plus the
/// almost-safety verdict against `1 − 1/n`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AlmostSafeRow {
    /// The measured success estimate.
    pub estimate: SuccessEstimate,
    /// The `n` defining the almost-safety target.
    pub n: usize,
    /// Verdict at 95% confidence.
    pub verdict: Verdict,
}

impl AlmostSafeRow {
    /// Judges an estimate against the almost-safety target for `n`.
    #[must_use]
    pub fn judge(estimate: SuccessEstimate, n: usize) -> Self {
        AlmostSafeRow {
            estimate,
            n,
            verdict: estimate.almost_safe_verdict(n, 1.96),
        }
    }

    /// The almost-safety target `1 − 1/n`.
    #[must_use]
    pub fn target(&self) -> f64 {
        1.0 - 1.0 / self.n as f64
    }

    /// A table label that distinguishes confident verdicts from
    /// point-estimate ones. The paper's prescribed constants are
    /// *minimal*, so true success rates sit right at the `1 − 1/n` bar
    /// and finite-trial Wilson intervals often straddle it:
    ///
    /// * `pass` — Wilson lower bound clears the target;
    /// * `pass*` — point estimate clears the target, interval straddles;
    /// * `near*` — point estimate within half of `1/n` below the target;
    /// * `FAIL` — Wilson upper bound is below the target.
    #[must_use]
    pub fn label(&self) -> String {
        let rate = self.estimate.rate();
        let target = self.target();
        match self.verdict {
            Verdict::Pass => "pass".into(),
            Verdict::Fail => "FAIL".into(),
            Verdict::Inconclusive => {
                if rate >= target {
                    "pass*".into()
                } else if rate >= target - 0.5 / self.n as f64 {
                    "near*".into()
                } else {
                    "inconclusive".into()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_deterministic() {
        let mut seen = Vec::new();
        let est = run_success_trials(50, SeedSequence::new(9), |s| {
            seen.push(s);
            s % 2 == 0
        });
        let mut seen2 = Vec::new();
        let est2 = run_success_trials(50, SeedSequence::new(9), |s| {
            seen2.push(s);
            s % 2 == 0
        });
        assert_eq!(seen, seen2);
        assert_eq!(est.successes(), est2.successes());
    }

    #[test]
    fn judge_passes_perfect_run() {
        let est = SuccessEstimate::new(1000, 1000);
        let row = AlmostSafeRow::judge(est, 32);
        assert_eq!(row.verdict, Verdict::Pass);
        assert!((row.target() - (1.0 - 1.0 / 32.0)).abs() < 1e-12);
    }

    #[test]
    fn judge_fails_coin_flip_run() {
        let est = SuccessEstimate::new(500, 1000);
        let row = AlmostSafeRow::judge(est, 32);
        assert_eq!(row.verdict, Verdict::Fail);
    }
}
