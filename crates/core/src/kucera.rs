//! Kučera's noisy-line broadcast algorithm and its tree lift
//! (Theorem 3.2): limited-malicious broadcast in `O(D + log^α n)` rounds
//! for any `p < 1/2`.
//!
//! The paper uses Kučera's result \[23\] as a black box through the
//! interface `A_p(n, τ, δ, Q)` — *"on the line of length `n`, with
//! per-transmission failure probability `p`, there is a broadcast
//! algorithm of time `τ` and delay `δ` (maximum active period of any
//! node) with failure probability at most `Q`"* — closed under two
//! composition rules:
//!
//! * **\[CO1\] serial**: `ρ` copies end to end; segment `j` starts at time
//!   `j·τ`. `A_p(n,τ,δ,Q) ⇒ A_p(ρn, ρτ, δ, 1 − (1−Q)^ρ)`.
//! * **\[CO2\] repetition**: the same line run `κ` times, starts spaced by
//!   the delay `δ` (so per-node active periods never overlap), receivers
//!   take the per-node majority.
//!   `A_p(n,τ,δ,Q) ⇒ A_p(n, τ + (κ−1)δ, κδ, Σ_{j≥κ/2} C(κ,j)Q^j(1−Q)^{κ−j})`.
//!
//! [`Plan`] builds composition trees with exact accounting of
//! `(n, τ, δ, Q)`; [`Plan::for_line`] chooses compositions automatically;
//! [`CompiledPlan`] flattens a plan into a deterministic event schedule
//! (single-bit transmissions and local majority votes); and
//! [`CompiledPlan::run_tree`] executes it along every branch of a BFS
//! tree simultaneously — a node transmits once per step to all its
//! children under a single fault coin, exactly the paper's per-node
//! transmitter-failure model.
//!
//! The paper's extension requirements (long messages ⇒ here: the bit;
//! limited-malicious instead of pure flips; *every* node must end
//! correct, not just the last) are honored: every position finalizes
//! through the same majority votes as the endpoint.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use randcast_graph::{Graph, NodeId, SpanningTree};
use randcast_stats::chernoff::binomial_upper_tail;
use randcast_stats::seed::splitmix64;

/// Why a Kučera plan could not be constructed. Planning failures are
/// *configuration* errors (infeasible `p`, impossible amplification
/// targets) — they surface as `Result`s so a sweep can reject the one
/// bad cell instead of aborting mid-run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum KuceraError {
    /// Majority amplification cannot converge: the error bound to
    /// amplify is already `≥ 1/2` (in particular any failure
    /// probability `p ≥ 1/2` — the Theorem 2.3 infeasible regime).
    ErrorBoundTooHigh {
        /// The offending per-repetition error bound.
        q: f64,
    },
    /// The repetition count needed to reach `target` from `q` exceeds
    /// the planner's cap — the target is unreachably strict for this
    /// error level.
    AmplificationCapExceeded {
        /// Error bound being amplified.
        q: f64,
        /// Requested target error.
        target: f64,
        /// The repetition cap that was exhausted.
        cap: u64,
    },
}

impl fmt::Display for KuceraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            KuceraError::ErrorBoundTooHigh { q } => {
                write!(
                    f,
                    "cannot amplify an error bound of {q} >= 1/2 \
                     (majority voting requires p < 1/2)"
                )
            }
            KuceraError::AmplificationCapExceeded { q, target, cap } => {
                write!(
                    f,
                    "cannot amplify error {q} to {target} within {cap} repetitions"
                )
            }
        }
    }
}

impl Error for KuceraError {}

/// What a failed (limited-malicious) transmission does — chosen by the
/// adversary; [`FailureBehavior::Flip`] is the binding worst case for
/// majority voting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureBehavior {
    /// Deliver the complement bit (Kučera's flip model; worst case).
    Flip,
    /// Drop the transmission (receiver substitutes the default `0` when
    /// relaying; drops cast no ballots in votes).
    Drop,
    /// Deliver a uniformly random bit.
    RandomBit,
}

/// Exact `A_p(n, τ, δ, Q)` accounting for a composition tree.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Metrics {
    /// Line length `n` (number of hops).
    pub len: usize,
    /// Time `τ`.
    pub time: usize,
    /// Delay `δ` (maximum per-node active period).
    pub delay: usize,
    /// Failure-probability bound `Q` (per line/branch).
    pub error_bound: f64,
}

/// A composition tree over the basic one-hop transmission.
#[derive(Clone, Debug)]
pub struct Plan {
    node: PlanNode,
    metrics: Metrics,
}

#[derive(Clone, Debug)]
enum PlanNode {
    /// One transmission across one hop: `A_p(1, 1, 1, p)`.
    Basic,
    /// \[CO1\] with factor `rho`.
    Serial { inner: Box<Plan>, rho: usize },
    /// \[CO2\] with factor `kappa` (odd).
    Repeat { inner: Box<Plan>, kappa: usize },
}

impl Plan {
    /// The basic single-hop plan `A_p(1, 1, 1, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    #[must_use]
    pub fn basic(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        Plan {
            node: PlanNode::Basic,
            metrics: Metrics {
                len: 1,
                time: 1,
                delay: 1,
                error_bound: p,
            },
        }
    }

    /// \[CO1\]: `ρ` copies of `self` end to end.
    ///
    /// # Panics
    ///
    /// Panics if `rho == 0`.
    #[must_use]
    pub fn serial(self, rho: usize) -> Self {
        assert!(rho >= 1, "serial factor must be positive");
        let m = self.metrics;
        let q = 1.0 - (1.0 - m.error_bound).powi(rho as i32);
        Plan {
            metrics: Metrics {
                len: m.len * rho,
                time: m.time * rho,
                delay: m.delay,
                error_bound: q,
            },
            node: PlanNode::Serial {
                inner: Box::new(self),
                rho,
            },
        }
    }

    /// \[CO2\]: `κ` pipelined repetitions with per-node majority voting.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is even or zero (odd repetition counts make
    /// majority ties impossible).
    #[must_use]
    pub fn repeat(self, kappa: usize) -> Self {
        assert!(
            kappa >= 1 && kappa % 2 == 1,
            "repetition factor must be odd"
        );
        let m = self.metrics;
        // Wrong majority needs ≥ (κ+1)/2 failed repetitions.
        let q = binomial_upper_tail(kappa as u64, (kappa as u64).div_ceil(2), m.error_bound);
        Plan {
            metrics: Metrics {
                len: m.len,
                time: m.time + (kappa - 1) * m.delay,
                delay: kappa * m.delay,
                error_bound: q,
            },
            node: PlanNode::Repeat {
                inner: Box::new(self),
                kappa,
            },
        }
    }

    /// The `(n, τ, δ, Q)` accounting of this plan.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Line length covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len
    }

    /// Whether the plan covers no hops (never true — a plan covers at
    /// least one hop).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Time `τ`.
    #[must_use]
    pub fn time(&self) -> usize {
        self.metrics.time
    }

    /// Analytic per-branch failure bound `Q`.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        self.metrics.error_bound
    }

    /// Automatic planner: a plan covering at least `len` hops with
    /// per-branch error `≤ target_q`, built by interleaving \[CO1\] serial
    /// growth (factor ≤ 8 per level) with \[CO2\] error resets, and a final
    /// amplification stage.
    ///
    /// # Errors
    ///
    /// Returns [`KuceraError::ErrorBoundTooHigh`] when `p ≥ 1/2`
    /// (majority voting cannot converge — Theorem 2.3's infeasible
    /// regime) and propagates [`KuceraError::AmplificationCapExceeded`]
    /// when an amplification stage would need an absurd repetition
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `p < 0`, `len == 0`, or `target_q ≤ 0` (programmer
    /// errors rather than configuration ones).
    pub fn for_line(len: usize, p: f64, target_q: f64) -> Result<Self, KuceraError> {
        assert!(p >= 0.0, "failure probability must be nonnegative");
        assert!(len >= 1, "need at least one hop");
        assert!(target_q > 0.0, "target error must be positive");
        if p >= 0.5 {
            return Err(KuceraError::ErrorBoundTooHigh { q: p });
        }
        const STAGE_Q: f64 = 1e-3;
        let mut plan = Plan::basic(p);
        if plan.error_bound() > STAGE_Q {
            plan = plan.amplify_to(STAGE_Q)?;
        }
        while plan.len() < len {
            let remaining = len.div_ceil(plan.len());
            let rho = remaining.clamp(2, 8);
            plan = plan.serial(rho);
            if plan.len() < len && plan.error_bound() > STAGE_Q {
                plan = plan.amplify_to(STAGE_Q)?;
            }
        }
        if plan.error_bound() > target_q {
            plan = plan.amplify_to(target_q)?;
        }
        Ok(plan)
    }

    /// Applies the smallest odd \[CO2\] factor bringing the error bound to
    /// `target`. The repetition count scales like
    /// `ln(1/target) / (1/2 − Q)²` (Hoeffding), so it blows up — as the
    /// theory says it must — when the current error `Q` approaches 1/2.
    ///
    /// # Errors
    ///
    /// Returns [`KuceraError::ErrorBoundTooHigh`] when the current
    /// error bound is `≥ 1/2` and
    /// [`KuceraError::AmplificationCapExceeded`] when more than
    /// 2,000,001 repetitions would be needed.
    pub fn amplify_to(self, target: f64) -> Result<Self, KuceraError> {
        let q = self.metrics.error_bound;
        if q <= target {
            return Ok(self);
        }
        if q >= 0.5 {
            return Err(KuceraError::ErrorBoundTooHigh { q });
        }
        // Hoeffding start: exp(-2κ(1/2-Q)²) = target; begin a bit below
        // and search upward for the exact binomial-tail crossing.
        let gap = 0.5 - q;
        let estimate = (1.0 / target).ln() / (2.0 * gap * gap);
        let mut kappa = ((estimate * 0.7) as u64).max(3) | 1; // odd
        const CAP: u64 = 2_000_001;
        while kappa <= CAP {
            if binomial_upper_tail(kappa, kappa.div_ceil(2), q) <= target {
                return Ok(self.repeat(kappa as usize));
            }
            kappa += 2;
        }
        Err(KuceraError::AmplificationCapExceeded {
            q,
            target,
            cap: CAP,
        })
    }

    /// Flattens the plan into an executable event schedule.
    #[must_use]
    pub fn compile(&self) -> CompiledPlan {
        let mut b = Compiler {
            ops: Vec::new(),
            n_regs: 1, // register 0 = the source's input bit
        };
        let cov = b.emit(self, 0, Reg(0), 0);
        let compiled = CompiledPlan {
            ops: b.ops,
            n_regs: b.n_regs,
            final_reg: cov.regs,
            len: self.len(),
            time: self.time(),
        };
        compiled.assert_no_transmission_conflicts();
        compiled
    }
}

/// A register id: one single-bit storage slot, instantiated per node at
/// execution time. Each register is written exactly once.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Reg(u32);

/// One event of a compiled plan.
#[derive(Clone, Debug)]
enum Op {
    /// At `time`, the node at line position `from_pos` transmits the bit
    /// in `src` one hop forward, where it is stored into `dst`.
    Send {
        time: usize,
        from_pos: usize,
        src: Reg,
        dst: Reg,
    },
    /// The node at position `pos` takes the majority of `srcs` into
    /// `dst` (a local computation, not a transmission).
    Vote {
        pos: usize,
        srcs: Vec<Reg>,
        dst: Reg,
    },
}

/// Per-position coverage produced while compiling a sub-plan.
struct Coverage {
    /// `regs[i]`: the register holding position `base+i`'s final value
    /// for this sub-plan (`i ∈ 0..=len`).
    regs: Vec<Reg>,
    /// `ready[i]`: the time at which `regs[i]` is available.
    ready: Vec<usize>,
}

struct Compiler {
    ops: Vec<Op>,
    n_regs: u32,
}

impl Compiler {
    fn fresh(&mut self) -> Reg {
        let r = Reg(self.n_regs);
        self.n_regs += 1;
        r
    }

    /// Emits ops for `plan` starting at `base_time`, with the sub-line
    /// occupying positions `pos..pos+plan.len()` and the input bit in
    /// `input` (ready by `base_time`).
    fn emit(&mut self, plan: &Plan, base_time: usize, input: Reg, pos: usize) -> Coverage {
        match &plan.node {
            PlanNode::Basic => {
                let dst = self.fresh();
                self.ops.push(Op::Send {
                    time: base_time,
                    from_pos: pos,
                    src: input,
                    dst,
                });
                Coverage {
                    regs: vec![input, dst],
                    ready: vec![base_time, base_time + 1],
                }
            }
            PlanNode::Serial { inner, rho } => {
                let im = inner.metrics();
                let mut regs = vec![input];
                let mut ready = vec![base_time];
                let mut cur_input = input;
                for j in 0..*rho {
                    let cov =
                        self.emit(inner, base_time + j * im.time, cur_input, pos + j * im.len);
                    debug_assert!(
                        *cov.ready.last().unwrap() <= base_time + (j + 1) * im.time,
                        "segment endpoint must be ready before the next segment"
                    );
                    regs.extend_from_slice(&cov.regs[1..]);
                    ready.extend_from_slice(&cov.ready[1..]);
                    cur_input = *cov.regs.last().unwrap();
                }
                Coverage { regs, ready }
            }
            PlanNode::Repeat { inner, kappa } => {
                let im = inner.metrics();
                let covs: Vec<Coverage> = (0..*kappa)
                    .map(|j| self.emit(inner, base_time + j * im.delay, input, pos))
                    .collect();
                let mut regs = vec![input];
                let mut ready = vec![base_time];
                for i in 1..=im.len {
                    let srcs: Vec<Reg> = covs.iter().map(|c| c.regs[i]).collect();
                    let dst = self.fresh();
                    let at = covs.last().unwrap().ready[i];
                    self.ops.push(Op::Vote {
                        pos: pos + i,
                        srcs,
                        dst,
                    });
                    regs.push(dst);
                    ready.push(at);
                }
                Coverage { regs, ready }
            }
        }
    }
}

/// A flattened, executable Kučera plan.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    ops: Vec<Op>,
    n_regs: u32,
    /// Final register of each line position `0..=len`.
    final_reg: Vec<Reg>,
    len: usize,
    time: usize,
}

/// Result of running a compiled plan over a spanning tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KuceraOutcome {
    /// Each node's final bit.
    pub values: Vec<bool>,
    /// Rounds spanned by the schedule (`τ` of the plan).
    pub rounds: usize,
}

impl KuceraOutcome {
    /// Whether every node decoded the source bit.
    #[must_use]
    pub fn all_correct(&self, source_bit: bool) -> bool {
        self.values.iter().all(|&b| b == source_bit)
    }

    /// Number of nodes holding the correct bit.
    #[must_use]
    pub fn correct_count(&self, source_bit: bool) -> usize {
        self.values.iter().filter(|&&b| b == source_bit).count()
    }
}

impl CompiledPlan {
    /// Line length covered (`≥` the tree depth it can serve).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan covers no hops (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total schedule time `τ`.
    #[must_use]
    pub fn time(&self) -> usize {
        self.time
    }

    /// Number of single-bit transmissions per branch hop structure.
    #[must_use]
    pub fn send_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count()
    }

    /// Verifies that no line position transmits twice in the same round
    /// (two transmissions would share one fault coin, breaking the
    /// independence the composition rules assume). [`Plan::compile`]
    /// runs this automatically.
    ///
    /// # Panics
    ///
    /// Panics on a conflict — which would indicate a planner bug.
    pub fn assert_no_transmission_conflicts(&self) {
        let mut seen: HashMap<(usize, usize), ()> = HashMap::new();
        for op in &self.ops {
            if let Op::Send { time, from_pos, .. } = op {
                assert!(
                    seen.insert((*from_pos, *time), ()).is_none(),
                    "position {from_pos} transmits twice at time {time}"
                );
            }
        }
    }

    /// Executes the plan along every branch of the BFS spanning tree of
    /// `graph` rooted at `source`: line position `i` is played by all
    /// tree nodes at depth `i`; a transmitting node sends one bit to all
    /// of its children under a single per-(node, round) fault coin.
    ///
    /// Faults flip/drop/randomize per `behavior` with probability `p`,
    /// independently per (node, round) — the paper's transmitter model.
    ///
    /// # Panics
    ///
    /// Panics if the plan is shorter than the tree depth or
    /// `p ∉ [0, 1)`.
    #[must_use]
    pub fn run_tree(
        &self,
        graph: &Graph,
        source: NodeId,
        p: f64,
        behavior: FailureBehavior,
        seed: u64,
        source_bit: bool,
    ) -> KuceraOutcome {
        assert!((0.0..1.0).contains(&p), "failure probability out of range");
        let tree = SpanningTree::bfs(graph, source);
        assert!(
            tree.depth() <= self.len,
            "plan covers {} hops but tree depth is {}",
            self.len,
            tree.depth()
        );
        let n = graph.node_count();
        // Nodes grouped by level for fast op application.
        let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); tree.depth() + 1];
        for v in graph.nodes() {
            by_level[tree.level(v)].push(v);
        }
        // Per-node register files.
        let mut regs: Vec<Vec<Option<bool>>> = vec![vec![None; self.n_regs as usize]; n];
        regs[source.index()][0] = Some(source_bit);

        for op in &self.ops {
            match op {
                Op::Send {
                    time,
                    from_pos,
                    src,
                    dst,
                } => {
                    if *from_pos >= by_level.len() {
                        continue; // beyond the deepest level: dummy region
                    }
                    for &u in &by_level[*from_pos] {
                        let children = tree.children(u);
                        if children.is_empty() {
                            continue;
                        }
                        // A silent reception earlier in the chain is
                        // relayed as the default bit 0.
                        let bit = regs[u.index()][src.0 as usize].unwrap_or(false);
                        let delivered = deliver(bit, p, behavior, seed, u, *time);
                        for &c in children {
                            regs[c.index()][dst.0 as usize] = delivered;
                        }
                    }
                }
                Op::Vote { pos, srcs, dst } => {
                    if *pos >= by_level.len() {
                        continue;
                    }
                    for &u in &by_level[*pos] {
                        let ballots: Vec<bool> = srcs
                            .iter()
                            .filter_map(|r| regs[u.index()][r.0 as usize])
                            .collect();
                        let ones = ballots.iter().filter(|&&b| b).count();
                        regs[u.index()][dst.0 as usize] = Some(2 * ones > ballots.len());
                    }
                }
            }
        }

        let values = graph
            .nodes()
            .map(|v| {
                let reg = self.final_reg[tree.level(v)];
                regs[v.index()][reg.0 as usize].unwrap_or(false)
            })
            .collect();
        KuceraOutcome {
            values,
            rounds: self.time,
        }
    }
}

/// Resolves one faulty-or-not transmission of `bit` from node `u` at
/// `time`: returns the delivered value (`None` = dropped).
fn deliver(
    bit: bool,
    p: f64,
    behavior: FailureBehavior,
    seed: u64,
    u: NodeId,
    time: usize,
) -> Option<bool> {
    if p == 0.0 {
        return Some(bit);
    }
    // Deterministic per-(node, time) coin, independent of op processing
    // order.
    let h = splitmix64(
        splitmix64(seed ^ (u.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ (time as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    if unit >= p {
        return Some(bit);
    }
    match behavior {
        FailureBehavior::Flip => Some(!bit),
        FailureBehavior::Drop => None,
        FailureBehavior::RandomBit => Some(splitmix64(h) & 1 == 1),
    }
}

/// Convenience wrapper (Theorem 3.2): a plan + compilation for
/// broadcasting on `graph` from `source` with per-branch error low enough
/// that a union bound over branches gives almost-safety
/// (`Q ≤ 1/(2n²)`).
#[derive(Clone, Debug)]
pub struct KuceraBroadcast {
    compiled: CompiledPlan,
    source: NodeId,
}

impl KuceraBroadcast {
    /// Plans for the BFS-tree depth of `(graph, source)`.
    ///
    /// # Errors
    ///
    /// Returns the planning error when `p ≥ 1/2` or the prescribed
    /// amplification is impossible (see [`Plan::for_line`]).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected from `source`.
    pub fn new(graph: &Graph, source: NodeId, p: f64) -> Result<Self, KuceraError> {
        let tree = SpanningTree::bfs(graph, source);
        let len = tree.depth().max(1);
        let n = graph.node_count().max(2);
        let target = 1.0 / (2.0 * (n * n) as f64);
        let plan = Plan::for_line(len, p, target)?;
        Ok(KuceraBroadcast {
            compiled: plan.compile(),
            source,
        })
    }

    /// Total broadcast time `τ`.
    #[must_use]
    pub fn time(&self) -> usize {
        self.compiled.time()
    }

    /// Executes one broadcast.
    #[must_use]
    pub fn run(
        &self,
        graph: &Graph,
        p: f64,
        behavior: FailureBehavior,
        seed: u64,
        source_bit: bool,
    ) -> KuceraOutcome {
        self.compiled
            .run_tree(graph, self.source, p, behavior, seed, source_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::generators;

    #[test]
    fn basic_metrics() {
        let b = Plan::basic(0.2);
        let m = b.metrics();
        assert_eq!((m.len, m.time, m.delay), (1, 1, 1));
        assert!((m.error_bound - 0.2).abs() < 1e-12);
    }

    #[test]
    fn serial_metrics_follow_co1() {
        let plan = Plan::basic(0.1).serial(4);
        let m = plan.metrics();
        assert_eq!((m.len, m.time, m.delay), (4, 4, 1));
        let expect = 1.0 - 0.9f64.powi(4);
        assert!((m.error_bound - expect).abs() < 1e-12);
    }

    #[test]
    fn repeat_metrics_follow_co2() {
        let plan = Plan::basic(0.1).repeat(3);
        let m = plan.metrics();
        assert_eq!((m.len, m.time, m.delay), (1, 3, 3));
        // Wrong majority: >= 2 of 3 fail: 3·0.01·0.9 + 0.001 = 0.028.
        assert!((m.error_bound - 0.028).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn repeat_rejects_even_kappa() {
        let _ = Plan::basic(0.1).repeat(4);
    }

    #[test]
    fn planner_reaches_length_and_error() {
        for len in [1usize, 5, 17, 100] {
            for p in [0.05, 0.2, 0.4] {
                let plan = Plan::for_line(len, p, 1e-6).expect("feasible");
                assert!(plan.len() >= len, "len {len} p {p}");
                assert!(plan.error_bound() <= 1e-6, "len {len} p {p}");
            }
        }
    }

    #[test]
    fn planner_time_is_near_linear() {
        // Time per hop should not explode as the line grows (the point of
        // the composition rules).
        let p = 0.3;
        let t50 = Plan::for_line(50, p, 1e-6).expect("feasible").time() as f64;
        let t400 = Plan::for_line(400, p, 1e-6).expect("feasible").time() as f64;
        let per_hop_growth = (t400 / 400.0) / (t50 / 50.0);
        assert!(per_hop_growth < 3.0, "growth={per_hop_growth}");
    }

    #[test]
    fn compile_counts_are_consistent() {
        let plan = Plan::basic(0.2).repeat(3).serial(4);
        let c = plan.compile();
        assert_eq!(c.len(), 4);
        assert_eq!(c.time(), plan.time());
        // 4 segments × 3 repetitions × 1 basic send.
        assert_eq!(c.send_count(), 12);
    }

    #[test]
    fn fault_free_execution_delivers_everywhere() {
        let g = generators::path(9);
        let plan = Plan::for_line(9, 0.3, 1e-4).expect("feasible");
        let c = plan.compile();
        for bit in [false, true] {
            let out = c.run_tree(&g, g.node(0), 0.0, FailureBehavior::Flip, 1, bit);
            assert!(out.all_correct(bit), "bit={bit}");
        }
    }

    #[test]
    fn flip_faults_mostly_corrected() {
        let g = generators::path(20);
        let p = 0.25;
        let plan = Plan::for_line(20, p, 1e-6).expect("feasible");
        let c = plan.compile();
        let mut ok = 0;
        for seed in 0..40 {
            let out = c.run_tree(&g, g.node(0), p, FailureBehavior::Flip, seed, true);
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 38, "ok={ok}");
    }

    #[test]
    fn empirical_error_within_analytic_bound() {
        // A deliberately weak plan so errors are observable: basic ×
        // serial(3), Q = 1-(1-p)^3.
        let p = 0.2;
        let plan = Plan::basic(p).serial(3);
        let bound = plan.error_bound();
        let c = plan.compile();
        let g = generators::path(3);
        let trials = 2000;
        let mut wrong_end = 0;
        for seed in 0..trials {
            let out = c.run_tree(&g, g.node(0), p, FailureBehavior::Flip, seed, true);
            wrong_end += usize::from(!out.values[3]);
        }
        let rate = wrong_end as f64 / trials as f64;
        // Flip parity can self-correct, so the observed rate is below the
        // union-style bound but same order.
        assert!(rate <= bound + 0.03, "rate={rate} bound={bound}");
        assert!(rate > bound / 4.0, "rate={rate} bound={bound}");
    }

    #[test]
    fn works_on_trees_not_just_lines() {
        let g = generators::balanced_tree(3, 3);
        let p = 0.2;
        let kb = KuceraBroadcast::new(&g, g.node(0), p).expect("feasible");
        let mut ok = 0;
        for seed in 0..30 {
            let out = kb.run(&g, p, FailureBehavior::Flip, seed, true);
            ok += usize::from(out.all_correct(true));
        }
        assert!(ok >= 28, "ok={ok}");
    }

    #[test]
    fn drop_behavior_defaults_to_zero_bias() {
        // With Drop behavior and source bit 0, drops can only help
        // (default is 0): success should be at least as high as with bit 1.
        let g = generators::path(10);
        let p = 0.3;
        let plan = Plan::for_line(10, p, 1e-4).expect("feasible").compile();
        let mut ok0 = 0;
        let mut ok1 = 0;
        for seed in 0..50 {
            ok0 += usize::from(
                plan.run_tree(&g, g.node(0), p, FailureBehavior::Drop, seed, false)
                    .all_correct(false),
            );
            ok1 += usize::from(
                plan.run_tree(&g, g.node(0), p, FailureBehavior::Drop, seed, true)
                    .all_correct(true),
            );
        }
        assert!(ok0 >= ok1, "ok0={ok0} ok1={ok1}");
        assert!(ok0 >= 48);
    }

    #[test]
    fn random_bit_behavior_is_weaker_than_flip() {
        let g = generators::path(12);
        let p = 0.35;
        // Weak plan to surface differences.
        let plan = Plan::basic(p).repeat(3).serial(12).compile();
        let mut flip_ok = 0;
        let mut rand_ok = 0;
        for seed in 0..300 {
            flip_ok += usize::from(
                plan.run_tree(&g, g.node(0), p, FailureBehavior::Flip, seed, true)
                    .all_correct(true),
            );
            rand_ok += usize::from(
                plan.run_tree(&g, g.node(0), p, FailureBehavior::RandomBit, seed, true)
                    .all_correct(true),
            );
        }
        assert!(rand_ok >= flip_ok, "rand={rand_ok} flip={flip_ok}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::path(8);
        let plan = Plan::for_line(8, 0.3, 1e-4).expect("feasible").compile();
        let a = plan.run_tree(&g, g.node(0), 0.3, FailureBehavior::Flip, 9, true);
        let b = plan.run_tree(&g, g.node(0), 0.3, FailureBehavior::Flip, 9, true);
        assert_eq!(a, b);
    }

    #[test]
    fn single_node_graph() {
        let g = generators::path(0);
        let kb = KuceraBroadcast::new(&g, g.node(0), 0.3).expect("feasible");
        let out = kb.run(&g, 0.3, FailureBehavior::Flip, 0, true);
        assert!(out.all_correct(true));
    }

    #[test]
    fn intermediate_nodes_also_decided() {
        // Every node, not just the endpoint, must end with the bit.
        let g = generators::path(15);
        let p = 0.2;
        let plan = Plan::for_line(15, p, 1e-8).expect("feasible").compile();
        let out = plan.run_tree(&g, g.node(0), p, FailureBehavior::Flip, 3, true);
        assert_eq!(out.values.len(), 16);
        assert_eq!(out.correct_count(true), 16);
    }
}
