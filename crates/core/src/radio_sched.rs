//! Fault-free radio broadcast schedules (the paper's `opt` benchmark).
//!
//! A schedule lists, for each round, the set of nodes that transmit. In
//! the fault-free radio model a node hears a message iff it is silent and
//! exactly one of its neighbors transmits; the schedule *completes* if
//! every node ends up informed. The optimal fault-free broadcast time
//! `opt` is the natural complexity benchmark for almost-safe radio
//! broadcasting (Section 3).
//!
//! Provided here:
//!
//! * [`RadioSchedule`] — representation, fault-free simulation,
//!   validation, and schedule "parents" (who informs whom — needed by the
//!   robust expansion of Theorem 3.4);
//! * [`greedy_schedule`] — a layered greedy set-cover scheduler (upper
//!   bound on `opt` for arbitrary graphs);
//! * [`path_schedule`] — the exact `D`-round schedule for lines;
//! * [`optimal_broadcast_time`] / [`optimal_schedule`] — brute-force exact
//!   optimum for tiny graphs, used to certify Lemma 3.3 exhaustively.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use randcast_graph::{traversal, Graph, NodeId};

/// Why a schedule failed validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// A scheduled transmitter had not yet received the message.
    UninformedTransmitter {
        /// The round of the violation.
        round: usize,
        /// The offending node.
        node: NodeId,
    },
    /// The schedule ends with some nodes still uninformed.
    Incomplete {
        /// Number of uninformed nodes at the end.
        uninformed: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UninformedTransmitter { round, node } => {
                write!(f, "round {round}: transmitter {node} is uninformed")
            }
            ScheduleError::Incomplete { uninformed } => {
                write!(f, "schedule leaves {uninformed} nodes uninformed")
            }
        }
    }
}

impl Error for ScheduleError {}

/// A fault-free radio broadcast schedule: `rounds[t]` is the set of nodes
/// transmitting in round `t`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RadioSchedule {
    rounds: Vec<Vec<NodeId>>,
}

impl RadioSchedule {
    /// Wraps round transmitter sets (each set is deduplicated and
    /// sorted).
    #[must_use]
    pub fn new(rounds: Vec<Vec<NodeId>>) -> Self {
        let rounds = rounds
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        RadioSchedule { rounds }
    }

    /// Number of rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the schedule has no rounds.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The transmitter sets.
    #[must_use]
    pub fn rounds(&self) -> &[Vec<NodeId>] {
        &self.rounds
    }

    /// Fault-free simulation: returns, for each node, the round after
    /// which it became informed (`Some(0)` for the source = before round
    /// 0; `Some(t+1)` = informed by hearing in round `t`; `None` = never).
    ///
    /// An *uninformed* scheduled transmitter still occupies the channel
    /// (it transmits junk), so it causes collisions but informs nobody.
    #[must_use]
    pub fn simulate(&self, graph: &Graph, source: NodeId) -> Vec<Option<usize>> {
        let n = graph.node_count();
        let mut informed_at = vec![None; n];
        informed_at[source.index()] = Some(0);
        for (t, set) in self.rounds.iter().enumerate() {
            let mut transmitting = vec![false; n];
            for &u in set {
                transmitting[u.index()] = true;
            }
            let mut newly = Vec::new();
            for v in graph.nodes() {
                if transmitting[v.index()] || informed_at[v.index()].is_some() {
                    continue;
                }
                let heard: Vec<NodeId> = graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|u| transmitting[u.index()])
                    .collect();
                if heard.len() == 1 && informed_at[heard[0].index()].is_some() {
                    newly.push(v);
                }
            }
            for v in newly {
                informed_at[v.index()] = Some(t + 1);
            }
        }
        informed_at
    }

    /// Whether the schedule informs every node.
    #[must_use]
    pub fn completes(&self, graph: &Graph, source: NodeId) -> bool {
        self.simulate(graph, source).iter().all(Option::is_some)
    }

    /// Validates that every scheduled transmitter is informed when it
    /// speaks and that the schedule completes.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleError`] encountered.
    pub fn validate(&self, graph: &Graph, source: NodeId) -> Result<(), ScheduleError> {
        let n = graph.node_count();
        let mut informed = vec![false; n];
        informed[source.index()] = true;
        for (t, set) in self.rounds.iter().enumerate() {
            for &u in set {
                if !informed[u.index()] {
                    return Err(ScheduleError::UninformedTransmitter { round: t, node: u });
                }
            }
            let mut transmitting = vec![false; n];
            for &u in set {
                transmitting[u.index()] = true;
            }
            let mut newly = Vec::new();
            for v in graph.nodes() {
                if transmitting[v.index()] || informed[v.index()] {
                    continue;
                }
                let count = graph
                    .neighbors(v)
                    .iter()
                    .filter(|u| transmitting[u.index()])
                    .count();
                if count == 1 {
                    newly.push(v);
                }
            }
            for v in newly {
                informed[v.index()] = true;
            }
        }
        let uninformed = informed.iter().filter(|&&b| !b).count();
        if uninformed > 0 {
            return Err(ScheduleError::Incomplete { uninformed });
        }
        Ok(())
    }

    /// For each node, the `(round, sender)` of its first clean reception
    /// in the fault-free execution — the "`p(v)` gets the message from" map
    /// used by `Omission-Radio` / `Malicious-Radio` (Theorem 3.4).
    /// The source maps to `None`.
    #[must_use]
    pub fn reception_map(&self, graph: &Graph, source: NodeId) -> Vec<Option<(usize, NodeId)>> {
        let n = graph.node_count();
        let mut informed = vec![false; n];
        let mut first = vec![None; n];
        informed[source.index()] = true;
        for (t, set) in self.rounds.iter().enumerate() {
            let mut transmitting = vec![false; n];
            for &u in set {
                transmitting[u.index()] = true;
            }
            let mut newly = Vec::new();
            for v in graph.nodes() {
                if transmitting[v.index()] || informed[v.index()] {
                    continue;
                }
                let heard: Vec<NodeId> = graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|u| transmitting[u.index()])
                    .collect();
                if heard.len() == 1 && informed[heard[0].index()] {
                    newly.push((v, t, heard[0]));
                }
            }
            for (v, t, u) in newly {
                informed[v.index()] = true;
                first[v.index()] = Some((t, u));
            }
        }
        first
    }
}

/// Layered greedy scheduler: processes BFS layers outward; within a
/// layer-to-layer step it repeatedly schedules rounds, greedily packing
/// compatible transmitters (adding a transmitter only if it increases the
/// number of cleanly covered nodes).
///
/// The result is always a valid, complete schedule; its length upper
/// bounds `opt`.
///
/// # Panics
///
/// Panics if the graph is disconnected from `source`.
#[must_use]
pub fn greedy_schedule(graph: &Graph, source: NodeId) -> RadioSchedule {
    let layers = traversal::bfs_layers(graph, source);
    let n = graph.node_count();
    let mut rounds: Vec<Vec<NodeId>> = Vec::new();
    let mut covered = vec![false; n];
    covered[source.index()] = true;
    for d in 0..layers.len().saturating_sub(1) {
        let senders = &layers[d];
        let mut uncovered: Vec<NodeId> = layers[d + 1].clone();
        while !uncovered.is_empty() {
            // Build one round greedily.
            let mut round: Vec<NodeId> = Vec::new();
            let clean_cover = |round: &[NodeId]| -> usize {
                uncovered
                    .iter()
                    .filter(|v| {
                        graph
                            .neighbors(**v)
                            .iter()
                            .filter(|u| round.contains(u))
                            .count()
                            == 1
                    })
                    .count()
            };
            // Candidates sorted by raw coverage, descending (ties by id).
            let mut candidates: Vec<NodeId> = senders
                .iter()
                .copied()
                .filter(|u| graph.neighbors(*u).iter().any(|v| uncovered.contains(v)))
                .collect();
            candidates.sort_by_key(|u| {
                let cov = graph
                    .neighbors(*u)
                    .iter()
                    .filter(|v| uncovered.contains(v))
                    .count();
                (usize::MAX - cov, u.index())
            });
            let mut best = 0usize;
            for u in candidates {
                round.push(u);
                let score = clean_cover(&round);
                if score > best {
                    best = score;
                } else {
                    round.pop();
                }
            }
            debug_assert!(best > 0, "greedy round must cover something");
            let newly: Vec<NodeId> = uncovered
                .iter()
                .copied()
                .filter(|v| {
                    graph
                        .neighbors(*v)
                        .iter()
                        .filter(|u| round.contains(u))
                        .count()
                        == 1
                })
                .collect();
            for v in &newly {
                covered[v.index()] = true;
            }
            uncovered.retain(|v| !covered[v.index()]);
            rounds.push(round);
        }
    }
    RadioSchedule::new(rounds)
}

/// The exact optimal schedule for a path of `len` edges with the source
/// at position 0: node `t` transmits in round `t` (`opt = len`).
#[must_use]
pub fn path_schedule(len: usize) -> RadioSchedule {
    RadioSchedule::new((0..len).map(|t| vec![NodeId::new(t)]).collect())
}

/// Brute-force optimal fault-free broadcast time by breadth-first search
/// over informed-set states, trying every subset of "useful" informed
/// nodes each round.
///
/// Returns `None` if no schedule of length `≤ max_rounds` completes.
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes (state space is `2^n`).
#[must_use]
pub fn optimal_broadcast_time(graph: &Graph, source: NodeId, max_rounds: usize) -> Option<usize> {
    optimal_schedule(graph, source, max_rounds).map(|s| s.len())
}

/// Brute-force optimal schedule (see [`optimal_broadcast_time`]).
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes.
#[must_use]
pub fn optimal_schedule(graph: &Graph, source: NodeId, max_rounds: usize) -> Option<RadioSchedule> {
    let n = graph.node_count();
    assert!(n <= 20, "brute force limited to 20 nodes");
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let start: u32 = 1 << source.index();

    // Precompute neighbor masks.
    let nbr: Vec<u32> = (0..n)
        .map(|i| {
            graph
                .neighbors(NodeId::new(i))
                .iter()
                .fold(0u32, |acc, v| acc | (1 << v.index()))
        })
        .collect();

    // One fault-free round: informed mask + transmitter mask -> new mask.
    let apply = |informed: u32, tx: u32| -> u32 {
        let mut out = informed;
        for (v, mask) in nbr.iter().enumerate() {
            let bit = 1u32 << v;
            if informed & bit != 0 || tx & bit != 0 {
                continue;
            }
            if (mask & tx).count_ones() == 1 {
                out |= bit;
            }
        }
        out
    };

    // BFS over states; parent pointers reconstruct the schedule.
    let mut dist: HashMap<u32, usize> = HashMap::new();
    let mut parent: HashMap<u32, (u32, u32)> = HashMap::new(); // state -> (prev, tx)
    let mut frontier = vec![start];
    dist.insert(start, 0);
    if start == full {
        return Some(RadioSchedule::new(Vec::new()));
    }
    for round in 0..max_rounds {
        let mut next_frontier = Vec::new();
        for &state in &frontier {
            // Useful transmitters: informed nodes with uninformed
            // neighbors.
            let useful: Vec<usize> = (0..n)
                .filter(|&v| state & (1 << v) != 0 && nbr[v] & !state & full != 0)
                .collect();
            let k = useful.len();
            for subset in 1u32..(1 << k) {
                let tx = useful
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| subset & (1 << j) != 0)
                    .fold(0u32, |acc, (_, &v)| acc | (1 << v));
                let new_state = apply(state, tx);
                if new_state == state || dist.contains_key(&new_state) {
                    continue;
                }
                dist.insert(new_state, round + 1);
                parent.insert(new_state, (state, tx));
                if new_state == full {
                    // Reconstruct.
                    let mut sched = Vec::new();
                    let mut cur = full;
                    while cur != start {
                        let (prev, tx) = parent[&cur];
                        sched.push(
                            (0..n)
                                .filter(|&v| tx & (1 << v) != 0)
                                .map(NodeId::new)
                                .collect(),
                        );
                        cur = prev;
                    }
                    sched.reverse();
                    return Some(RadioSchedule::new(sched));
                }
                next_frontier.push(new_state);
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::generators;

    #[test]
    fn path_schedule_is_valid_and_tight() {
        let g = generators::path(5);
        let s = path_schedule(5);
        assert_eq!(s.len(), 5);
        s.validate(&g, g.node(0)).unwrap();
        // And it is optimal: distance-5 node needs 5 rounds.
        assert_eq!(optimal_broadcast_time(&g, g.node(0), 8), Some(5));
    }

    #[test]
    fn simulate_reports_informing_rounds() {
        let g = generators::path(3);
        let s = path_schedule(3);
        let at = s.simulate(&g, g.node(0));
        assert_eq!(at, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn collision_blocks_information() {
        // Path 0-1-2-3; schedule both 0 and 2 in round 0: node 1 gets a
        // collision (0 and 2 both neighbors), node 3 hears 2 — but 2 is
        // uninformed, so nothing is learned there either.
        let g = generators::path(3);
        let s = RadioSchedule::new(vec![vec![g.node(0), g.node(2)]]);
        let at = s.simulate(&g, g.node(0));
        assert_eq!(at[1], None);
        assert_eq!(at[3], None);
    }

    #[test]
    fn validate_rejects_uninformed_transmitter() {
        let g = generators::path(2);
        let s = RadioSchedule::new(vec![vec![g.node(2)]]);
        assert_eq!(
            s.validate(&g, g.node(0)),
            Err(ScheduleError::UninformedTransmitter {
                round: 0,
                node: g.node(2)
            })
        );
    }

    #[test]
    fn validate_rejects_incomplete() {
        let g = generators::path(2);
        let s = RadioSchedule::new(vec![vec![g.node(0)]]);
        assert_eq!(
            s.validate(&g, g.node(0)),
            Err(ScheduleError::Incomplete { uninformed: 1 })
        );
    }

    #[test]
    fn reception_map_names_parents() {
        let g = generators::path(3);
        let s = path_schedule(3);
        let map = s.reception_map(&g, g.node(0));
        assert_eq!(map[0], None);
        assert_eq!(map[1], Some((0, g.node(0))));
        assert_eq!(map[2], Some((1, g.node(1))));
        assert_eq!(map[3], Some((2, g.node(2))));
    }

    #[test]
    fn greedy_schedule_valid_on_families() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let graphs = vec![
            generators::path(6),
            generators::star(5),
            generators::grid(3, 4),
            generators::balanced_tree(2, 3),
            generators::lower_bound_graph(3),
            generators::random_tree(20, &mut rng),
        ];
        for g in &graphs {
            let s = greedy_schedule(g, g.node(0));
            s.validate(g, g.node(0))
                .unwrap_or_else(|e| panic!("greedy invalid: {e}"));
        }
    }

    #[test]
    fn greedy_on_star_takes_one_round_from_center() {
        let g = generators::star(6);
        let s = greedy_schedule(&g, g.node(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn brute_force_matches_known_optimum_on_star_leaf_source() {
        // Source = leaf: round 0 leaf -> center, round 1 center -> leaves.
        let g = generators::star(4);
        assert_eq!(optimal_broadcast_time(&g, g.node(1), 4), Some(2));
    }

    #[test]
    fn brute_force_respects_cap() {
        let g = generators::path(6);
        assert_eq!(optimal_broadcast_time(&g, g.node(0), 3), None);
    }

    #[test]
    fn greedy_never_beats_brute_force() {
        let graphs = vec![
            generators::path(4),
            generators::cycle(6),
            generators::star(4),
            generators::grid(2, 4),
        ];
        for g in &graphs {
            let greedy = greedy_schedule(g, g.node(0)).len();
            let opt = optimal_broadcast_time(g, g.node(0), greedy).expect("opt within greedy len");
            assert!(opt <= greedy);
        }
    }

    #[test]
    fn empty_schedule_on_single_node() {
        let g = generators::path(0);
        let s = greedy_schedule(&g, g.node(0));
        assert!(s.is_empty());
        s.validate(&g, g.node(0)).unwrap();
        assert_eq!(optimal_broadcast_time(&g, g.node(0), 0), Some(0));
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::Incomplete { uninformed: 3 };
        assert!(e.to_string().contains('3'));
    }
}
