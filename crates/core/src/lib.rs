//! Broadcast protocols and feasibility theory from Pelc & Peleg,
//! *"Feasibility and complexity of broadcasting with random transmission
//! failures"* (PODC 2005 / Theoretical Computer Science 370 (2007)).
//!
//! This is the paper's primary contribution, implemented on top of the
//! [`randcast_graph`] and [`randcast_engine`] substrates:
//!
//! | module | paper section | content |
//! |--------|---------------|---------|
//! | [`decay`] | extension | the Bar-Yehuda–Goldreich–Itai randomized Decay baseline (the paper's reference \[7\]) |
//! | [`feasibility`] | §1–2 | the four feasibility predicates and the radio threshold `p* (Δ)` solving `p = (1−p)^{Δ+1}` |
//! | [`selftimed`] | §2.1/§2.2.2 remarks | assumption-free (no global index/clock) variants: first-reception relay and the sliding-majority acceptance rule |
//! | [`simple`] | §2 | algorithms `Simple-Omission` and `Simple-Malicious` (Theorems 2.1, 2.2, 2.4), runnable in both models |
//! | [`datalink`] | §2.2.2 | the even/odd-steps single-link protocol (any `p < 1`, limited malicious) and the Theorem 2.3 impossibility harness |
//! | [`flood`] | §3, Thm 3.1 | BFS-tree flooding: omission broadcast in `O(D + log n)` rounds |
//! | [`gossip`] | extension | almost-safe gossiping after Diks–Pelc (the source of Lemma 3.1) |
//! | [`kucera`] | §3, Thm 3.2 | Kučera's line algorithm with composition rules \[CO1\]/\[CO2\], its planner, and the tree lift achieving `O(D + log^α n)` |
//! | [`radio_sched`] | §3, Lemma 3.3 | fault-free radio schedules: validation, greedy construction, exact schedules, brute-force optima |
//! | [`radio_robust`] | §3, Thm 3.4 | `Omission-Radio` / `Malicious-Radio`: `m`-fold expansion of a fault-free schedule (`O(opt · log n)`) |
//! | [`lower_bound`] | §3, Thm 3.3 | hit-counting analysis on the three-layer graph `G(m)` |
//! | [`experiment`] | — | Monte-Carlo experiment drivers shared by the reproduction binaries |
//! | [`scenario`] | — | declarative experiment specs: graph family × algorithm × model × fault as data |
//! | [`sweep`] | — | the unified sweep harness: parallel trials, structured results, one seed root |
//!
//! # Quickstart
//!
//! ```
//! use randcast_core::simple::{SimplePlan, BroadcastOutcome};
//! use randcast_engine::fault::FaultConfig;
//! use randcast_engine::mp::SilentMpAdversary;
//! use randcast_graph::generators;
//!
//! // Broadcast a bit over a 4x4 grid with omission failures (p = 0.3).
//! let g = generators::grid(4, 4);
//! let plan = SimplePlan::omission(&g, g.node(0));
//! let outcome = plan.run_mp(&g, FaultConfig::omission(0.3), SilentMpAdversary, 7, true);
//! assert!(outcome.all_correct(true)); // almost surely, at this size
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datalink;
pub mod decay;
pub mod experiment;
pub mod feasibility;
pub mod flood;
pub mod gossip;
pub mod kucera;
pub mod lower_bound;
pub mod radio_robust;
pub mod radio_sched;
pub mod scenario;
pub mod selftimed;
pub mod simple;
pub mod sweep;
