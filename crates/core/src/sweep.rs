//! The unified sweep harness: declarative cells, parallel trials,
//! structured results.
//!
//! A [`Sweep`] is an ordered list of *cells*. Each cell is one table row
//! of an experiment: a set of labelled parameters, a trial count, an
//! optional almost-safety target `n`, and a trial function. Running the
//! sweep fans every cell's trials out over
//! [`randcast_stats::montecarlo::run_trials_parallel`] and collects a
//! [`SweepResult`] that renders both the Markdown tables and the JSON
//! report from the same data.
//!
//! # Determinism
//!
//! All randomness derives from the sweep's root [`SeedSequence`]: cell
//! `i` owns the child sequence `seeds.child(i)`, and trial `j` within it
//! observes the RNG stream `child.nth_rng(j)` (plus a `u64` seed drawn
//! from that stream for engine entry points that take a seed). Because
//! the parallel runner indexes RNG streams by trial id, **outcome
//! vectors are bit-identical for every thread count** — only `wall_ms`
//! varies between runs.
//!
//! # Example
//!
//! ```
//! use randcast_core::sweep::{Sweep, TrialOutcome};
//! use randcast_stats::seed::SeedSequence;
//!
//! let mut sweep = Sweep::new("demo", SeedSequence::new(7));
//! for p in [0.25, 0.75] {
//!     sweep.cell([("p", format!("{p}"))], 200, None, move |_seed, rng| {
//!         use rand::Rng;
//!         TrialOutcome::pass(rng.gen_bool(p))
//!     });
//! }
//! let result = sweep.run();
//! assert_eq!(result.cells.len(), 2);
//! assert!(result.cells[0].estimate.rate() < result.cells[1].estimate.rate());
//! ```

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng as _;

use randcast_stats::estimate::SuccessEstimate;
use randcast_stats::montecarlo;
pub use randcast_stats::report::CellKind;
use randcast_stats::report::{CellReport, SweepReport};
use randcast_stats::seed::SeedSequence;

use crate::experiment::AlmostSafeRow;
use crate::scenario::{PreparedScenario, Scenario};

/// The result of one Monte-Carlo trial.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TrialOutcome {
    /// Whether the trial succeeded.
    pub success: bool,
    /// The completion round, for experiments that measure time.
    pub rounds: Option<f64>,
    /// The informed fraction at the end of the trial, for flood
    /// experiments in the almost-complete regime (`None` elsewhere).
    pub informed_frac: Option<f64>,
    /// The round by which an almost-complete (`1 − 1/n`) informed set
    /// was reached, when the trial measures it and it was reached.
    pub almost_rounds: Option<f64>,
}

impl TrialOutcome {
    /// A success/failure outcome with no time measurement.
    #[must_use]
    pub fn pass(success: bool) -> Self {
        TrialOutcome {
            success,
            rounds: None,
            informed_frac: None,
            almost_rounds: None,
        }
    }

    /// A timed outcome.
    #[must_use]
    pub fn with_rounds(success: bool, rounds: f64) -> Self {
        TrialOutcome {
            success,
            rounds: Some(rounds),
            informed_frac: None,
            almost_rounds: None,
        }
    }

    /// An outcome from an optional completion round: success iff the
    /// broadcast completed, with the round recorded when it did.
    #[must_use]
    pub fn completed(round: Option<usize>) -> Self {
        TrialOutcome {
            success: round.is_some(),
            rounds: round.map(|r| r as f64),
            informed_frac: None,
            almost_rounds: None,
        }
    }

    /// A flood outcome carrying the almost-complete regime metrics:
    /// success iff every node was informed, plus the informed fraction
    /// and (when reached) the `1 − 1/n` almost-complete round.
    #[must_use]
    pub fn flooded(
        completion: Option<usize>,
        informed_frac: f64,
        almost_round: Option<usize>,
    ) -> Self {
        TrialOutcome {
            success: completion.is_some(),
            rounds: completion.map(|r| r as f64),
            informed_frac: Some(informed_frac),
            almost_rounds: almost_round.map(|r| r as f64),
        }
    }
}

impl From<bool> for TrialOutcome {
    fn from(success: bool) -> Self {
        TrialOutcome::pass(success)
    }
}

type CellFn<'a> = Box<dyn Fn(u64, &mut SmallRng) -> TrialOutcome + Sync + 'a>;

struct Cell<'a> {
    kind: CellKind,
    params: Vec<(String, String)>,
    trials: usize,
    n: Option<usize>,
    run: CellFn<'a>,
}

/// A declarative experiment sweep (see the module docs).
pub struct Sweep<'a> {
    experiment: String,
    seeds: SeedSequence,
    threads: usize,
    cells: Vec<Cell<'a>>,
}

impl<'a> Sweep<'a> {
    /// Creates an empty sweep rooted at `seeds`, defaulting to one
    /// worker thread per available CPU.
    #[must_use]
    pub fn new(experiment: &str, seeds: SeedSequence) -> Self {
        Sweep {
            experiment: experiment.to_owned(),
            seeds,
            threads: default_threads(),
            cells: Vec::new(),
        }
    }

    /// Overrides the worker-thread count (the outcome vectors do not
    /// depend on it).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of cells added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Adds one cell. `params` label the cell in tables and JSON; `n`,
    /// when present, judges the measured rate against the almost-safety
    /// target `1 − 1/n`. The trial function receives a derived `u64`
    /// seed and the trial's RNG (both pure functions of the sweep root
    /// seed, the cell index, and the trial index).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn cell<P, K, V, F>(&mut self, params: P, trials: usize, n: Option<usize>, run: F)
    where
        P: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
        F: Fn(u64, &mut SmallRng) -> TrialOutcome + Sync + 'a,
    {
        assert!(trials > 0, "need at least one trial per cell");
        self.cells.push(Cell {
            kind: CellKind::MonteCarlo,
            params: params
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
            trials,
            n: n.map(|n| n.max(2)),
            run: Box::new(run),
        });
    }

    /// Adds a purely analytic table row: no trials run, and the cell is
    /// marked [`CellKind::Analytic`] so report consumers can tell it
    /// apart from a measured 100% success rate. All of its content
    /// lives in `params` (thresholds, plan sizes, ratios, …).
    pub fn analytic<P, K, V>(&mut self, params: P)
    where
        P: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        self.cells.push(Cell {
            kind: CellKind::Analytic,
            params: params
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
            trials: 1,
            n: None,
            run: Box::new(|_, _| TrialOutcome::pass(true)),
        });
    }

    /// Adds a cell from a declarative [`Scenario`].
    pub fn scenario(&mut self, scenario: Scenario, trials: usize) {
        self.scenario_with(scenario, trials, Vec::new());
    }

    /// Adds a [`Scenario`] cell with extra parameter columns appended.
    pub fn scenario_with(
        &mut self,
        scenario: Scenario,
        trials: usize,
        extra: Vec<(String, String)>,
    ) {
        self.prepared(scenario.prepare(), trials, extra);
    }

    /// Adds a cell from an already-prepared scenario (lets callers
    /// inspect plan sizes — e.g. to scale trial counts — before
    /// committing the cell).
    pub fn prepared(
        &mut self,
        prepared: PreparedScenario,
        trials: usize,
        extra: Vec<(String, String)>,
    ) {
        let mut params = prepared.params();
        params.extend(extra);
        let n = prepared.n();
        self.cell(params, trials, Some(n), move |seed, _rng| {
            prepared.trial(seed)
        });
    }

    /// Runs every cell, fanning trials across the worker threads.
    #[must_use]
    pub fn run(self) -> SweepResult {
        let threads = self.threads;
        let cells = self
            .cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                let seeds = self.seeds.child(i as u64);
                let start = Instant::now();
                let run = &cell.run;
                let outcomes =
                    montecarlo::run_trials_parallel(cell.trials, seeds, threads, |rng| {
                        let seed = rng.gen::<u64>();
                        run(seed, rng)
                    });
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let estimate = SuccessEstimate::new(
                    outcomes.iter().filter(|o| o.success).count(),
                    outcomes.len(),
                );
                let rounds: Vec<f64> = outcomes.iter().filter_map(|o| o.rounds).collect();
                let fracs: Vec<f64> = outcomes.iter().filter_map(|o| o.informed_frac).collect();
                CellResult {
                    kind: cell.kind,
                    params: cell.params,
                    estimate,
                    row: cell.n.map(|n| AlmostSafeRow::judge(estimate, n)),
                    mean_rounds: (!rounds.is_empty())
                        .then(|| rounds.iter().sum::<f64>() / rounds.len() as f64),
                    mean_informed_frac: (!fracs.is_empty())
                        .then(|| fracs.iter().sum::<f64>() / fracs.len() as f64),
                    wall_ms,
                    outcomes,
                }
            })
            .collect();
        SweepResult {
            experiment: self.experiment,
            cells,
        }
    }
}

/// One worker per available CPU (the `Sweep` default).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The measured result of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Monte-Carlo measurement or analytic row.
    pub kind: CellKind,
    /// The cell's parameter labels, as given.
    pub params: Vec<(String, String)>,
    /// Success estimate over the cell's trials.
    pub estimate: SuccessEstimate,
    /// Almost-safety judgement, when the cell declared a target `n`.
    pub row: Option<AlmostSafeRow>,
    /// Mean completion round over trials that reported one.
    pub mean_rounds: Option<f64>,
    /// Mean informed fraction over trials that reported one (the
    /// almost-complete broadcast metric).
    pub mean_informed_frac: Option<f64>,
    /// Wall-clock milliseconds spent on the cell.
    pub wall_ms: f64,
    /// The per-trial outcome vector (thread-count independent).
    pub outcomes: Vec<TrialOutcome>,
}

impl CellResult {
    /// The table label of the almost-safety verdict, if judged.
    #[must_use]
    pub fn verdict_label(&self) -> Option<String> {
        self.row.as_ref().map(AlmostSafeRow::label)
    }
}

/// The measured result of a full sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Experiment identifier.
    pub experiment: String,
    /// Per-cell results, in sweep order.
    pub cells: Vec<CellResult>,
}

impl SweepResult {
    /// Converts to the structured report (the single source for both
    /// Markdown tables and JSON).
    #[must_use]
    pub fn report(&self) -> SweepReport {
        SweepReport {
            experiment: self.experiment.clone(),
            cells: self
                .cells
                .iter()
                .map(|c| CellReport {
                    kind: c.kind,
                    params: c.params.clone(),
                    successes: c.estimate.successes(),
                    trials: c.estimate.trials(),
                    rate: c.estimate.rate(),
                    verdict: c.verdict_label(),
                    mean_rounds: c.mean_rounds,
                    mean_informed_frac: c.mean_informed_frac,
                    wall_ms: c.wall_ms,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_vectors(threads: usize) -> Vec<Vec<TrialOutcome>> {
        let mut sweep = Sweep::new("t", SeedSequence::new(11)).with_threads(threads);
        for p in [0.2, 0.5, 0.8] {
            sweep.cell([("p", format!("{p}"))], 97, Some(16), move |seed, rng| {
                use rand::Rng;
                let flip = rng.gen_bool(p);
                TrialOutcome::with_rounds(flip, (seed % 7) as f64)
            });
        }
        sweep.run().cells.into_iter().map(|c| c.outcomes).collect()
    }

    #[test]
    fn outcomes_are_thread_count_independent() {
        let base = outcome_vectors(1);
        for threads in [2, 3, 8] {
            assert_eq!(outcome_vectors(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn cells_have_decorrelated_seed_streams() {
        let mut sweep = Sweep::new("t", SeedSequence::new(3)).with_threads(1);
        for _ in 0..2 {
            sweep.cell([("k", "v")], 10, None, |seed, _| {
                TrialOutcome::with_rounds(true, seed as f64)
            });
        }
        let result = sweep.run();
        assert_ne!(
            result.cells[0].outcomes, result.cells[1].outcomes,
            "identical cells must still draw distinct trial seeds"
        );
    }

    #[test]
    fn report_carries_measurements() {
        let mut sweep = Sweep::new("exp", SeedSequence::new(0)).with_threads(2);
        sweep.cell([("a", "1")], 50, Some(8), |_, _| TrialOutcome::pass(true));
        sweep.cell([("a", "2")], 50, None, |_, _| {
            TrialOutcome::with_rounds(false, 4.0)
        });
        let report = sweep.run().report();
        assert_eq!(report.experiment, "exp");
        assert_eq!(report.cells[0].successes, 50);
        assert_eq!(report.cells[0].verdict.as_deref(), Some("pass"));
        assert_eq!(report.cells[0].mean_rounds, None);
        assert_eq!(report.cells[1].rate, 0.0);
        assert_eq!(report.cells[1].verdict, None);
        assert_eq!(report.cells[1].mean_rounds, Some(4.0));
    }

    #[test]
    fn analytic_cells_are_marked() {
        let mut sweep = Sweep::new("a", SeedSequence::new(0)).with_threads(1);
        sweep.analytic([("p*", "0.276")]);
        sweep.cell([("x", "1")], 5, None, |_, _| TrialOutcome::pass(true));
        let report = sweep.run().report();
        assert_eq!(report.cells[0].kind, CellKind::Analytic);
        assert_eq!(report.cells[1].kind, CellKind::MonteCarlo);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trial_cells_are_rejected() {
        let mut sweep = Sweep::new("t", SeedSequence::new(0));
        sweep.cell([("k", "v")], 0, None, |_, _| TrialOutcome::pass(true));
    }
}
