//! The unified sweep harness: declarative cells, a cell-*and*-trial
//! parallel worker pool, structured results.
//!
//! A [`Sweep`] is an ordered list of *cells*. Each cell is one table row
//! of an experiment: a set of labelled parameters, a trial count, an
//! optional almost-safety target `n`, and a trial function — or, for
//! declarative [`Scenario`] cells, just the scenario spec itself, which
//! the driver compiles at run time. Running the sweep fans work across
//! one worker pool in three phases:
//!
//! 1. **graph cache** — each distinct [`GraphFamily`]
//!    (`(family, seed)` spec, which pins the built graph exactly) is
//!    built **once**, in parallel, and shared across all of its cells
//!    behind an `Arc` via
//!    [`Scenario::try_prepare_shared`] — at `n = 10⁶` the build
//!    dominates sweep setup, and a `p`-sweep would otherwise rebuild it
//!    per cell;
//! 2. **prepare** — scenario cells compile their plans in parallel;
//! 3. **execute** — every cell's trials are split into chunks and all
//!    `(cell, chunk)` tasks are fed to the pool, so the sweep
//!    parallelizes across cells *and* within them (a sweep of many
//!    small cells no longer serializes on the per-cell barrier, and a
//!    single huge cell still uses every worker).
//!
//! The collected [`SweepResult`] renders both the Markdown tables and
//! the JSON report from the same data.
//!
//! # Determinism
//!
//! All randomness derives from the sweep's root [`SeedSequence`]: cell
//! `i` owns the child sequence `seeds.child(i)`, and trial `j` within it
//! observes the RNG stream `child.nth_rng(j)` (plus a `u64` seed drawn
//! from that stream for engine entry points that take a seed). Because
//! RNG streams are indexed by `(cell, trial)` — never by worker or
//! chunk — **outcome vectors are bit-identical for every thread
//! count**; only `wall_ms` varies between runs. The property test in
//! `crates/core/tests/sweep_equivalence.rs` pins this across closure
//! and scenario cells.
//!
//! Batch-capable scenario cells (fast-path plans, see
//! [`PreparedScenario::supports_batch`]) with at least
//! [`BATCH_MIN_TRIALS`] trials execute bit-sliced: trial `j` is lane
//! `j % `[`BATCH_LANES`] of block `j / `[`BATCH_LANES`], whose seed is
//! the pure function `child.child(BATCH_LABEL).nth_seed(block)` of the
//! root seed, the cell index, and the block index. Chunks are aligned
//! to block boundaries and the engines pin
//! `run_batch` ≡ `run_lane` per lane, so the batched outcome vector is
//! also thread-count independent (`crates/core/tests/batch_equivalence.rs`
//! pins the lane-exact agreement; the sweep property test covers the
//! scheduling).
//!
//! # Example
//!
//! ```
//! use randcast_core::sweep::{Sweep, TrialOutcome};
//! use randcast_stats::seed::SeedSequence;
//!
//! let mut sweep = Sweep::new("demo", SeedSequence::new(7));
//! for p in [0.25, 0.75] {
//!     sweep.cell([("p", format!("{p}"))], 200, None, move |_seed, rng| {
//!         use rand::Rng;
//!         TrialOutcome::pass(rng.gen_bool(p))
//!     });
//! }
//! let result = sweep.run();
//! assert_eq!(result.cells.len(), 2);
//! assert!(result.cells[0].estimate.rate() < result.cells[1].estimate.rate());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng as _;

use randcast_graph::Graph;
use randcast_stats::aggregate::OutcomeSummary;
use randcast_stats::estimate::SuccessEstimate;
pub use randcast_stats::report::CellKind;
use randcast_stats::report::{CellReport, SweepReport};
use randcast_stats::seed::SeedSequence;

use crate::experiment::AlmostSafeRow;
use crate::scenario::{GraphFamily, PreparedScenario, Scenario, ScenarioError, ShardSpec};

/// Lanes per bit-sliced trial block (re-exported from the engine
/// kernel so sweep consumers can size trial counts).
pub const BATCH_LANES: usize = randcast_engine::kernel::LANES;

/// Minimum trial count at which a batch-capable scenario cell runs in
/// bit-sliced blocks of [`BATCH_LANES`] trials instead of scalar
/// trials. One block is the smallest batched unit of work, so below a
/// full block the scalar path is never slower.
pub const BATCH_MIN_TRIALS: usize = BATCH_LANES;

/// Seed-tree label under which a cell derives its block seeds: block
/// `b` of cell `i` is rooted at
/// `seeds.child(i).child(BATCH_LABEL).nth_seed(b)`, a pure function of
/// `(root, cell, block)` — never of worker or chunk.
const BATCH_LABEL: u64 = 0xB10C;

/// The result of one Monte-Carlo trial.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TrialOutcome {
    /// Whether the trial succeeded.
    pub success: bool,
    /// The completion round, for experiments that measure time.
    pub rounds: Option<f64>,
    /// The informed fraction at the end of the trial, for flood
    /// experiments in the almost-complete regime (`None` elsewhere).
    pub informed_frac: Option<f64>,
    /// The round by which an almost-complete (`1 − 1/n`) informed set
    /// was reached, when the trial measures it and it was reached.
    pub almost_rounds: Option<f64>,
}

impl TrialOutcome {
    /// A success/failure outcome with no time measurement.
    #[must_use]
    pub fn pass(success: bool) -> Self {
        TrialOutcome {
            success,
            rounds: None,
            informed_frac: None,
            almost_rounds: None,
        }
    }

    /// A timed outcome.
    #[must_use]
    pub fn with_rounds(success: bool, rounds: f64) -> Self {
        TrialOutcome {
            success,
            rounds: Some(rounds),
            informed_frac: None,
            almost_rounds: None,
        }
    }

    /// An outcome from an optional completion round: success iff the
    /// broadcast completed, with the round recorded when it did.
    #[must_use]
    pub fn completed(round: Option<usize>) -> Self {
        TrialOutcome {
            success: round.is_some(),
            rounds: round.map(|r| r as f64),
            informed_frac: None,
            almost_rounds: None,
        }
    }

    /// A flood outcome carrying the almost-complete regime metrics:
    /// success iff every node was informed, plus the informed fraction
    /// and (when reached) the `1 − 1/n` almost-complete round.
    #[must_use]
    pub fn flooded(
        completion: Option<usize>,
        informed_frac: f64,
        almost_round: Option<usize>,
    ) -> Self {
        TrialOutcome {
            success: completion.is_some(),
            rounds: completion.map(|r| r as f64),
            informed_frac: Some(informed_frac),
            almost_rounds: almost_round.map(|r| r as f64),
        }
    }
}

impl From<bool> for TrialOutcome {
    fn from(success: bool) -> Self {
        TrialOutcome::pass(success)
    }
}

type CellFn<'a> = Box<dyn Fn(u64, &mut SmallRng) -> TrialOutcome + Sync + 'a>;

/// What a cell executes: a closure with fixed labels, or a declarative
/// scenario compiled by the driver at run time (so its graph can come
/// from the shared cache).
enum CellWork<'a> {
    Closure {
        params: Vec<(String, String)>,
        n: Option<usize>,
        run: CellFn<'a>,
    },
    Scenario {
        scenario: Scenario,
        extra: Vec<(String, String)>,
    },
}

struct Cell<'a> {
    kind: CellKind,
    trials: usize,
    work: CellWork<'a>,
}

/// A declarative experiment sweep (see the module docs).
pub struct Sweep<'a> {
    experiment: String,
    seeds: SeedSequence,
    threads: usize,
    shards: Option<ShardSpec>,
    cells: Vec<Cell<'a>>,
}

impl<'a> Sweep<'a> {
    /// Creates an empty sweep rooted at `seeds`, defaulting to one
    /// worker thread per available CPU.
    #[must_use]
    pub fn new(experiment: &str, seeds: SeedSequence) -> Self {
        Sweep {
            experiment: experiment.to_owned(),
            seeds,
            threads: default_threads(),
            shards: None,
            cells: Vec::new(),
        }
    }

    /// Overrides the worker-thread count (the outcome vectors do not
    /// depend on it).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Overrides every scenario cell's [`ShardSpec`] at prepare time —
    /// the sweep-level shard knob (e.g. a `--shards` CLI flag).
    /// Sharded and monolithic passes are bit-identical, so the outcome
    /// vectors do not depend on this either; shard passes are simply
    /// scheduled inside the existing `(cell, chunk)` tasks on the
    /// worker pool. Cells added via [`prepared`](Self::prepared) are
    /// compiled before the sweep runs and keep their own spec.
    #[must_use]
    pub fn with_shards(mut self, shards: ShardSpec) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of cells added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Adds one cell. `params` label the cell in tables and JSON; `n`,
    /// when present, judges the measured rate against the almost-safety
    /// target `1 − 1/n`. The trial function receives a derived `u64`
    /// seed and the trial's RNG (both pure functions of the sweep root
    /// seed, the cell index, and the trial index).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn cell<P, K, V, F>(&mut self, params: P, trials: usize, n: Option<usize>, run: F)
    where
        P: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
        F: Fn(u64, &mut SmallRng) -> TrialOutcome + Sync + 'a,
    {
        assert!(trials > 0, "need at least one trial per cell");
        self.cells.push(Cell {
            kind: CellKind::MonteCarlo,
            trials,
            work: CellWork::Closure {
                params: params
                    .into_iter()
                    .map(|(k, v)| (k.into(), v.into()))
                    .collect(),
                n: n.map(|n| n.max(2)),
                run: Box::new(run),
            },
        });
    }

    /// Adds a purely analytic table row: no trials run, and the cell is
    /// marked [`CellKind::Analytic`] so report consumers can tell it
    /// apart from a measured 100% success rate. All of its content
    /// lives in `params` (thresholds, plan sizes, ratios, …).
    pub fn analytic<P, K, V>(&mut self, params: P)
    where
        P: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        self.cells.push(Cell {
            kind: CellKind::Analytic,
            trials: 1,
            work: CellWork::Closure {
                params: params
                    .into_iter()
                    .map(|(k, v)| (k.into(), v.into()))
                    .collect(),
                n: None,
                run: Box::new(|_, _| TrialOutcome::pass(true)),
            },
        });
    }

    /// Adds a cell from a declarative [`Scenario`].
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid (see
    /// [`try_scenario`](Self::try_scenario) for the non-panicking
    /// entry point).
    pub fn scenario(&mut self, scenario: Scenario, trials: usize) {
        self.scenario_with(scenario, trials, Vec::new());
    }

    /// Adds a [`Scenario`] cell with extra parameter columns appended.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid.
    pub fn scenario_with(
        &mut self,
        scenario: Scenario,
        trials: usize,
        extra: Vec<(String, String)>,
    ) {
        self.try_scenario_with(scenario, trials, extra)
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    }

    /// Adds a cell from a declarative [`Scenario`], rejecting invalid
    /// specs instead of panicking — the entry point for sweep builders
    /// whose scenarios are data (config files, CLI input).
    ///
    /// The cell's graph comes from the driver's per-`(family, seed)`
    /// build cache at run time, so sweeps spanning several fault levels
    /// over one family build its graph once.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] of [`Scenario::validate`].
    /// Graph-dependent planning failures (e.g. Kučera amplification
    /// beyond the cap on the *built* graph) are not detectable without
    /// building, and still abort the run itself.
    pub fn try_scenario(&mut self, scenario: Scenario, trials: usize) -> Result<(), ScenarioError> {
        self.try_scenario_with(scenario, trials, Vec::new())
    }

    /// [`try_scenario`](Self::try_scenario) with extra parameter
    /// columns appended.
    ///
    /// # Errors
    ///
    /// As [`try_scenario`](Self::try_scenario).
    pub fn try_scenario_with(
        &mut self,
        scenario: Scenario,
        trials: usize,
        extra: Vec<(String, String)>,
    ) -> Result<(), ScenarioError> {
        assert!(trials > 0, "need at least one trial per cell");
        scenario.validate()?;
        self.cells.push(Cell {
            kind: CellKind::MonteCarlo,
            trials,
            work: CellWork::Scenario { scenario, extra },
        });
        Ok(())
    }

    /// Adds a cell from an already-prepared scenario (lets callers
    /// inspect plan sizes — e.g. to scale trial counts — before
    /// committing the cell). Cells added this way hold their own
    /// prepared graph; use [`try_scenario`](Self::try_scenario) to
    /// share builds through the run-time cache instead.
    pub fn prepared(
        &mut self,
        prepared: PreparedScenario,
        trials: usize,
        extra: Vec<(String, String)>,
    ) {
        let mut params = prepared.params();
        params.extend(extra);
        let n = prepared.n();
        self.cell(params, trials, Some(n), move |seed, _rng| {
            prepared.trial(seed)
        });
    }

    /// Runs every cell, fanning the graph builds, the scenario
    /// compiles, and all `(cell, trial-chunk)` tasks across the worker
    /// pool.
    #[must_use]
    pub fn run(self) -> SweepResult {
        let threads = self.threads;
        let seeds = self.seeds;
        let shards = self.shards;
        let cells = self.cells;

        // Phase 1: build each distinct scenario graph once, in
        // parallel, keyed by the full family spec (which includes the
        // construction seed).
        let mut families: Vec<GraphFamily> = Vec::new();
        for cell in &cells {
            if let CellWork::Scenario { scenario, .. } = &cell.work {
                if !families.contains(&scenario.graph) {
                    families.push(scenario.graph);
                }
            }
        }
        let graph_slots: Vec<OnceLock<Arc<Graph>>> =
            (0..families.len()).map(|_| OnceLock::new()).collect();
        parallel_for_each(families.len(), threads, |i| {
            let built = Arc::new(families[i].build());
            graph_slots[i].set(built).expect("each family built once");
        });
        let graphs: HashMap<GraphFamily, Arc<Graph>> = families
            .iter()
            .zip(&graph_slots)
            .map(|(family, slot)| {
                (
                    *family,
                    Arc::clone(slot.get().expect("family build completed")),
                )
            })
            .collect();

        // Phase 2: compile scenario cells into runnable form, in
        // parallel (plan compilation does BFS and Chernoff sizing).
        let resolved_slots: Vec<OnceLock<ResolvedCell<'_, 'a>>> =
            (0..cells.len()).map(|_| OnceLock::new()).collect();
        parallel_for_each(cells.len(), threads, |i| {
            let resolved = match &cells[i].work {
                CellWork::Closure { params, n, run } => ResolvedCell {
                    params: params.clone(),
                    n: *n,
                    exec: CellExec::Closure(run),
                },
                CellWork::Scenario { scenario, extra } => {
                    let graph = Arc::clone(&graphs[&scenario.graph]);
                    let mut scenario = *scenario;
                    if let Some(spec) = shards {
                        scenario.shards = spec;
                    }
                    let prepared = scenario
                        .try_prepare_shared(graph)
                        .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
                    let mut params = prepared.params();
                    params.extend(extra.iter().cloned());
                    ResolvedCell {
                        // Same clamp as `cell()`: a 1-node target would
                        // make the almost-safety bar 1 − 1/n = 0.
                        n: Some(prepared.n().max(2)),
                        params,
                        exec: CellExec::Scenario(Box::new(prepared)),
                    }
                }
            };
            let _ = resolved_slots[i].set(resolved);
        });

        // Phase 3: execute all (cell, chunk) tasks on the pool. Chunks
        // only partition work — trial RNG streams are indexed by
        // (cell, trial) and block seeds by (cell, block), so outcomes
        // cannot depend on scheduling. Batch-capable scenario cells
        // with at least one full block run bit-sliced: trial j is lane
        // j % BATCH_LANES of block j / BATCH_LANES, chunks are aligned
        // to block boundaries so whole blocks go to one worker, and a
        // partial tail block replays its occupied lanes scalar-style
        // (the engines pin lane-exact agreement between the two).
        struct Task {
            cell: usize,
            start: usize,
            len: usize,
            batched: bool,
        }
        let mut tasks: Vec<Task> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let resolved = resolved_slots[i]
                .get()
                .expect("phase 2 resolved every cell");
            let batched = cell.trials >= BATCH_MIN_TRIALS
                && match &resolved.exec {
                    CellExec::Scenario(prepared) => prepared.supports_batch(),
                    CellExec::Closure(_) => false,
                };
            let mut chunk = cell.trials.div_ceil(threads).max(1);
            if batched {
                chunk = chunk.next_multiple_of(BATCH_LANES);
            }
            let mut start = 0;
            while start < cell.trials {
                let len = chunk.min(cell.trials - start);
                tasks.push(Task {
                    cell: i,
                    start,
                    len,
                    batched,
                });
                start += len;
            }
        }
        // Threads left idle by the task fan-out go to intra-trial
        // shard parallelism: with fewer tasks than workers, each
        // batched block fans its independent shard passes across the
        // spare threads. The parallel merge is byte-identical to the
        // sequential pass, so outcome vectors still cannot depend on
        // the thread count.
        let intra = (threads / tasks.len().max(1)).max(1);
        let outcomes: Vec<Mutex<Vec<Option<TrialOutcome>>>> = cells
            .iter()
            .map(|c| Mutex::new(vec![None; c.trials]))
            .collect();
        let spans: Vec<Mutex<Option<(Instant, Instant)>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        parallel_for_each(tasks.len(), threads, |t| {
            let task = &tasks[t];
            let resolved = resolved_slots[task.cell]
                .get()
                .expect("phase 2 resolved every cell");
            let cell_seeds = seeds.child(task.cell as u64);
            let started = Instant::now();
            let mut local = Vec::with_capacity(task.len);
            match &resolved.exec {
                CellExec::Scenario(prepared) if task.batched => {
                    // Whole blocks in one bit-sliced pass; the tail
                    // block (when trials % BATCH_LANES != 0) replays
                    // its occupied lanes through the scalar lane path,
                    // which the engines pin to agree lane-for-lane.
                    let block_seeds = cell_seeds.child(BATCH_LABEL);
                    let mut j = task.start;
                    while j < task.start + task.len {
                        debug_assert_eq!(j % BATCH_LANES, 0, "tasks are block-aligned");
                        let block_seed = block_seeds.nth_seed((j / BATCH_LANES) as u64);
                        let remaining = task.start + task.len - j;
                        if remaining >= BATCH_LANES {
                            local.extend(
                                prepared
                                    .trial_block_threads(block_seed, intra)
                                    .into_iter()
                                    .map(Some),
                            );
                            j += BATCH_LANES;
                        } else {
                            for lane in 0..remaining {
                                local.push(Some(prepared.trial_lane(block_seed, lane as u32)));
                            }
                            j += remaining;
                        }
                    }
                }
                _ => {
                    for j in task.start..task.start + task.len {
                        let mut rng = cell_seeds.nth_rng(j as u64);
                        let seed = rng.gen::<u64>();
                        local.push(Some(match &resolved.exec {
                            CellExec::Closure(run) => run(seed, &mut rng),
                            CellExec::Scenario(prepared) => prepared.trial(seed),
                        }));
                    }
                }
            }
            let ended = Instant::now();
            outcomes[task.cell].lock().expect("outcome lock")[task.start..task.start + task.len]
                .clone_from_slice(&local);
            let mut span = spans[task.cell].lock().expect("span lock");
            *span = match *span {
                None => Some((started, ended)),
                Some((s, e)) => Some((s.min(started), e.max(ended))),
            };
        });

        // Collect, in cell order.
        let results = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let resolved = resolved_slots[i].get().expect("resolved");
                let outcomes: Vec<TrialOutcome> = outcomes[i]
                    .lock()
                    .expect("outcome lock")
                    .iter()
                    .map(|o| o.expect("all trials filled"))
                    .collect();
                let summary = OutcomeSummary::collect(
                    outcomes
                        .iter()
                        .map(|o| (o.success, o.rounds, o.informed_frac)),
                );
                let estimate = SuccessEstimate::new(summary.successes, summary.trials);
                let wall_ms = spans[i]
                    .lock()
                    .expect("span lock")
                    .map_or(0.0, |(s, e)| e.duration_since(s).as_secs_f64() * 1e3);
                CellResult {
                    kind: cell.kind,
                    params: resolved.params.clone(),
                    estimate,
                    row: resolved.n.map(|n| AlmostSafeRow::judge(estimate, n)),
                    mean_rounds: summary.mean_rounds,
                    mean_informed_frac: summary.mean_informed_frac,
                    wall_ms,
                    outcomes,
                }
            })
            .collect();
        SweepResult {
            experiment: self.experiment,
            cells: results,
        }
    }
}

/// How a resolved cell executes its trials.
enum CellExec<'c, 'a> {
    Closure(&'c CellFn<'a>),
    // Boxed: a prepared scenario (engine plan + optional shard plan)
    // dwarfs the closure variant.
    Scenario(Box<PreparedScenario>),
}

/// A cell after phase 2: labels, target `n`, and an executable.
struct ResolvedCell<'c, 'a> {
    params: Vec<(String, String)>,
    n: Option<usize>,
    exec: CellExec<'c, 'a>,
}

/// Runs `f(0..count)` across at most `threads` workers pulling from a
/// shared index — the sweep's one parallelism primitive. Results must
/// flow through `Sync` state owned by the caller; panics in `f`
/// propagate.
fn parallel_for_each(count: usize, threads: usize, f: impl Fn(usize) + Sync) {
    if threads <= 1 || count <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                f(i);
            });
        }
    });
}

/// One worker per available CPU (the `Sweep` default).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The measured result of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Monte-Carlo measurement or analytic row.
    pub kind: CellKind,
    /// The cell's parameter labels, as given.
    pub params: Vec<(String, String)>,
    /// Success estimate over the cell's trials.
    pub estimate: SuccessEstimate,
    /// Almost-safety judgement, when the cell declared a target `n`.
    pub row: Option<AlmostSafeRow>,
    /// Mean completion round over trials that reported one.
    pub mean_rounds: Option<f64>,
    /// Mean informed fraction over trials that reported one (the
    /// almost-complete broadcast metric).
    pub mean_informed_frac: Option<f64>,
    /// Wall-clock milliseconds spanned by the cell's trial tasks
    /// (first task start to last task end; tasks of other cells may
    /// interleave).
    pub wall_ms: f64,
    /// The per-trial outcome vector (thread-count independent).
    pub outcomes: Vec<TrialOutcome>,
}

impl CellResult {
    /// The table label of the almost-safety verdict, if judged.
    #[must_use]
    pub fn verdict_label(&self) -> Option<String> {
        self.row.as_ref().map(AlmostSafeRow::label)
    }
}

/// The measured result of a full sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Experiment identifier.
    pub experiment: String,
    /// Per-cell results, in sweep order.
    pub cells: Vec<CellResult>,
}

impl SweepResult {
    /// Converts to the structured report (the single source for both
    /// Markdown tables and JSON).
    #[must_use]
    pub fn report(&self) -> SweepReport {
        SweepReport {
            experiment: self.experiment.clone(),
            cells: self
                .cells
                .iter()
                .map(|c| CellReport {
                    kind: c.kind,
                    params: c.params.clone(),
                    successes: c.estimate.successes(),
                    trials: c.estimate.trials(),
                    rate: c.estimate.rate(),
                    verdict: c.verdict_label(),
                    mean_rounds: c.mean_rounds,
                    mean_informed_frac: c.mean_informed_frac,
                    wall_ms: c.wall_ms,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Algorithm, Model};
    use randcast_engine::fault::FaultConfig;

    fn outcome_vectors(threads: usize) -> Vec<Vec<TrialOutcome>> {
        let mut sweep = Sweep::new("t", SeedSequence::new(11)).with_threads(threads);
        for p in [0.2, 0.5, 0.8] {
            sweep.cell([("p", format!("{p}"))], 97, Some(16), move |seed, rng| {
                use rand::Rng;
                let flip = rng.gen_bool(p);
                TrialOutcome::with_rounds(flip, (seed % 7) as f64)
            });
        }
        sweep.run().cells.into_iter().map(|c| c.outcomes).collect()
    }

    #[test]
    fn outcomes_are_thread_count_independent() {
        let base = outcome_vectors(1);
        for threads in [2, 3, 8] {
            assert_eq!(outcome_vectors(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn cells_have_decorrelated_seed_streams() {
        let mut sweep = Sweep::new("t", SeedSequence::new(3)).with_threads(1);
        for _ in 0..2 {
            sweep.cell([("k", "v")], 10, None, |seed, _| {
                TrialOutcome::with_rounds(true, seed as f64)
            });
        }
        let result = sweep.run();
        assert_ne!(
            result.cells[0].outcomes, result.cells[1].outcomes,
            "identical cells must still draw distinct trial seeds"
        );
    }

    #[test]
    fn report_carries_measurements() {
        let mut sweep = Sweep::new("exp", SeedSequence::new(0)).with_threads(2);
        sweep.cell([("a", "1")], 50, Some(8), |_, _| TrialOutcome::pass(true));
        sweep.cell([("a", "2")], 50, None, |_, _| {
            TrialOutcome::with_rounds(false, 4.0)
        });
        let report = sweep.run().report();
        assert_eq!(report.experiment, "exp");
        assert_eq!(report.cells[0].successes, 50);
        assert_eq!(report.cells[0].verdict.as_deref(), Some("pass"));
        assert_eq!(report.cells[0].mean_rounds, None);
        assert_eq!(report.cells[1].rate, 0.0);
        assert_eq!(report.cells[1].verdict, None);
        assert_eq!(report.cells[1].mean_rounds, Some(4.0));
    }

    #[test]
    fn analytic_cells_are_marked() {
        let mut sweep = Sweep::new("a", SeedSequence::new(0)).with_threads(1);
        sweep.analytic([("p*", "0.276")]);
        sweep.cell([("x", "1")], 5, None, |_, _| TrialOutcome::pass(true));
        let report = sweep.run().report();
        assert_eq!(report.cells[0].kind, CellKind::Analytic);
        assert_eq!(report.cells[1].kind, CellKind::MonteCarlo);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trial_cells_are_rejected() {
        let mut sweep = Sweep::new("t", SeedSequence::new(0));
        sweep.cell([("k", "v")], 0, None, |_, _| TrialOutcome::pass(true));
    }

    #[test]
    fn try_scenario_rejects_invalid_cells_without_panicking() {
        let mut sweep = Sweep::new("t", SeedSequence::new(1));
        let bad = Scenario {
            graph: GraphFamily::Path(4),
            algorithm: Algorithm::Kucera,
            model: Model::Radio,
            fault: FaultConfig::omission(0.1),
            shards: ShardSpec::Auto,
        };
        let err = sweep.try_scenario(bad, 5).expect_err("invalid model combo");
        assert!(err.to_string().contains("radio"), "{err}");
        assert!(sweep.is_empty(), "rejected cells must not be added");
        // A valid scenario is accepted and runs.
        sweep
            .try_scenario(
                Scenario {
                    graph: GraphFamily::Path(4),
                    algorithm: Algorithm::Simple,
                    model: Model::Mp,
                    fault: FaultConfig::omission(0.1),
                    shards: ShardSpec::Auto,
                },
                5,
            )
            .expect("valid scenario");
        assert_eq!(sweep.len(), 1);
        let result = sweep.run();
        assert_eq!(result.cells[0].outcomes.len(), 5);
        assert_eq!(result.cells[0].params[0].1, "path-4");
    }

    #[test]
    fn scenario_cells_share_one_graph_build_per_family() {
        // Two p-cells over the same (family, seed) spec plus one over a
        // different seed: the cache must key on the full spec, and the
        // shared build must produce the same outcomes as independent
        // prepares.
        let family = GraphFamily::Gnp {
            n: 60,
            avg_deg: 4,
            seed: 9,
        };
        let other = GraphFamily::Gnp {
            n: 60,
            avg_deg: 4,
            seed: 10,
        };
        let mut sweep = Sweep::new("cache", SeedSequence::new(5)).with_threads(4);
        for (i, graph) in [family, family, other].into_iter().enumerate() {
            sweep.scenario_with(
                Scenario {
                    graph,
                    algorithm: Algorithm::FloodFast { horizon_scale: 2 },
                    model: Model::Mp,
                    fault: FaultConfig::omission(0.2),
                    shards: ShardSpec::Auto,
                },
                7,
                vec![("cell".into(), i.to_string())],
            );
        }
        let shared = sweep.run();
        // Reference: each cell prepared independently.
        let mut reference = Sweep::new("cache", SeedSequence::new(5)).with_threads(1);
        for (i, graph) in [family, family, other].into_iter().enumerate() {
            reference.prepared(
                Scenario {
                    graph,
                    algorithm: Algorithm::FloodFast { horizon_scale: 2 },
                    model: Model::Mp,
                    fault: FaultConfig::omission(0.2),
                    shards: ShardSpec::Auto,
                }
                .try_prepare()
                .expect("valid"),
                7,
                vec![("cell".into(), i.to_string())],
            );
        }
        let independent = reference.run();
        for (a, b) in shared.cells.iter().zip(&independent.cells) {
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.params, b.params);
        }
    }

    /// A forced-fast-path cell: batch-capable at any size.
    fn batch_scenario() -> Scenario {
        Scenario {
            graph: GraphFamily::Grid(6, 6),
            algorithm: Algorithm::FloodFast { horizon_scale: 2 },
            model: Model::Mp,
            fault: FaultConfig::omission(0.3),
            shards: ShardSpec::Auto,
        }
    }

    fn batch_cell_outcomes(trials: usize, threads: usize) -> Vec<TrialOutcome> {
        let mut sweep = Sweep::new("b", SeedSequence::new(21)).with_threads(threads);
        sweep.scenario(batch_scenario(), trials);
        sweep.run().cells.remove(0).outcomes
    }

    #[test]
    fn batched_scenario_outcomes_are_thread_count_independent() {
        // 130 trials = two full blocks plus a two-lane tail, so this
        // exercises block-aligned chunking and the tail replay.
        let base = batch_cell_outcomes(130, 1);
        for threads in [2, 3, 8] {
            assert_eq!(batch_cell_outcomes(130, threads), base, "threads={threads}");
        }
    }

    #[test]
    fn batched_cells_follow_the_block_lane_seed_contract() {
        // Trial j of a batched cell must be lane j % BATCH_LANES of
        // block j / BATCH_LANES under the cell's BATCH_LABEL child
        // sequence — the documented addressing, pinned against the
        // scalar lane replay.
        let trials = 130;
        let outcomes = batch_cell_outcomes(trials, 4);
        let prepared = batch_scenario().try_prepare().expect("valid scenario");
        assert!(prepared.supports_batch());
        let block_seeds = SeedSequence::new(21).child(0).child(BATCH_LABEL);
        for (j, out) in outcomes.iter().enumerate() {
            let block_seed = block_seeds.nth_seed((j / BATCH_LANES) as u64);
            let expected = prepared.trial_lane(block_seed, (j % BATCH_LANES) as u32);
            assert_eq!(*out, expected, "trial {j}");
        }
    }

    #[test]
    fn batching_engages_exactly_at_one_full_block() {
        use rand::Rng;
        let prepared = batch_scenario().try_prepare().expect("valid scenario");
        let cell_seeds = SeedSequence::new(21).child(0);
        // Below a full block the cell runs the scalar (cell, trial)
        // RNG stream unchanged.
        let below = batch_cell_outcomes(BATCH_MIN_TRIALS - 1, 2);
        for (j, out) in below.iter().enumerate() {
            let mut rng = cell_seeds.nth_rng(j as u64);
            let seed = rng.gen::<u64>();
            assert_eq!(*out, prepared.trial(seed), "scalar trial {j}");
        }
        // From one full block on, the bit-sliced lane stream.
        let at = batch_cell_outcomes(BATCH_MIN_TRIALS, 2);
        let block_seed = cell_seeds.child(BATCH_LABEL).nth_seed(0);
        assert_eq!(at, prepared.trial_block(block_seed));
    }

    #[test]
    fn single_heavy_cell_still_parallelizes_deterministically() {
        // One cell, many trials: chunking must not affect outcomes.
        let run = |threads| {
            let mut sweep = Sweep::new("one", SeedSequence::new(2)).with_threads(threads);
            sweep.cell([("k", "v")], 503, None, |seed, rng| {
                use rand::Rng;
                TrialOutcome::with_rounds(rng.gen_bool(0.5), (seed % 13) as f64)
            });
            sweep.run().cells.remove(0).outcomes
        };
        let base = run(1);
        for threads in [2, 5, 16] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }
}
