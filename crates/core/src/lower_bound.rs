//! Hit-counting analysis on the three-layer lower-bound graph `G(m)`
//! (Theorem 3.3 / Lemmas 3.3–3.4).
//!
//! `G(m)` has a root `s`, `m` "bit" nodes `b_1 … b_m` adjacent to `s`, and
//! `2^m − 1` layer-3 nodes, where node with value `v` is adjacent to `b_i`
//! iff bit `i` of `v` is set. Fault-free broadcast takes `opt = m + 1`
//! rounds, but almost-safe broadcast requires
//! `Ω(log n · log log n / log log log n)` rounds.
//!
//! Following the paper, layer-2 scheduling is analyzed through **hits**: a
//! layer-3 node `v` is *hit* by a round transmitting the set
//! `A ⊆ {1..m}` iff `|A ∩ P_v| = 1` (`P_v` = set bit positions of `v`),
//! because only then can `v` cleanly hear. If `v` collects `h_v` hits
//! over the schedule, it misses all of them with probability `p^{h_v}`
//! (Claim 3.1), so almost-safety forces `h_v ≥ c log n` for all `v`
//! (Claim 3.2).
//!
//! Note on exactness: with omission failures, a round with
//! `|A ∩ P_v| = k ≥ 2` can still inform `v` if exactly `k − 1` of those
//! transmitters happen to fail, so the true miss probability is at most
//! `p^{h_v}`. The Monte-Carlo runner [`LayerSchedule::simulate_omission`] samples the
//! full process including these failure-assisted receptions; the paper's
//! hit bound is reported alongside it.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use randcast_graph::NodeId;

use crate::radio_sched::RadioSchedule;

/// A broadcast schedule for the layer-2 nodes of `G(m)`: each round
/// transmits a subset of bit indices `{1..=m}`, represented as a bitmask
/// over bits `0..m` (mask bit `i − 1` ⇔ node `b_i`).
///
/// The source round is implicit (the paper's Lemma 3.4 assumes the source
/// is fault-free, so one initial round by `s` informs all of layer 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LayerSchedule {
    m: usize,
    rounds: Vec<u32>,
}

impl LayerSchedule {
    /// Wraps explicit round masks.
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0 or exceeds 24, or a mask has bits `≥ m`.
    #[must_use]
    pub fn new(m: usize, rounds: Vec<u32>) -> Self {
        assert!((1..=24).contains(&m), "m out of supported range");
        let full = (1u32 << m) - 1;
        for &r in &rounds {
            assert!(r & !full == 0, "round mask uses bits beyond m");
        }
        LayerSchedule { m, rounds }
    }

    /// The number of bit nodes `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of layer-2 rounds (excluding the implicit source round).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the schedule has no rounds.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The round masks.
    #[must_use]
    pub fn rounds(&self) -> &[u32] {
        &self.rounds
    }

    /// The singleton round-robin schedule: `b_1, …, b_m` repeated `reps`
    /// times (`τ = m · reps`). A layer-3 node of Hamming weight `j`
    /// collects `h_v = j · reps` hits, so the binding constraint is the
    /// weight-1 class: `reps ≥ c log n`.
    #[must_use]
    pub fn singletons(m: usize, reps: usize) -> Self {
        let rounds = (0..reps).flat_map(|_| (0..m).map(|i| 1u32 << i)).collect();
        LayerSchedule::new(m, rounds)
    }

    /// The *scale schedule*: for each scale `ℓ ∈ {1, 2, 4, …}` (capped at
    /// `m`) and each of `reps` repetitions, one uniformly random subset of
    /// size `ℓ`. Subsets of size `≈ m/j` are the efficient hitters of the
    /// weight-`j` class (Claim 3.5), so `O(log m)` scales with
    /// `reps = O(log n)` repetitions cover every class —
    /// `τ = O(log n · log m)`, the shape the lower bound says cannot be
    /// improved past `log n · log log n / log log log n`.
    #[must_use]
    pub fn scales(m: usize, reps: usize, rng: &mut SmallRng) -> Self {
        let mut rounds = Vec::new();
        let mut ell = 1usize;
        let mut sizes = Vec::new();
        while ell <= m {
            sizes.push(ell);
            ell *= 2;
        }
        let mut positions: Vec<usize> = (0..m).collect();
        for _ in 0..reps {
            for &size in &sizes {
                positions.shuffle(rng);
                let mask = positions[..size]
                    .iter()
                    .fold(0u32, |acc, &i| acc | (1 << i));
                rounds.push(mask);
            }
        }
        LayerSchedule::new(m, rounds)
    }

    /// Number of hits on the layer-3 node with value `value`
    /// (`H(v, t) = 1` iff `|A_t ∩ P_v| = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not in `1..2^m`.
    #[must_use]
    pub fn hits(&self, value: u32) -> usize {
        assert!(value >= 1 && value < (1u32 << self.m), "value out of range");
        self.rounds
            .iter()
            .filter(|&&a| (a & value).count_ones() == 1)
            .count()
    }

    /// The minimum hit count over all layer-3 nodes — the paper's
    /// binding quantity (Claim 3.2 requires it to be `≥ c log n`).
    #[must_use]
    pub fn min_hits(&self) -> usize {
        (1..(1u32 << self.m)).map(|v| self.hits(v)).min().unwrap()
    }

    /// The union-bound failure estimate `Σ_v p^{h_v}` (the paper's
    /// Claim 3.1 + union bound). Almost-safety needs this `≤ 1/n` with
    /// `n = 2^m + m`.
    #[must_use]
    pub fn union_bound_failure(&self, p: f64) -> f64 {
        (1..(1u32 << self.m))
            .map(|v| p.powi(self.hits(v) as i32))
            .sum()
    }

    /// Monte-Carlo simulation of the omission-fault process (source
    /// assumed fault-free, as in Lemma 3.4): layer-2 transmitters fail
    /// independently with probability `p` per round; a layer-3 node is
    /// informed when exactly one of its *actually transmitting* neighbors
    /// transmits. Returns whether every layer-3 node was informed.
    #[must_use]
    pub fn simulate_omission(&self, p: f64, rng: &mut SmallRng) -> bool {
        let total = (1u32 << self.m) - 1;
        let mut informed = vec![false; total as usize + 1];
        let mut remaining = total as usize;
        for &mask in &self.rounds {
            // Sample per-transmitter omission faults.
            let mut actual = 0u32;
            for i in 0..self.m {
                if mask & (1 << i) != 0 && !rng.gen_bool(p) {
                    actual |= 1 << i;
                }
            }
            if actual == 0 {
                continue;
            }
            for v in 1..=total {
                if !informed[v as usize] && (actual & v).count_ones() == 1 {
                    informed[v as usize] = true;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                return true;
            }
        }
        remaining == 0
    }

    /// Converts to a full [`RadioSchedule`] on
    /// [`lower_bound_graph(m)`](randcast_graph::generators::lower_bound_graph):
    /// one initial round by the source, then the layer-2 rounds.
    #[must_use]
    pub fn to_radio_schedule(&self) -> RadioSchedule {
        let mut rounds: Vec<Vec<NodeId>> = vec![vec![NodeId::new(0)]];
        for &mask in &self.rounds {
            rounds.push(
                (0..self.m)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| NodeId::new(i + 1))
                    .collect(),
            );
        }
        RadioSchedule::new(rounds)
    }
}

/// The exact `(m + 1)`-round optimal schedule of Lemma 3.3: the source,
/// then each bit node alone.
#[must_use]
pub fn lemma33_schedule(m: usize) -> LayerSchedule {
    LayerSchedule::singletons(m, 1)
}

/// The paper's lower-bound growth function
/// `log n · log log n / log log log n` (binary logs, clamped below at 1).
#[must_use]
pub fn lower_bound_curve(n: usize) -> f64 {
    let log = |x: f64| x.log2().max(1.0);
    let ln_n = log(n as f64);
    let ll = log(ln_n);
    let lll = log(ll);
    ln_n * ll / lll
}

/// Finds the minimal repetition count for a schedule family such that the
/// union-bound failure estimate drops to `target` (doubling then binary
/// search). Returns `(reps, rounds)`.
pub fn min_reps_for_target<F>(mut family: F, p: f64, target: f64) -> (usize, usize)
where
    F: FnMut(usize) -> LayerSchedule,
{
    let mut hi = 1usize;
    while family(hi).union_bound_failure(p) > target {
        hi *= 2;
        assert!(hi <= 1 << 20, "target unreachable");
    }
    let mut lo = hi / 2; // family(lo) fails (or lo == 0)
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if family(mid).union_bound_failure(p) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let sched = family(hi);
    (hi, sched.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use randcast_graph::generators;

    #[test]
    fn hits_match_hand_computation() {
        // m = 3, schedule { {b1}, {b1,b2}, {b1,b2,b3} }.
        let s = LayerSchedule::new(3, vec![0b001, 0b011, 0b111]);
        // v = 0b001: hits in round 0 (|{1}|=1), round 1 (|{1}|=1),
        // round 2 (|{1}|=1) => 3.
        assert_eq!(s.hits(0b001), 3);
        // v = 0b011: round 0: |{1}| = 1 hit; round 1: |{1,2}| = 2 no;
        // round 2: 2 no => 1.
        assert_eq!(s.hits(0b011), 1);
        // v = 0b110: round 0: 0; round 1: |{2}|=1 hit; round 2: 2 => 1.
        assert_eq!(s.hits(0b110), 1);
        assert_eq!(s.min_hits(), 1);
    }

    #[test]
    fn singleton_hits_are_weight_times_reps() {
        let m = 5;
        let reps = 4;
        let s = LayerSchedule::singletons(m, reps);
        for v in 1u32..(1 << m) {
            assert_eq!(s.hits(v), v.count_ones() as usize * reps);
        }
        assert_eq!(s.len(), m * reps);
        assert_eq!(s.min_hits(), reps);
    }

    #[test]
    fn lemma33_schedule_is_valid_and_optimal_length() {
        for m in 1..=4 {
            let g = generators::lower_bound_graph(m);
            let radio = lemma33_schedule(m).to_radio_schedule();
            assert_eq!(radio.len(), m + 1);
            radio.validate(&g, g.node(0)).unwrap();
        }
    }

    #[test]
    fn lemma33_lower_bound_certified_exhaustively() {
        // No m-round schedule exists (brute force) for small m: the
        // optimum is exactly m + 1.
        use crate::radio_sched::optimal_broadcast_time;
        for m in 1..=3 {
            let g = generators::lower_bound_graph(m);
            assert_eq!(
                optimal_broadcast_time(&g, g.node(0), m + 1),
                Some(m + 1),
                "m={m}"
            );
        }
    }

    #[test]
    fn union_bound_decreases_with_reps() {
        let p = 0.3;
        let f4 = LayerSchedule::singletons(6, 4).union_bound_failure(p);
        let f8 = LayerSchedule::singletons(6, 8).union_bound_failure(p);
        assert!(f8 < f4);
    }

    #[test]
    fn union_bound_formula_on_tiny_case() {
        // m = 1: single layer-3 node (v=1); schedule = {b1} once.
        let s = LayerSchedule::singletons(1, 1);
        assert!((s.union_bound_failure(0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scale_schedule_has_expected_length() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = LayerSchedule::scales(8, 5, &mut rng);
        // scales {1,2,4,8} => 4 sizes * 5 reps.
        assert_eq!(s.len(), 20);
        assert_eq!(s.m(), 8);
    }

    #[test]
    fn scale_schedule_hits_all_classes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = LayerSchedule::scales(8, 40, &mut rng);
        assert!(s.min_hits() > 0, "every node should be hit eventually");
    }

    #[test]
    fn simulate_omission_p_zero_always_succeeds() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = LayerSchedule::singletons(4, 1);
        for _ in 0..5 {
            assert!(s.simulate_omission(0.0, &mut rng));
        }
    }

    #[test]
    fn simulate_omission_high_p_fails_with_few_reps() {
        let mut rng = SmallRng::seed_from_u64(6);
        let s = LayerSchedule::singletons(4, 1);
        let fails = (0..50)
            .filter(|_| !s.simulate_omission(0.8, &mut rng))
            .count();
        assert!(fails > 25, "fails={fails}");
    }

    #[test]
    fn simulate_agrees_with_union_bound_direction() {
        // Success rate should be at least 1 - union_bound (the bound is
        // conservative).
        let p = 0.4;
        let s = LayerSchedule::singletons(5, 12);
        let bound = s.union_bound_failure(p);
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 400;
        let ok = (0..trials)
            .filter(|_| s.simulate_omission(p, &mut rng))
            .count();
        let rate = ok as f64 / trials as f64;
        assert!(
            rate >= 1.0 - bound - 0.05,
            "rate={rate} vs 1-bound={}",
            1.0 - bound
        );
    }

    #[test]
    fn min_reps_search_is_minimal() {
        let p = 0.5;
        let m = 6;
        let n = (1usize << m) + m;
        let target = 1.0 / n as f64;
        let (reps, rounds) = min_reps_for_target(|r| LayerSchedule::singletons(m, r), p, target);
        assert_eq!(rounds, m * reps);
        assert!(LayerSchedule::singletons(m, reps).union_bound_failure(p) <= target);
        assert!(LayerSchedule::singletons(m, reps - 1).union_bound_failure(p) > target);
    }

    #[test]
    fn lower_bound_curve_grows() {
        assert!(lower_bound_curve(1 << 12) > lower_bound_curve(1 << 6));
    }

    #[test]
    #[should_panic(expected = "round mask")]
    fn rejects_out_of_range_mask() {
        let _ = LayerSchedule::new(3, vec![0b1000]);
    }
}
