//! Almost-safe gossiping (extension, after Diks–Pelc).
//!
//! The paper's Lemma 3.1 is taken from Diks & Pelc, *"Almost safe
//! gossiping in bounded degree networks"* (SIAM J. Discrete Math. 5,
//! 1992) — a paper about **gossiping**: every node starts with its own
//! token and all nodes must learn all tokens. This module rounds out the
//! library with that primitive under the same transmitter-failure model,
//! in the message-passing setting:
//!
//! every node repeatedly broadcasts its full set of known tokens to all
//! neighbors for a horizon of `O(Diam + log n)` rounds (the same
//! wavefront + Chernoff argument as Theorem 3.1, applied per
//! source-destination pair and union-bounded over `n²` pairs).
//!
//! Tokens are represented as a bitmask, so this implementation supports
//! up to 128 nodes (plenty for the experiment sizes; the algorithm
//! itself is size-agnostic).

use randcast_engine::fault::FaultConfig;
use randcast_engine::mp::{MpNetwork, MpNode, Outgoing};
use randcast_graph::{traversal, Graph, NodeId};
use randcast_stats::chernoff;

/// Outcome of one gossip execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GossipOutcome {
    /// Each node's final token set (bit `i` ⇔ knows node `i`'s token).
    pub known: Vec<u128>,
    /// Rounds executed.
    pub rounds: usize,
}

impl GossipOutcome {
    /// Whether every node knows every token.
    #[must_use]
    pub fn complete(&self, n: usize) -> bool {
        let full = full_mask(n);
        self.known.iter().all(|&k| k == full)
    }

    /// Number of (node, token) pairs still missing.
    #[must_use]
    pub fn missing_pairs(&self, n: usize) -> usize {
        let full = full_mask(n);
        self.known
            .iter()
            .map(|&k| (full & !k).count_ones() as usize)
            .sum()
    }
}

fn full_mask(n: usize) -> u128 {
    if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

/// A compiled gossip plan: flooding horizon for the all-pairs target.
#[derive(Clone, Debug)]
pub struct GossipPlan {
    horizon: usize,
}

impl GossipPlan {
    /// Horizon `⌈2(Diam + 6 ln n)/(1 − p)⌉`: per-pair wavefront failure
    /// `≤ 1/n³`, union-bounded over `n²` ordered pairs to `≤ 1/n`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected, has more than 128 nodes, or
    /// `p ∉ [0, 1)`.
    #[must_use]
    pub fn new(graph: &Graph, p: f64) -> Self {
        assert!(
            graph.node_count() <= 128,
            "token mask supports up to 128 nodes"
        );
        let diam = traversal::diameter(graph);
        let n = graph.node_count().max(2);
        let horizon = chernoff::flood_horizon(diam, p, 6.0 * (n as f64).ln()).max(1);
        GossipPlan { horizon }
    }

    /// Explicit horizon (ablation entry point).
    #[must_use]
    pub fn with_horizon(horizon: usize) -> Self {
        GossipPlan { horizon }
    }

    /// The horizon.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Executes the gossip under omission faults.
    #[must_use]
    pub fn run(&self, graph: &Graph, fault: FaultConfig, seed: u64) -> GossipOutcome {
        let mut net = MpNetwork::new(graph, fault, seed, |v| GossipNode {
            known: 1u128 << v.index(),
        });
        net.run(self.horizon);
        GossipOutcome {
            known: graph.nodes().map(|v| net.node(v).known).collect(),
            rounds: self.horizon,
        }
    }
}

/// Gossip automaton: broadcast everything known, absorb everything heard.
#[derive(Clone, Copy, Debug)]
struct GossipNode {
    known: u128,
}

impl MpNode for GossipNode {
    type Msg = u128;

    fn send(&mut self, _round: usize) -> Outgoing<u128> {
        Outgoing::Broadcast(self.known)
    }

    fn recv(&mut self, _round: usize, _from: NodeId, msg: u128) {
        self.known |= msg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randcast_graph::generators;

    #[test]
    fn fault_free_gossip_completes_in_diameter_rounds() {
        let g = generators::path(6);
        let plan = GossipPlan::with_horizon(6);
        let out = plan.run(&g, FaultConfig::fault_free(), 0);
        assert!(out.complete(g.node_count()));
        // One fewer round leaves the endpoints ignorant of each other.
        let out = GossipPlan::with_horizon(5).run(&g, FaultConfig::fault_free(), 0);
        assert!(!out.complete(g.node_count()));
        assert_eq!(out.missing_pairs(g.node_count()), 2);
    }

    #[test]
    fn gossip_is_almost_safe_under_omission() {
        let g = generators::grid(4, 4);
        let p = 0.5;
        let plan = GossipPlan::new(&g, p);
        let mut ok = 0;
        for seed in 0..30 {
            ok += usize::from(plan.run(&g, FaultConfig::omission(p), seed).complete(16));
        }
        assert!(ok >= 29, "ok={ok}");
    }

    #[test]
    fn gossip_on_various_families() {
        for g in [
            generators::cycle(9),
            generators::star(8),
            generators::hypercube(4),
            generators::balanced_tree(2, 3),
        ] {
            let p = 0.3;
            let plan = GossipPlan::new(&g, p);
            let out = plan.run(&g, FaultConfig::omission(p), 7);
            assert!(
                out.complete(g.node_count()),
                "n={} missing={}",
                g.node_count(),
                out.missing_pairs(g.node_count())
            );
        }
    }

    #[test]
    fn missing_pairs_counts_correctly() {
        let g = generators::path(2);
        let out = GossipPlan::with_horizon(0).run(&g, FaultConfig::fault_free(), 0);
        // Nobody learned anything beyond their own token: each of the 3
        // nodes misses 2 tokens.
        assert_eq!(out.missing_pairs(3), 6);
    }

    #[test]
    #[should_panic(expected = "128 nodes")]
    fn rejects_oversized_graphs() {
        let g = generators::path(150);
        let _ = GossipPlan::new(&g, 0.1);
    }
}
