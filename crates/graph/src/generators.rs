//! Generators for the graph families used in the paper's analysis and in
//! the reproduction experiments.
//!
//! Deterministic families take size parameters; randomized families take an
//! explicit RNG so every experiment stays reproducible from a seed.
//!
//! The one bespoke construction is [`lower_bound_graph`], the three-layer
//! graph of Theorem 3.3 on which fault-free radio broadcast takes
//! `opt = m + 1` rounds but almost-safe broadcast needs
//! `Ω(log n · log log n / log log log n)` rounds.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::shard::{EdgeSink, ShardError};
use crate::{CsrGraph, Graph, GraphBuilder, NodeId};

/// The in-RAM [`EdgeSink`]: collects into a `(u32, u32)` edge list for
/// the buffered `_csr` build path. Infallible — the streamed cores
/// never emit endpoints `>= n`, and the `_csr` entry points already
/// bound `n` to the `u32` word.
struct VecSink<'a>(&'a mut Vec<(u32, u32)>);

impl EdgeSink for VecSink<'_> {
    fn edge(&mut self, u: u64, v: u64) -> Result<(), ShardError> {
        debug_assert!(u < u64::from(u32::MAX) && v < u64::from(u32::MAX));
        self.0.push((u as u32, v as u32));
        Ok(())
    }
}

/// Unwraps a streamed-core result for the in-RAM path, where the sink
/// cannot fail.
fn infallible(result: Result<(), ShardError>) {
    result.expect("in-memory edge sink cannot fail");
}

/// A path (the paper's "line") with `len` edges and `len + 1` nodes
/// `v0 - v1 - … - v_len`. The broadcast source is conventionally `v0`.
///
/// # Panics
///
/// Panics if `len == 0` would make a single-node path impossible — `len = 0`
/// yields the single node `v0`, which is allowed.
#[must_use]
pub fn path(len: usize) -> Graph {
    let mut b = GraphBuilder::new(len + 1);
    for i in 0..len {
        b.edge(i, i + 1);
    }
    b.finish().expect("path construction is valid")
}

/// A cycle on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.edge(i, (i + 1) % n);
    }
    b.finish().expect("cycle construction is valid")
}

/// A star `K_{1,leaves}`: center `v0` joined to `leaves` leaves.
///
/// This is the graph of the Theorem 2.4 impossibility argument (with the
/// source placed at a *leaf* and the star center relaying).
///
/// # Panics
///
/// Panics if `leaves == 0`.
#[must_use]
pub fn star(leaves: usize) -> Graph {
    assert!(leaves >= 1, "a star needs at least one leaf");
    let mut b = GraphBuilder::new(leaves + 1);
    for i in 1..=leaves {
        b.edge(0, i);
    }
    b.finish().expect("star construction is valid")
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    assert!(n >= 1, "complete graph needs at least one node");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.edge(u, v);
        }
    }
    b.finish().expect("complete construction is valid")
}

/// The complete bipartite graph `K_{a,b}` (sides `0..a` and `a..a+b`).
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a >= 1 && b >= 1, "both sides must be non-empty");
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.edge(u, v);
        }
    }
    builder.finish().expect("bipartite construction is valid")
}

/// An `rows × cols` grid; node `(r, c)` has index `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.finish().expect("grid construction is valid")
}

/// An `rows × cols` torus (grid with wrap-around edges).
///
/// # Panics
///
/// Panics if either dimension is `< 3` (smaller wrap-arounds collapse to
/// duplicate or self edges).
#[must_use]
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.edge(idx(r, c), idx(r, (c + 1) % cols));
            b.edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.finish().expect("torus construction is valid")
}

/// The `dim`-dimensional hypercube `Q_dim` on `2^dim` nodes; nodes differ
/// by one bit iff adjacent.
///
/// # Panics
///
/// Panics if `dim > 20` (guard against accidental huge graphs) .
#[must_use]
pub fn hypercube(dim: usize) -> Graph {
    assert!(dim <= 20, "hypercube dimension too large");
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for bit in 0..dim {
            let v = u ^ (1 << bit);
            if u < v {
                b.edge(u, v);
            }
        }
    }
    b.finish().expect("hypercube construction is valid")
}

/// A balanced `arity`-ary tree of the given `depth` (depth 0 = single
/// root). Node 0 is the root; children are appended level by level, so the
/// node indexing is already a BFS level order.
///
/// # Panics
///
/// Panics if `arity == 0`.
#[must_use]
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity >= 1, "arity must be positive");
    let mut parents: Vec<usize> = Vec::new(); // parents[i] = parent of node i+1
    let mut level_start = 0usize;
    let mut next = 1usize;
    for _ in 0..depth {
        let level_end = next;
        for p in level_start..level_end {
            for _ in 0..arity {
                parents.push(p);
                next += 1;
            }
        }
        level_start = level_end;
    }
    let mut b = GraphBuilder::new(next);
    for (child_minus_one, &p) in parents.iter().enumerate() {
        b.edge(p, child_minus_one + 1);
    }
    b.finish().expect("tree construction is valid")
}

/// A "broom": a path of `handle` edges whose far end fans out into
/// `bristles` leaves. Exhibits large `D` *and* a high-degree node, probing
/// the radio threshold's `Δ` dependence along a long route.
///
/// # Panics
///
/// Panics if `bristles == 0`.
#[must_use]
pub fn broom(handle: usize, bristles: usize) -> Graph {
    assert!(bristles >= 1, "broom needs at least one bristle");
    let n = handle + 1 + bristles;
    let mut b = GraphBuilder::new(n);
    for i in 0..handle {
        b.edge(i, i + 1);
    }
    for j in 0..bristles {
        b.edge(handle, handle + 1 + j);
    }
    b.finish().expect("broom construction is valid")
}

/// A caterpillar: a spine path of `spine` edges with `legs` leaves attached
/// to every spine node.
#[must_use]
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let spine_nodes = spine + 1;
    let n = spine_nodes + spine_nodes * legs;
    let mut b = GraphBuilder::new(n);
    for i in 0..spine {
        b.edge(i, i + 1);
    }
    let mut next = spine_nodes;
    for s in 0..spine_nodes {
        for _ in 0..legs {
            b.edge(s, next);
            next += 1;
        }
    }
    b.finish().expect("caterpillar construction is valid")
}

/// The binomial tree `B_k` on `2^k` nodes (root 0): `B_0` is a single
/// node; `B_k` links the roots of two copies of `B_{k-1}`.
///
/// # Panics
///
/// Panics if `k > 20`.
#[must_use]
pub fn binomial_tree(k: usize) -> Graph {
    assert!(k <= 20, "binomial tree order too large");
    let n = 1usize << k;
    let mut b = GraphBuilder::new(n);
    // Standard construction: node v's parent clears v's lowest set bit.
    for v in 1..n {
        let parent = v & (v - 1);
        b.edge(parent, v);
    }
    b.finish().expect("binomial tree construction is valid")
}

/// A uniformly random recursive tree on `n` nodes: node `i` attaches to a
/// uniform node `< i`. Connected by construction.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "random tree needs at least one node");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(rng.gen_range(0..v), v);
    }
    b.finish().expect("random tree construction is valid")
}

/// Streams each pair `{u, v}` (`u < v < n`) into `sink` independently
/// with probability `q`, in expected `O(n + q·n²)` time via the
/// Batagelj–Brandes geometric skip: instead of flipping one coin per
/// pair, the gap to the next sampled pair is drawn directly from the
/// geometric distribution, so the cost is proportional to the number of
/// edges *produced*, not the number of pairs *considered*.
fn sample_gnp_edges_into<S: EdgeSink, R: Rng + ?Sized>(
    sink: &mut S,
    n: usize,
    q: f64,
    rng: &mut R,
) -> Result<(), ShardError> {
    if q <= 0.0 || n < 2 {
        return Ok(());
    }
    if q >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                sink.edge(u as u64, v as u64)?;
            }
        }
        return Ok(());
    }
    // Pairs enumerated as (w, v) with w < v, row-major in v: the skip
    // walks a virtual triangular index without materializing it.
    let log1q = (1.0 - q).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    let max_skip = (n as i64) * (n as i64); // beyond the last pair
    while v < n {
        let r: f64 = rng.gen_range(0.0..1.0);
        // Geometric gap: failures before the next success.
        let skip = ((1.0 - r).ln() / log1q).min(max_skip as f64) as i64;
        w += 1 + skip;
        while v < n && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            sink.edge(w as u64, v as u64)?;
        }
    }
    Ok(())
}

/// An Erdős–Rényi `G(n, q)`: every pair is an edge independently with
/// probability `q`. **May be disconnected** (that is the point — the
/// almost-complete broadcast regime floods the giant component); use
/// [`gnp_connected`] when an algorithm needs every node reachable.
///
/// Sampled with the Batagelj–Brandes geometric skip, so the cost is
/// `O(n + m)` rather than `O(n²)` — `n = 10⁶` at average degree 8 is
/// well within interactive range.
///
/// # Panics
///
/// Panics if `n == 0` or `q` is not in `[0, 1]`.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, q: f64, rng: &mut R) -> Graph {
    Graph::from(&gnp_csr(n, q, rng))
}

/// [`gnp`], built directly as a [`CsrGraph`] — no `Graph` conversion,
/// so peak build memory is the 8-byte-per-edge sample list plus the
/// `u32` CSR arrays (roughly half the validating-builder path). Draws
/// the same RNG stream as [`gnp`] and produces the identical graph.
///
/// # Panics
///
/// Panics if `n == 0` or `q` is not in `[0, 1]`.
#[must_use]
pub fn gnp_csr<R: Rng + ?Sized>(n: usize, q: f64, rng: &mut R) -> CsrGraph {
    let mut edges = Vec::new();
    infallible(gnp_edges(&mut VecSink(&mut edges), n, q, rng));
    CsrGraph::from_edges(n, &edges)
}

/// Streams the `G(n, q)` edge run of [`gnp_csr`] into `sink` — the
/// identical RNG stream and edge sequence, without ever materializing
/// the edge list. With a [`crate::shard::SpillSink`] this is the
/// out-of-core build path: bounded RAM regardless of `m`.
///
/// # Errors
///
/// Propagates the sink's [`ShardError`]s (in-RAM sinks are infallible).
///
/// # Panics
///
/// Panics if `n == 0` or `q` is not in `[0, 1]`.
pub fn gnp_edges<S: EdgeSink, R: Rng + ?Sized>(
    sink: &mut S,
    n: usize,
    q: f64,
    rng: &mut R,
) -> Result<(), ShardError> {
    assert!(n >= 1, "gnp needs at least one node");
    assert!(
        (0.0..=1.0).contains(&q),
        "edge probability must be in [0,1]"
    );
    sample_gnp_edges_into(sink, n, q, rng)
}

/// An Erdős–Rényi `G(n, q)` conditioned on connectivity: a uniformly
/// random recursive-tree skeleton guarantees connectivity and `G(n, q)`
/// skip-sampling adds density on top (duplicates with the skeleton
/// merge). Runs in expected `O(n + m)` — the former per-pair double loop
/// made `n = 10⁵` infeasible.
///
/// # Panics
///
/// Panics if `n == 0` or `q` is not in `[0, 1]`.
#[must_use]
pub fn gnp_connected<R: Rng + ?Sized>(n: usize, q: f64, rng: &mut R) -> Graph {
    Graph::from(&gnp_connected_csr(n, q, rng))
}

/// [`gnp_connected`], built directly as a [`CsrGraph`] (see
/// [`gnp_csr`] for the memory story). Draws the same RNG stream as
/// [`gnp_connected`] and produces the identical graph.
///
/// # Panics
///
/// Panics if `n == 0` or `q` is not in `[0, 1]`.
#[must_use]
pub fn gnp_connected_csr<R: Rng + ?Sized>(n: usize, q: f64, rng: &mut R) -> CsrGraph {
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    infallible(gnp_connected_edges(&mut VecSink(&mut edges), n, q, rng));
    CsrGraph::from_edges(n, &edges)
}

/// Streams the edge run of [`gnp_connected_csr`] into `sink` —
/// identical RNG stream and edge sequence (skeleton first, then the
/// `G(n, q)` overlay; duplicates merge downstream), without
/// materializing the edge list.
///
/// # Errors
///
/// Propagates the sink's [`ShardError`]s (in-RAM sinks are infallible).
///
/// # Panics
///
/// Panics if `n == 0` or `q` is not in `[0, 1]`.
pub fn gnp_connected_edges<S: EdgeSink, R: Rng + ?Sized>(
    sink: &mut S,
    n: usize,
    q: f64,
    rng: &mut R,
) -> Result<(), ShardError> {
    assert!(n >= 1, "gnp needs at least one node");
    assert!(
        (0.0..=1.0).contains(&q),
        "edge probability must be in [0,1]"
    );
    // Random recursive-tree skeleton keeps it connected.
    for v in 1..n {
        sink.edge(rng.gen_range(0..v) as u64, v as u64)?;
    }
    sample_gnp_edges_into(sink, n, q, rng)
}

/// A random geometric (unit-disk) graph: `n` points uniform in the unit
/// square, adjacent iff within Euclidean distance `radius`. **May be
/// disconnected** below the connectivity threshold
/// `radius ≈ √(ln n / (π n))` — the almost-complete broadcast regime.
///
/// Neighbor search uses a grid of buckets with cell width `≥ radius`,
/// so only the 3×3 surrounding cells are scanned per node: expected
/// `O(n + m)` overall instead of the all-pairs `O(n²)`.
///
/// # Panics
///
/// Panics if `n == 0` or `radius` is not a positive finite number.
#[must_use]
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    Graph::from(&random_geometric_csr(n, radius, rng))
}

/// [`random_geometric`], built directly as a [`CsrGraph`] (see
/// [`gnp_csr`] for the memory story). Draws the same RNG stream as
/// [`random_geometric`] and produces the identical graph.
///
/// # Panics
///
/// Panics if `n == 0` or `radius` is not a positive finite number.
#[must_use]
pub fn random_geometric_csr<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> CsrGraph {
    let mut edges = Vec::new();
    infallible(random_geometric_edges(
        &mut VecSink(&mut edges),
        n,
        radius,
        rng,
    ));
    CsrGraph::from_edges(n, &edges)
}

/// Streams the edge run of [`random_geometric_csr`] into `sink` —
/// identical RNG stream and edge sequence. Retains the `O(n)` point
/// and bucket state (16 bytes per node) but never the edge list, so the
/// out-of-core build is bounded by nodes, not edges.
///
/// # Errors
///
/// Propagates the sink's [`ShardError`]s (in-RAM sinks are infallible).
///
/// # Panics
///
/// Panics if `n == 0` or `radius` is not a positive finite number.
pub fn random_geometric_edges<S: EdgeSink, R: Rng + ?Sized>(
    sink: &mut S,
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<(), ShardError> {
    assert!(n >= 1, "random geometric graph needs at least one node");
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite"
    );
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    // Square cells at least `radius` wide: all neighbors of a point lie
    // in its own or the 8 adjacent cells. More than ~√n cells per side
    // buys nothing (cells would be mostly empty), so the grid is capped
    // there — wider cells only enlarge the scanned candidate set.
    let max_side = ((n as f64).sqrt().ceil() as usize).max(1);
    let side = ((1.0 / radius.min(1.0)).floor().max(1.0) as usize).min(max_side);
    let cell_of = |coord: f64| ((coord * side as f64) as usize).min(side - 1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); side * side];
    for (i, &(x, y)) in points.iter().enumerate() {
        buckets[cell_of(y) * side + cell_of(x)].push(i as u32);
    }
    let r2 = radius * radius;
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for ny in cy.saturating_sub(1)..=(cy + 1).min(side - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(side - 1) {
                for &j in &buckets[ny * side + nx] {
                    if (j as usize) <= i {
                        continue; // each pair once, no self-loops
                    }
                    let (dx, dy) = (points[j as usize].0 - x, points[j as usize].1 - y);
                    if dx * dx + dy * dy <= r2 {
                        sink.edge(i as u64, j as u64)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// A preferential-attachment (Barabási–Albert) graph: node `v ≥ 1`
/// attaches to `min(m, v)` *distinct* earlier nodes, each chosen with
/// probability proportional to its current degree (uniform over earlier
/// nodes while the graph has no edges yet). Connected by construction
/// and scale-free in the degree tail — the heavy-hub stress case for
/// broadcast frontiers.
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
#[must_use]
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    Graph::from(&preferential_attachment_csr(n, m, rng))
}

/// [`preferential_attachment`], built directly as a [`CsrGraph`] (see
/// [`gnp_csr`] for the memory story). Draws the same RNG stream as
/// [`preferential_attachment`] and produces the identical graph.
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
#[must_use]
pub fn preferential_attachment_csr<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m * n.saturating_sub(1));
    infallible(preferential_attachment_edges(
        &mut VecSink(&mut edges),
        n,
        m,
        rng,
    ));
    CsrGraph::from_edges(n, &edges)
}

/// Streams the edge run of [`preferential_attachment_csr`] into `sink`
/// — identical RNG stream and edge sequence. The degree-proportional
/// endpoint list (`2m` entries per node) is inherent to the model and
/// stays resident, but the edge list itself is never buffered.
///
/// # Errors
///
/// Propagates the sink's [`ShardError`]s (in-RAM sinks are infallible).
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn preferential_attachment_edges<S: EdgeSink, R: Rng + ?Sized>(
    sink: &mut S,
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<(), ShardError> {
    assert!(n >= 1, "preferential attachment needs at least one node");
    assert!(m >= 1, "each node must attach at least one edge");
    // Every edge endpoint appears once: sampling an index uniformly from
    // this list is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * n.saturating_sub(1));
    let mut chosen: Vec<u32> = Vec::with_capacity(m);
    for v in 1..n {
        let k = m.min(v);
        chosen.clear();
        // Rejection-sample distinct targets; duplicates are rare while
        // k ≪ v, and the deterministic fallback below bounds the tail.
        let mut attempts = 0usize;
        while chosen.len() < k && attempts < 16 * (k + 4) {
            attempts += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..v) as u32
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        // Fallback (only reachable when k is close to v): take the
        // smallest not-yet-chosen earlier nodes.
        let mut next = 0u32;
        while chosen.len() < k {
            if !chosen.contains(&next) {
                chosen.push(next);
            }
            next += 1;
        }
        for &t in &chosen {
            sink.edge(t as u64, v as u64)?;
            endpoints.push(t);
            endpoints.push(v as u32);
        }
    }
    Ok(())
}

/// A random connected graph: random recursive tree plus **exactly**
/// `extra` additional distinct edges. Candidate extra edges that would
/// duplicate an existing edge are resampled (they used to be silently
/// merged, yielding fewer edges than requested); when rejection sampling
/// stalls — only possible near saturation — the remaining edges are
/// drawn directly from the explicit complement, so the edge count is
/// always `n − 1 + extra`.
///
/// # Panics
///
/// Panics if `n < 2` or `extra` exceeds the `n(n−1)/2 − (n−1)` free
/// slots left by the spanning tree.
#[must_use]
pub fn random_connected<R: Rng + ?Sized>(n: usize, extra: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "random connected graph needs at least two nodes");
    let capacity = n * (n - 1) / 2 - (n - 1);
    assert!(
        extra <= capacity,
        "requested {extra} extra edges but only {capacity} fit"
    );
    let mut b = GraphBuilder::new(n);
    let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(n - 1 + extra);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        b.edge(u, v);
        present.insert((u, v));
    }
    // Rejection sampling with a retry cap: each attempt succeeds with
    // probability (free slots / all pairs), so the cap is generous for
    // every non-saturated graph.
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let cap = 64 * extra + 256;
    while placed < extra && attempts < cap {
        attempts += 1;
        // A uniform unordered pair of distinct nodes.
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        let pair = (u.min(v), u.max(v));
        if present.insert(pair) {
            b.edge(pair.0, pair.1);
            placed += 1;
        }
    }
    if placed < extra {
        // Near saturation: enumerate the complement and draw uniformly.
        let mut free: Vec<(usize, usize)> = Vec::with_capacity(capacity - placed);
        for u in 0..n {
            for v in (u + 1)..n {
                if !present.contains(&(u, v)) {
                    free.push((u, v));
                }
            }
        }
        free.shuffle(rng);
        for &(u, v) in free.iter().take(extra - placed) {
            b.edge(u, v);
        }
    }
    b.finish().expect("random connected construction is valid")
}

/// A wheel: a cycle of `rim >= 3` nodes (`1..=rim`) all joined to a hub
/// (node 0). Diameter 2 with high maximum degree — a stress case for the
/// radio threshold.
///
/// # Panics
///
/// Panics if `rim < 3`.
#[must_use]
pub fn wheel(rim: usize) -> Graph {
    assert!(rim >= 3, "wheel rim needs at least 3 nodes");
    let mut b = GraphBuilder::new(rim + 1);
    for i in 1..=rim {
        b.edge(0, i);
        let next = if i == rim { 1 } else { i + 1 };
        b.edge(i, next);
    }
    b.finish().expect("wheel construction is valid")
}

/// A circulant graph `C_n(offsets)`: node `i` is adjacent to
/// `i ± o (mod n)` for every offset `o`. Regular with degree up to
/// `2·|offsets|`; a convenient family of expanders for fixed degree.
///
/// # Panics
///
/// Panics if `n < 3`, an offset is 0, or an offset is `>= n`.
#[must_use]
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    assert!(n >= 3, "circulant needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for &o in offsets {
        assert!(o >= 1 && o < n, "offset out of range");
        for i in 0..n {
            if (i + o) % n != i {
                b.edge(i, (i + o) % n);
            }
        }
    }
    b.finish().expect("circulant construction is valid")
}

/// A lollipop: a complete graph on `clique` nodes with a path of `tail`
/// edges attached to node 0. Combines a dense core (collision pressure)
/// with a long tail (large `D`).
///
/// # Panics
///
/// Panics if `clique < 2`.
#[must_use]
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 2, "lollipop needs at least a 2-clique");
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b.edge(u, v);
        }
    }
    for i in 0..tail {
        let prev = if i == 0 { 0 } else { clique + i - 1 };
        b.edge(prev, clique + i);
    }
    b.finish().expect("lollipop construction is valid")
}

/// A double star: two adjacent centers with `left` and `right` leaves
/// respectively — the minimal graph with two high-degree bottlenecks in
/// series.
///
/// # Panics
///
/// Panics if either side has no leaves.
#[must_use]
pub fn double_star(left: usize, right: usize) -> Graph {
    assert!(left >= 1 && right >= 1, "both stars need leaves");
    let n = 2 + left + right;
    let mut b = GraphBuilder::new(n);
    b.edge(0, 1);
    for i in 0..left {
        b.edge(0, 2 + i);
    }
    for i in 0..right {
        b.edge(1, 2 + left + i);
    }
    b.finish().expect("double star construction is valid")
}

/// The three-layer lower-bound graph `G(m)` of Theorem 3.3.
///
/// * Layer 1: the root `s` (node 0) — the broadcast source.
/// * Layer 2: "bit" nodes `b_1 … b_m` (nodes `1..=m`), all adjacent to `s`.
/// * Layer 3: nodes `1 … 2^m − 1` (graph ids `m+1 ..`), where layer-3 node
///   with *value* `v` is adjacent to `b_i` iff bit `i` of `v` is 1
///   (bit 1 = least significant).
///
/// Total `n = 2^m + m` nodes. Fault-free radio broadcast takes exactly
/// `m + 1` rounds (Lemma 3.3) while almost-safe broadcast requires
/// `Ω(log n · log log n / log log log n)` rounds (Lemma 3.4).
///
/// # Panics
///
/// Panics if `m == 0` or `m > 24`.
#[must_use]
pub fn lower_bound_graph(m: usize) -> Graph {
    assert!(m >= 1, "G(m) needs at least one bit node");
    assert!(m <= 24, "G(m) too large");
    let big_n = 1usize << m;
    let n = big_n + m; // 1 root + m bit nodes + (2^m - 1) value nodes
    let mut b = GraphBuilder::new(n);
    for i in 1..=m {
        b.edge(0, i);
    }
    for value in 1..big_n {
        let node = m + value; // graph id of layer-3 node with this value
        for bit in 0..m {
            if value & (1 << bit) != 0 {
                b.edge(bit + 1, node);
            }
        }
    }
    b.finish().expect("lower-bound graph construction is valid")
}

/// Helpers for addressing [`lower_bound_graph`] nodes symbolically.
pub mod lb {
    use super::NodeId;

    /// The root/source `s`.
    #[must_use]
    pub fn root() -> NodeId {
        NodeId::new(0)
    }

    /// Layer-2 bit node `b_i` for `i ∈ 1..=m`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of `1..=m`.
    #[must_use]
    pub fn bit_node(m: usize, i: usize) -> NodeId {
        assert!((1..=m).contains(&i), "bit index out of range");
        NodeId::new(i)
    }

    /// Layer-3 node carrying binary value `value ∈ 1..2^m`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is out of range.
    #[must_use]
    pub fn value_node(m: usize, value: usize) -> NodeId {
        assert!(value >= 1 && value < (1 << m), "value out of range");
        NodeId::new(m + value)
    }

    /// The value of a layer-3 node, or `None` for layers 1–2.
    #[must_use]
    pub fn value_of(m: usize, v: NodeId) -> Option<usize> {
        (v.index() > m).then(|| v.index() - m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(3);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree(g.node(0)), 1);
    }

    #[test]
    fn single_node_path() {
        let g = path(0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.degree(g.node(0)), 6);
        for i in 1..=6 {
            assert_eq!(g.degree(g.node(i)), 1);
        }
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(g.node(0)), 3);
        assert_eq!(g.degree(g.node(2)), 2);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(traversal::radius_from(&g, g.node(0)), 2 + 3);
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(3, 4);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 2 * 12);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
    }

    #[test]
    fn balanced_tree_counts() {
        // arity 2, depth 3: 1 + 2 + 4 + 8 = 15 nodes
        let g = balanced_tree(2, 3);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(traversal::radius_from(&g, g.node(0)), 3);
    }

    #[test]
    fn balanced_tree_depth_zero() {
        let g = balanced_tree(3, 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn broom_shape() {
        let g = broom(4, 5);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.max_degree(), 6); // handle end: 1 path edge + 5 bristles
        assert_eq!(traversal::radius_from(&g, g.node(0)), 5);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(3, 2);
        assert_eq!(g.node_count(), 4 + 8);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn binomial_tree_shape() {
        let g = binomial_tree(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.degree(g.node(0)), 4); // root of B_4 has degree 4
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = random_tree(50, &mut rng);
        assert_eq!(g.edge_count(), 49);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn gnp_connected_is_connected() {
        let mut rng = SmallRng::seed_from_u64(11);
        for q in [0.0, 0.05, 0.5] {
            let g = gnp_connected(40, q, &mut rng);
            assert!(traversal::is_connected(&g));
        }
    }

    #[test]
    fn gnp_edge_count_tracks_density() {
        let mut rng = SmallRng::seed_from_u64(23);
        let n = 600;
        let q = 8.0 / (n - 1) as f64; // average degree ~8
        let g = gnp(n, q, &mut rng);
        let expected = q * (n * (n - 1) / 2) as f64;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 5.0 * expected.sqrt(),
            "m={m} expected={expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = SmallRng::seed_from_u64(29);
        assert_eq!(gnp(25, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(25, 1.0, &mut rng).edge_count(), 25 * 24 / 2);
        assert_eq!(gnp(1, 0.7, &mut rng).node_count(), 1);
    }

    #[test]
    fn gnp_matches_per_pair_sampling_statistically() {
        // The skip-sampler must produce the same edge-count distribution
        // as per-pair coins; compare means over many seeds.
        let (n, q, reps) = (40usize, 0.1f64, 200);
        let mut total = 0usize;
        for seed in 0..reps {
            let mut rng = SmallRng::seed_from_u64(seed);
            total += gnp(n, q, &mut rng).edge_count();
        }
        let mean = total as f64 / reps as f64;
        let expected = q * (n * (n - 1) / 2) as f64;
        let se = (expected * (1.0 - q) / reps as f64).sqrt();
        assert!(
            (mean - expected).abs() < 4.0 * se,
            "mean={mean} expected={expected}"
        );
    }

    #[test]
    fn random_geometric_radius_extremes() {
        let mut rng = SmallRng::seed_from_u64(31);
        // Radius covering the whole square: complete graph.
        let g = random_geometric(20, 1.5, &mut rng);
        assert_eq!(g.edge_count(), 20 * 19 / 2);
        // Vanishing radius: virtually surely no edges.
        let g = random_geometric(50, 1e-9, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn random_geometric_matches_naive_neighborhoods() {
        // Grid-bucket adjacency must equal the all-pairs definition; the
        // same seed re-derives the same points.
        let (n, radius) = (120usize, 0.18);
        let mut rng = SmallRng::seed_from_u64(37);
        let g = random_geometric(n, radius, &mut rng);
        let mut rng2 = SmallRng::seed_from_u64(37);
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng2.gen_range(0.0..1.0), rng2.gen_range(0.0..1.0)))
            .collect();
        let mut expected = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (points[j].0 - points[i].0, points[j].1 - points[i].1);
                let adjacent = dx * dx + dy * dy <= radius * radius;
                expected += usize::from(adjacent);
                assert_eq!(g.has_edge(g.node(i), g.node(j)), adjacent, "pair {i},{j}");
            }
        }
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn streamed_generators_match_their_csr_twins_through_the_spill() {
        use crate::shard::{ShardPlan, ShardScratch, SpillSink};
        let n = 220usize;
        type StreamFn = Box<dyn Fn(&mut SpillSink, &mut SmallRng) -> Result<(), ShardError>>;
        let cases: Vec<(&str, u64, CsrGraph, StreamFn)> = vec![
            (
                "gnp",
                61,
                gnp_csr(n, 0.03, &mut SmallRng::seed_from_u64(61)),
                Box::new(move |sink, rng| gnp_edges(sink, n, 0.03, rng)),
            ),
            (
                "gnp_connected",
                62,
                gnp_connected_csr(n, 0.02, &mut SmallRng::seed_from_u64(62)),
                Box::new(move |sink, rng| gnp_connected_edges(sink, n, 0.02, rng)),
            ),
            (
                "rgg",
                63,
                random_geometric_csr(n, 0.12, &mut SmallRng::seed_from_u64(63)),
                Box::new(move |sink, rng| random_geometric_edges(sink, n, 0.12, rng)),
            ),
            (
                "pa",
                64,
                preferential_attachment_csr(n, 3, &mut SmallRng::seed_from_u64(64)),
                Box::new(move |sink, rng| preferential_attachment_edges(sink, n, 3, rng)),
            ),
        ];
        for (name, seed, expect, stream) in cases {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sink = SpillSink::create(
                crate::shard::default_scratch_dir(),
                ShardPlan::uniform(n, 3),
            )
            .expect("create sink");
            stream(&mut sink, &mut rng).expect("stream");
            let disk = sink.finalize().expect("finalize");
            assert_eq!(disk.edge_count() as usize, expect.edge_count(), "{name}");
            let mut scratch = ShardScratch::new();
            for s in 0..disk.plan().shard_count() {
                let view = disk.load(s, &mut scratch).expect("load");
                for v in view.start()..view.end() {
                    assert_eq!(
                        view.targets_of(v),
                        expect.neighbors_of(v as usize),
                        "{name} node {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn csr_generators_match_their_graph_twins() {
        // Each `_csr` generator must draw the same RNG stream and
        // produce the identical graph as the `Graph`-returning wrapper.
        let cases: Vec<(Graph, CsrGraph)> = vec![
            (
                gnp(250, 0.03, &mut SmallRng::seed_from_u64(51)),
                gnp_csr(250, 0.03, &mut SmallRng::seed_from_u64(51)),
            ),
            (
                gnp_connected(250, 0.02, &mut SmallRng::seed_from_u64(52)),
                gnp_connected_csr(250, 0.02, &mut SmallRng::seed_from_u64(52)),
            ),
            (
                random_geometric(250, 0.12, &mut SmallRng::seed_from_u64(53)),
                random_geometric_csr(250, 0.12, &mut SmallRng::seed_from_u64(53)),
            ),
            (
                preferential_attachment(250, 3, &mut SmallRng::seed_from_u64(54)),
                preferential_attachment_csr(250, 3, &mut SmallRng::seed_from_u64(54)),
            ),
        ];
        for (g, csr) in cases {
            assert_eq!(Graph::from(&csr), g);
            assert_eq!(CsrGraph::from(&g), csr);
        }
    }

    #[test]
    fn preferential_attachment_shape() {
        let (n, m) = (300usize, 3usize);
        let mut rng = SmallRng::seed_from_u64(41);
        let g = preferential_attachment(n, m, &mut rng);
        assert!(traversal::is_connected(&g));
        // Node v contributes exactly min(m, v) distinct new edges.
        let expected: usize = (1..n).map(|v| m.min(v)).sum();
        assert_eq!(g.edge_count(), expected);
        for v in 1..n {
            assert!(g.degree(g.node(v)) >= m.min(v), "node {v}");
        }
    }

    #[test]
    fn preferential_attachment_grows_hubs() {
        let mut rng = SmallRng::seed_from_u64(43);
        let g = preferential_attachment(2000, 2, &mut rng);
        // Scale-free tail: the max degree should far exceed the mean (4).
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    fn random_connected_has_exactly_requested_edges() {
        let mut rng = SmallRng::seed_from_u64(13);
        for (n, extra) in [(30usize, 20usize), (10, 0), (12, 7)] {
            let g = random_connected(n, extra, &mut rng);
            assert_eq!(g.edge_count(), n - 1 + extra, "n={n} extra={extra}");
            assert!(traversal::is_connected(&g));
        }
    }

    #[test]
    fn random_connected_saturates_exactly() {
        // extra = every free slot: the result is the complete graph.
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 9;
        let capacity = n * (n - 1) / 2 - (n - 1);
        let g = random_connected(n, capacity, &mut rng);
        assert_eq!(g.edge_count(), n * (n - 1) / 2);
    }

    #[test]
    #[should_panic(expected = "extra edges")]
    fn random_connected_rejects_oversaturation() {
        let mut rng = SmallRng::seed_from_u64(19);
        let _ = random_connected(5, 100, &mut rng);
    }

    #[test]
    fn lower_bound_graph_structure() {
        let m = 4;
        let g = lower_bound_graph(m);
        assert_eq!(g.node_count(), (1 << m) + m);
        // Root adjacent to exactly the m bit nodes.
        assert_eq!(g.degree(lb::root()), m);
        // Value node 0b1010 (=10) adjacent to b_2 and b_4.
        let v = lb::value_node(m, 0b1010);
        let nb: Vec<_> = g.neighbors(v).to_vec();
        assert_eq!(nb, vec![lb::bit_node(m, 2), lb::bit_node(m, 4)]);
        // Bit node b_i adjacent to root plus 2^{m-1} - ? value nodes:
        // values with bit i set: 2^{m-1} of them, minus none (value 0 absent
        // but has no bits set anyway).
        for i in 1..=m {
            assert_eq!(g.degree(lb::bit_node(m, i)), 1 + (1 << (m - 1)));
        }
        assert!(traversal::is_connected(&g));
        assert_eq!(traversal::radius_from(&g, lb::root()), 2);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.degree(g.node(0)), 6);
        assert!((1..=6).all(|i| g.degree(g.node(i)) == 3));
        assert_eq!(traversal::diameter(&g), 2);
    }

    #[test]
    fn circulant_is_regular() {
        let g = circulant(10, &[1, 3]);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn circulant_half_offset_degree() {
        // Offset n/2 pairs nodes up: degree contribution 1, not 2.
        let g = circulant(6, &[3]);
        assert!(g.nodes().all(|v| g.degree(v) == 1));
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6 + 3);
        assert_eq!(traversal::radius_from(&g, g.node(6)), 4);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn double_star_shape() {
        let g = double_star(3, 5);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.degree(g.node(0)), 4);
        assert_eq!(g.degree(g.node(1)), 6);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(traversal::diameter(&g), 3);
    }

    #[test]
    fn lb_value_round_trip() {
        let m = 5;
        for value in 1..(1usize << m) {
            let v = lb::value_node(m, value);
            assert_eq!(lb::value_of(m, v), Some(value));
        }
        assert_eq!(lb::value_of(m, lb::root()), None);
        assert_eq!(lb::value_of(m, lb::bit_node(m, 3)), None);
    }
}
