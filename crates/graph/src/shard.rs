//! Node-range sharding of the CSR substrate, in RAM and out of core.
//!
//! A [`ShardPlan`] cuts the node range `0..n` into contiguous shards.
//! Three consumers build on it:
//!
//! * [`ShardView`] — a borrowed window over one shard's CSR rows. The
//!   same view type serves slices of a monolithic in-RAM [`CsrGraph`]
//!   (offsets kept absolute, `base = offsets[start]`) and rebased
//!   segments streamed back from disk (`base = 0`), so the engine
//!   frontier passes are written once against it.
//! * [`ShardedCsr`] — an owned in-RAM split of a [`CsrGraph`]: each
//!   shard owns its rebased offsets/targets slice plus the cut-edge
//!   lists into every other shard (edges whose source is in the shard
//!   and whose target is not, bucketed by destination shard).
//! * [`SpillSink`] / [`DiskShards`] — the out-of-core path. Generators
//!   stream `(u64, u64)` edge runs into per-shard spill files under a
//!   scratch directory (each undirected edge written once per endpoint
//!   shard, so cross-shard edges appear in both buckets — the on-disk
//!   cut-edge lists); `finalize` counting-sorts each bucket into a
//!   rebased CSR segment file, shard by shard in ascending index order,
//!   and [`DiskShards::load`] reads one segment at a time into a
//!   reusable [`ShardScratch`] so peak RSS stays near one shard.
//!
//! Sharding never changes outcomes: the engines' coin tapes address
//! coins by `(site, lane)` — pure functions of the trial seed — so the
//! order in which shards replay a round's frontier cannot change any
//! draw. See DESIGN.md for the full argument.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::mem;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;

use crate::csr::{CsrError, CsrGraph, CsrWidth};

/// A failure while building or reading sharded adjacency: either the
/// edge stream was invalid (typed [`CsrError`]) or the spill/segment IO
/// failed.
#[derive(Debug)]
pub enum ShardError {
    /// The edge stream violated the CSR invariants.
    Graph(CsrError),
    /// IO failed outside any particular segment (e.g. creating the
    /// scratch directory). Per-segment failures carry their shard index
    /// and path via [`ShardError::SegmentIo`].
    Io(io::Error),
    /// Reading or writing one shard's spill bucket or segment file
    /// failed, with the shard index and file path attached.
    SegmentIo {
        /// Shard whose file failed.
        shard: usize,
        /// The spill bucket or segment file involved.
        path: PathBuf,
        /// The underlying IO error.
        source: io::Error,
    },
    /// A segment file's header disagreed with the plan or with the
    /// metadata recorded at finalize time — the file is truncated,
    /// overwritten, or from another run.
    SegmentCorrupt {
        /// Shard whose segment failed validation.
        shard: usize,
        /// The segment file involved.
        path: PathBuf,
        /// Which header field disagreed.
        what: &'static str,
        /// The value the plan/metadata requires.
        expected: u64,
        /// The value found in the file.
        found: u64,
    },
    /// A segment file ended before its header-declared payload.
    SegmentTruncated {
        /// Shard whose segment ended early.
        shard: usize,
        /// The segment file involved.
        path: PathBuf,
    },
    /// A spill bucket's byte length was not a whole number of 8-byte
    /// edge records — the spill was torn mid-write.
    TornSpill {
        /// Shard whose bucket was torn.
        shard: usize,
        /// The spill bucket involved.
        path: PathBuf,
        /// Residual bytes past the last whole record.
        trailing: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Graph(e) => write!(f, "{e}"),
            ShardError::Io(e) => write!(f, "shard spill IO: {e}"),
            ShardError::SegmentIo {
                shard,
                path,
                source,
            } => write!(f, "segment {shard} ({}): {source}", path.display()),
            ShardError::SegmentCorrupt {
                shard,
                path,
                what,
                expected,
                found,
            } => write!(
                f,
                "segment {shard} ({}): {what} mismatch (expected {expected}, found {found})",
                path.display()
            ),
            ShardError::SegmentTruncated { shard, path } => {
                write!(
                    f,
                    "segment {shard} ({}): file ended before declared payload",
                    path.display()
                )
            }
            ShardError::TornSpill {
                shard,
                path,
                trailing,
            } => {
                write!(
                    f,
                    "spill bucket {shard} ({}) torn: {trailing} trailing bytes",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<CsrError> for ShardError {
    fn from(e: CsrError) -> Self {
        ShardError::Graph(e)
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// A contiguous partition of the node range `0..n` into shards.
///
/// Shard `s` owns nodes `bounds[s]..bounds[s + 1]`; ranges are balanced
/// to within one node. The plan is tiny (one `u32` per shard) and is
/// shared by every sharded structure and pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardPlan {
    bounds: Vec<u32>,
}

impl ShardPlan {
    /// Cuts `0..n` into `shards` balanced contiguous ranges. `shards`
    /// is clamped to `1..=n`, so every shard is non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the usable `u32` range.
    #[must_use]
    pub fn uniform(n: usize, shards: usize) -> Self {
        assert!(n > 0, "graph must have at least one node");
        assert!(
            n as u64 <= <u32 as CsrWidth>::MAX_INDEX,
            "node count exceeds u32"
        );
        let k = shards.clamp(1, n);
        let mut bounds = Vec::with_capacity(k + 1);
        for s in 0..=k {
            bounds.push((s as u64 * n as u64 / k as u64) as u32);
        }
        ShardPlan { bounds }
    }

    /// The smallest uniform plan whose largest shard fits
    /// `budget_bytes` of resident CSR data (`4` bytes per adjacency
    /// entry plus `4` per row offset), given an estimate of the total
    /// directed adjacency volume. Capped at 1024 shards.
    #[must_use]
    pub fn for_budget(n: usize, adjacency_entries: u64, budget_bytes: u64) -> Self {
        let mut k = 1usize;
        while k < 1024 {
            let rows = (n as u64).div_ceil(k as u64);
            let entries = adjacency_entries.div_ceil(k as u64);
            if entries * 4 + (rows + 1) * 4 <= budget_bytes {
                break;
            }
            k *= 2;
        }
        ShardPlan::uniform(n, k)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of nodes `n` covered by the plan.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.bounds[self.bounds.len() - 1] as usize
    }

    /// The `[start, end)` node range of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shard_count()`.
    #[must_use]
    pub fn range(&self, s: usize) -> (u32, u32) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// The shard owning node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn shard_of(&self, v: u32) -> usize {
        assert!((v as usize) < self.node_count(), "node out of range");
        self.bounds.partition_point(|&b| b <= v) - 1
    }

    /// The shard boundaries (`shard_count() + 1` entries, first `0`,
    /// last `n`).
    #[must_use]
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }
}

/// A borrowed window over one shard's CSR rows.
///
/// `offsets` has one entry per row plus one; entry values are absolute
/// positions minus `base`, so the same accessor body serves a slice of
/// a monolithic graph (`base = offsets[start]`, targets sliced to the
/// shard) and a rebased disk segment (`base = 0`). Target ids remain
/// **global**: a row may name nodes in other shards (the cut edges).
#[derive(Clone, Copy, Debug)]
pub struct ShardView<'a> {
    start: u32,
    end: u32,
    offsets: &'a [u32],
    base: u32,
    targets: &'a [u32],
}

impl<'a> ShardView<'a> {
    /// A view of rows `start..end` from explicit parts. `offsets` must
    /// hold `end - start + 1` entries; `targets` must span exactly the
    /// shard's adjacency (`offsets[last] - base` entries).
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent.
    #[must_use]
    pub fn from_parts(
        start: u32,
        end: u32,
        offsets: &'a [u32],
        base: u32,
        targets: &'a [u32],
    ) -> Self {
        assert_eq!(offsets.len(), (end - start) as usize + 1, "offsets length");
        assert_eq!(offsets[0], base, "first offset must equal the base");
        assert_eq!(
            (offsets[offsets.len() - 1] - base) as usize,
            targets.len(),
            "targets length"
        );
        ShardView {
            start,
            end,
            offsets,
            base,
            targets,
        }
    }

    /// A view of rows `start..end` of a monolithic CSR array pair — the
    /// in-RAM sharding path, no copies.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn over(offsets: &'a [u32], targets: &'a [u32], start: u32, end: u32) -> Self {
        let base = offsets[start as usize];
        ShardView::from_parts(
            start,
            end,
            &offsets[start as usize..=end as usize],
            base,
            &targets[base as usize..offsets[end as usize] as usize],
        )
    }

    /// First node id in the shard (inclusive).
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last node id in the shard.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Number of rows in the shard.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the shard holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether node `v` belongs to this shard.
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        self.start <= v && v < self.end
    }

    /// The sorted neighbor list of node `v` (global ids — may leave the
    /// shard).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the shard.
    #[must_use]
    pub fn targets_of(&self, v: u32) -> &'a [u32] {
        let local = (v - self.start) as usize;
        let lo = (self.offsets[local] - self.base) as usize;
        let hi = (self.offsets[local + 1] - self.base) as usize;
        &self.targets[lo..hi]
    }

    /// The degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the shard.
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        self.targets_of(v).len()
    }

    /// Total adjacency entries in the shard.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }
}

/// One owned shard of a [`ShardedCsr`]: rebased CSR rows plus the
/// cut-edge lists into every other shard.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Segment {
    /// Rebased row boundaries (`rows + 1` entries, first `0`).
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists (global ids).
    targets: Vec<u32>,
    /// `shard_count + 1` boundaries into `cut_edges`, bucketing by
    /// destination shard (own-shard bucket is empty).
    cut_offsets: Vec<usize>,
    /// `(source, target)` pairs with the source in this shard and the
    /// target elsewhere, grouped by the target's shard.
    cut_edges: Vec<(u32, u32)>,
}

/// An owned in-RAM node-range split of a [`CsrGraph`]: each shard owns
/// its rebased offsets/targets slice plus the cut-edge lists into the
/// other shards. Views are handed out as [`ShardView`]s, identical in
/// shape to what the out-of-core path streams from disk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardedCsr {
    plan: ShardPlan,
    segments: Vec<Segment>,
    edge_count: usize,
}

impl ShardedCsr {
    /// Splits a monolithic CSR graph along `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count.
    #[must_use]
    pub fn split(csr: &CsrGraph, plan: ShardPlan) -> Self {
        assert_eq!(plan.node_count(), csr.node_count(), "plan/graph mismatch");
        let k = plan.shard_count();
        let mut segments = Vec::with_capacity(k);
        for s in 0..k {
            let (start, end) = plan.range(s);
            let base = csr.offsets()[start as usize];
            let offsets: Vec<u32> = csr.offsets()[start as usize..=end as usize]
                .iter()
                .map(|&o| o - base)
                .collect();
            let targets: Vec<u32> =
                csr.targets()[base as usize..csr.offsets()[end as usize] as usize].to_vec();
            // Bucket the out-going cut edges by destination shard.
            let mut counts = vec![0usize; k];
            for v in start..end {
                for &t in csr.neighbors_of(v as usize) {
                    let d = plan.shard_of(t);
                    if d != s {
                        counts[d] += 1;
                    }
                }
            }
            let mut cut_offsets = Vec::with_capacity(k + 1);
            let mut acc = 0usize;
            cut_offsets.push(0);
            for &c in &counts {
                acc += c;
                cut_offsets.push(acc);
            }
            let mut cut_edges = vec![(0u32, 0u32); acc];
            let mut cursor = cut_offsets.clone();
            for v in start..end {
                for &t in csr.neighbors_of(v as usize) {
                    let d = plan.shard_of(t);
                    if d != s {
                        cut_edges[cursor[d]] = (v, t);
                        cursor[d] += 1;
                    }
                }
            }
            segments.push(Segment {
                offsets,
                targets,
                cut_offsets,
                cut_edges,
            });
        }
        ShardedCsr {
            plan,
            segments,
            edge_count: csr.edge_count(),
        }
    }

    /// The shard plan this split follows.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of nodes across all shards.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.plan.node_count()
    }

    /// Number of undirected edges across all shards.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// A borrowed view of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shard_count()`.
    #[must_use]
    pub fn view(&self, s: usize) -> ShardView<'_> {
        let (start, end) = self.plan.range(s);
        let seg = &self.segments[s];
        ShardView::from_parts(start, end, &seg.offsets, 0, &seg.targets)
    }

    /// The cut edges leaving shard `s` for shard `dest`: `(source,
    /// target)` pairs, source in `s`, target in `dest`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn cut_edges(&self, s: usize, dest: usize) -> &[(u32, u32)] {
        let seg = &self.segments[s];
        &seg.cut_edges[seg.cut_offsets[dest]..seg.cut_offsets[dest + 1]]
    }

    /// Total cut edges leaving shard `s` (both directions of an
    /// undirected cross-shard edge count once from each side).
    #[must_use]
    pub fn cut_degree(&self, s: usize) -> usize {
        self.segments[s].cut_edges.len()
    }
}

/// Reusable buffers for streaming one disk segment at a time: one
/// shard's rebased offsets and targets plus a bounded byte buffer for
/// IO decoding. Reusing the scratch across shard loads keeps peak RSS
/// at roughly the largest shard.
#[derive(Default)]
pub struct ShardScratch {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    buf: Vec<u8>,
}

impl ShardScratch {
    /// An empty scratch; buffers grow to the largest shard loaded.
    #[must_use]
    pub fn new() -> Self {
        ShardScratch::default()
    }
}

/// Bounded decode buffer: stream `words` little-endian `u32`s from
/// `reader` into `out` without buffering the whole payload.
///
/// Both `out` and `buf` keep their allocations across calls: `buf` is
/// pinned at the chunk size once, and `out` is only re-zeroed where it
/// grows past its previous length, so back-to-back loads of same-sized
/// segments never touch memory they are not about to overwrite.
fn read_words(
    reader: &mut impl Read,
    out: &mut Vec<u32>,
    words: usize,
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    const CHUNK: usize = 1 << 20;
    if buf.len() < CHUNK {
        buf.resize(CHUNK, 0);
    }
    if out.len() > words {
        out.truncate(words);
    } else {
        out.resize(words, 0);
    }
    let mut done = 0usize;
    while done < words {
        let take = (words - done).min(CHUNK / 4);
        let bytes = &mut buf[..take * 4];
        reader.read_exact(bytes)?;
        for (o, c) in out[done..done + take].iter_mut().zip(bytes.chunks_exact(4)) {
            *o = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        done += take;
    }
    Ok(())
}

fn read_u64(reader: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// A consumer of streamed undirected edges — the seam between the
/// random-graph generators and whatever holds the edges: an in-RAM
/// `(u32, u32)` list for the buffered `_csr` path, or a [`SpillSink`]
/// for the out-of-core path. Generators emit each unordered pair
/// exactly once (duplicates from overlaying families are allowed and
/// merge downstream).
pub trait EdgeSink {
    /// Consumes one undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the edge is invalid for the sink or
    /// spilling it fails; in-RAM sinks are infallible.
    fn edge(&mut self, u: u64, v: u64) -> Result<(), ShardError>;
}

impl EdgeSink for SpillSink {
    fn edge(&mut self, u: u64, v: u64) -> Result<(), ShardError> {
        self.push(u, v)
    }
}

/// Monotonic suffix so concurrent sinks in one process never share a
/// scratch directory.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique scratch directory under `out/` for spill and
/// segment files (not created yet). Spill artifacts are transient: the
/// whole `out/` tree is gitignored.
#[must_use]
pub fn default_scratch_dir() -> PathBuf {
    let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    PathBuf::from(format!(
        "out/shard-scratch/pid{}-{}",
        std::process::id(),
        seq
    ))
}

/// The streaming edge collector of the out-of-core path.
///
/// `push(u, v)` validates each endpoint against the `u32` word (typed
/// [`CsrError`]s — never a silent truncation) and appends the directed
/// half-edge to the spill bucket of each endpoint's shard, so a
/// cross-shard edge lands in both buckets: the buckets *are* the
/// cut-edge lists of the on-disk format. `finalize` then counting-sorts
/// each bucket into a rebased CSR segment file, in ascending shard
/// order, holding only one shard's adjacency in RAM at a time.
pub struct SpillSink {
    plan: ShardPlan,
    dir: PathBuf,
    writers: Vec<BufWriter<File>>,
    half_edges: Vec<u64>,
    /// Directed sinks record each `(u, v)` push once, in `u`'s bucket
    /// only — the tree-segment layout, where row `u` lists `u`'s
    /// children.
    directed: bool,
}

impl SpillSink {
    /// Opens one spill bucket per shard under `dir` (created if
    /// missing).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Io`] if the directory or bucket files
    /// cannot be created.
    pub fn create(dir: impl AsRef<Path>, plan: ShardPlan) -> Result<Self, ShardError> {
        Self::create_inner(dir, plan, false)
    }

    /// Opens a *directed* sink: each pushed `(u, v)` lands only in
    /// `u`'s shard bucket, so the finalized segments form a directed
    /// CSR (row `u` = the targets pushed from `u`, sorted, deduped) —
    /// the on-disk layout of a BFS tree's child lists.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Io`] if the directory or bucket files
    /// cannot be created.
    pub fn create_directed(dir: impl AsRef<Path>, plan: ShardPlan) -> Result<Self, ShardError> {
        Self::create_inner(dir, plan, true)
    }

    fn create_inner(
        dir: impl AsRef<Path>,
        plan: ShardPlan,
        directed: bool,
    ) -> Result<Self, ShardError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let k = plan.shard_count();
        let mut writers = Vec::with_capacity(k);
        for s in 0..k {
            let file = File::create(dir.join(format!("spill_{s}.bin")))?;
            writers.push(BufWriter::new(file));
        }
        Ok(SpillSink {
            plan,
            dir,
            writers,
            half_edges: vec![0; k],
            directed,
        })
    }

    /// The shard plan the sink spills along.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Streams one undirected edge into the spill buckets.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CsrError`] for endpoints past the `u32` word,
    /// out-of-range endpoints, or self-loops; [`ShardError::SegmentIo`]
    /// (with the bucket's shard index and path) if a bucket write
    /// fails.
    pub fn push(&mut self, u: u64, v: u64) -> Result<(), ShardError> {
        let n = self.plan.node_count() as u64;
        for e in [u, v] {
            if e > <u32 as CsrWidth>::MAX_INDEX {
                return Err(CsrError::EndpointOverflow {
                    endpoint: e,
                    max: <u32 as CsrWidth>::MAX_INDEX,
                }
                .into());
            }
            if e >= n {
                return Err(CsrError::OutOfRange { endpoint: e, n }.into());
            }
        }
        if u == v {
            return Err(CsrError::SelfLoop { node: u }.into());
        }
        let (u, v) = (u as u32, v as u32);
        let orientations: &[(u32, u32)] = if self.directed {
            &[(u, v)]
        } else {
            &[(u, v), (v, u)]
        };
        for &(src, dst) in orientations {
            let s = self.plan.shard_of(src);
            let mut rec = [0u8; 8];
            rec[..4].copy_from_slice(&src.to_le_bytes());
            rec[4..].copy_from_slice(&dst.to_le_bytes());
            self.writers[s]
                .write_all(&rec)
                .map_err(|source| ShardError::SegmentIo {
                    shard: s,
                    path: self.dir.join(format!("spill_{s}.bin")),
                    source,
                })?;
            self.half_edges[s] += 1;
        }
        Ok(())
    }

    /// Counting-sorts every spill bucket into its rebased CSR segment
    /// file (ascending shard order — the fixed merge order the readers
    /// rely on), deleting each bucket once consumed. Duplicate pushed
    /// edges merge, exactly like [`CsrGraph::from_edges`].
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] on IO failure or if a shard's adjacency
    /// overflows the `u32` offset range.
    pub fn finalize(self) -> Result<DiskShards, ShardError> {
        let SpillSink {
            plan,
            dir,
            writers,
            half_edges,
            directed: _,
        } = self;
        for w in writers {
            w.into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?
                .sync_all()?;
        }
        let k = plan.shard_count();
        let mut metas = Vec::with_capacity(k);
        let mut scratch = ShardScratch::new();
        let mut total_entries = 0u64;
        for (s, &shard_half_edges) in half_edges.iter().enumerate().take(k) {
            let (start, end) = plan.range(s);
            let rows = (end - start) as usize;
            let spill = dir.join(format!("spill_{s}.bin"));
            if shard_half_edges > <u32 as CsrWidth>::MAX_INDEX {
                return Err(CsrError::AdjacencyOverflow {
                    max: <u32 as CsrWidth>::MAX_INDEX,
                }
                .into());
            }
            // Pass 1: per-row degree from the bucket stream.
            let mut degree = vec![0u32; rows];
            stream_records(&spill, s, &mut scratch.buf, |src, _| {
                degree[(src - start) as usize] += 1;
            })?;
            let mut offsets = Vec::with_capacity(rows + 1);
            let mut acc = 0u32;
            offsets.push(0u32);
            for &d in &degree {
                acc += d;
                offsets.push(acc);
            }
            drop(degree);
            // Pass 2: scatter targets, then sort + dedup per row.
            let mut targets = vec![0u32; acc as usize];
            let mut cursor = offsets.clone();
            stream_records(&spill, s, &mut scratch.buf, |src, dst| {
                let c = &mut cursor[(src - start) as usize];
                targets[*c as usize] = dst;
                *c += 1;
            })?;
            drop(cursor);
            let mut write = 0usize;
            let mut compact = Vec::with_capacity(rows + 1);
            compact.push(0u32);
            for r in 0..rows {
                let (lo, hi) = (offsets[r] as usize, offsets[r + 1] as usize);
                targets[lo..hi].sort_unstable();
                let mut prev = None;
                for i in lo..hi {
                    let t = targets[i];
                    if prev != Some(t) {
                        targets[write] = t;
                        write += 1;
                        prev = Some(t);
                    }
                }
                compact.push(write as u32);
            }
            targets.truncate(write);
            total_entries += write as u64;
            // Segment file: [rows u64][entries u64][offsets][targets].
            let seg_path = dir.join(format!("segment_{s}.bin"));
            let seg_io = |source: io::Error| ShardError::SegmentIo {
                shard: s,
                path: seg_path.clone(),
                source,
            };
            let mut out = BufWriter::new(File::create(&seg_path).map_err(seg_io)?);
            out.write_all(&(rows as u64).to_le_bytes())
                .map_err(seg_io)?;
            out.write_all(&(write as u64).to_le_bytes())
                .map_err(seg_io)?;
            for &o in &compact {
                out.write_all(&o.to_le_bytes()).map_err(seg_io)?;
            }
            for &t in &targets {
                out.write_all(&t.to_le_bytes()).map_err(seg_io)?;
            }
            out.into_inner()
                .map_err(|e| io::Error::other(e.to_string()))
                .map_err(seg_io)?
                .sync_all()
                .map_err(seg_io)?;
            metas.push(SegmentMeta {
                rows: rows as u64,
                entries: write as u64,
            });
            fs::remove_file(&spill).map_err(|source| ShardError::SegmentIo {
                shard: s,
                path: spill.clone(),
                source,
            })?;
        }
        Ok(DiskShards {
            catalog: SegmentCatalog { plan, dir, metas },
            entry_count: total_entries,
        })
    }
}

/// Streams the 8-byte `(src, dst)` records of shard `shard`'s spill
/// bucket through `f`, using `buf` as the bounded decode buffer. IO
/// failures carry the bucket's shard index and path.
fn stream_records(
    path: &Path,
    shard: usize,
    buf: &mut Vec<u8>,
    mut f: impl FnMut(u32, u32),
) -> Result<(), ShardError> {
    const CHUNK: usize = 1 << 20;
    let seg_io = |source: io::Error| ShardError::SegmentIo {
        shard,
        path: path.to_path_buf(),
        source,
    };
    let mut file = File::open(path).map_err(seg_io)?;
    buf.resize(CHUNK, 0);
    loop {
        let mut filled = 0usize;
        while filled < CHUNK {
            let got = file.read(&mut buf[filled..]).map_err(seg_io)?;
            if got == 0 {
                break;
            }
            filled += got;
        }
        if filled == 0 {
            return Ok(());
        }
        if !filled.is_multiple_of(8) {
            return Err(ShardError::TornSpill {
                shard,
                path: path.to_path_buf(),
                trailing: filled % 8,
            });
        }
        for rec in buf[..filled].chunks_exact(8) {
            let src = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
            let dst = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
            f(src, dst);
        }
        if filled < CHUNK {
            return Ok(());
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct SegmentMeta {
    rows: u64,
    entries: u64,
}

/// Everything a reader needs to locate and validate segments: the plan,
/// the scratch directory, and the finalize-time metadata. A clone of
/// the catalog is what the prefetch worker thread owns, so background
/// reads never borrow the [`DiskShards`] that will outlive them.
#[derive(Clone)]
struct SegmentCatalog {
    plan: ShardPlan,
    dir: PathBuf,
    metas: Vec<SegmentMeta>,
}

impl SegmentCatalog {
    fn seg_path(&self, s: usize) -> PathBuf {
        self.dir.join(format!("segment_{s}.bin"))
    }

    /// Opens segment `s`, validates its header, and returns the open
    /// file positioned at the offsets payload plus the validated
    /// `(rows, entries)` pair.
    fn open_segment(&self, s: usize) -> Result<(File, u64, u64), ShardError> {
        let (start, end) = self.plan.range(s);
        let path = self.seg_path(s);
        let mut file = File::open(&path).map_err(|source| ShardError::SegmentIo {
            shard: s,
            path: path.clone(),
            source,
        })?;
        let header = |e: io::Error| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ShardError::SegmentTruncated {
                    shard: s,
                    path: path.clone(),
                }
            } else {
                ShardError::SegmentIo {
                    shard: s,
                    path: path.clone(),
                    source: e,
                }
            }
        };
        let rows = read_u64(&mut file).map_err(header)?;
        let entries = read_u64(&mut file).map_err(header)?;
        for (what, expected, found) in [
            ("plan rows", (end - start) as u64, rows),
            ("meta rows", self.metas[s].rows, rows),
            ("meta entries", self.metas[s].entries, entries),
        ] {
            if found != expected {
                return Err(ShardError::SegmentCorrupt {
                    shard: s,
                    path: path.clone(),
                    what,
                    expected,
                    found,
                });
            }
        }
        Ok((file, rows, entries))
    }

    /// Reads segment `s` into `scratch` and returns its view — the body
    /// behind [`DiskShards::load`], shared with the prefetch worker.
    fn load<'a>(
        &self,
        s: usize,
        scratch: &'a mut ShardScratch,
    ) -> Result<ShardView<'a>, ShardError> {
        let (start, end) = self.plan.range(s);
        let (mut file, rows, entries) = self.open_segment(s)?;
        let payload = |e: io::Error| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ShardError::SegmentTruncated {
                    shard: s,
                    path: self.seg_path(s),
                }
            } else {
                ShardError::SegmentIo {
                    shard: s,
                    path: self.seg_path(s),
                    source: e,
                }
            }
        };
        read_words(
            &mut file,
            &mut scratch.offsets,
            rows as usize + 1,
            &mut scratch.buf,
        )
        .map_err(payload)?;
        read_words(
            &mut file,
            &mut scratch.targets,
            entries as usize,
            &mut scratch.buf,
        )
        .map_err(payload)?;
        Ok(ShardView::from_parts(
            start,
            end,
            &scratch.offsets,
            0,
            &scratch.targets,
        ))
    }
}

/// The finalized out-of-core CSR: one rebased segment file per shard
/// under the scratch directory. Segments are loaded one at a time into
/// a caller-owned [`ShardScratch`]; the whole directory is removed on
/// drop.
pub struct DiskShards {
    catalog: SegmentCatalog,
    entry_count: u64,
}

impl DiskShards {
    /// The shard plan the segments follow.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.catalog.plan
    }

    /// Number of nodes across all shards.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.catalog.plan.node_count()
    }

    /// Number of undirected edges after dedup. Meaningful only for
    /// stores finalized from an undirected sink ([`SpillSink::create`]);
    /// directed tree stores count each child edge once — use
    /// [`entry_count`](Self::entry_count).
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.entry_count / 2
    }

    /// Total adjacency entries across all segments after dedup.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Adjacency entries of the largest shard — the resident-set
    /// high-water contribution of shard streaming.
    #[must_use]
    pub fn max_shard_entries(&self) -> u64 {
        self.catalog
            .metas
            .iter()
            .map(|m| m.entries)
            .max()
            .unwrap_or(0)
    }

    /// Reads segment `s` into `scratch` and returns its view.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] if the segment cannot be
    /// opened or read (e.g. the scratch directory vanished mid-trial),
    /// [`ShardError::SegmentCorrupt`] if the header disagrees with the
    /// plan or the finalize-time metadata, and
    /// [`ShardError::SegmentTruncated`] if the file ends before its
    /// declared payload.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shard_count()`.
    pub fn load<'a>(
        &self,
        s: usize,
        scratch: &'a mut ShardScratch,
    ) -> Result<ShardView<'a>, ShardError> {
        self.catalog.load(s, scratch)
    }
}

impl Drop for DiskShards {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.catalog.dir);
    }
}

/// Where sharded adjacency lives: split in RAM or streamed from disk.
/// One accessor serves both, so the out-of-core flood runner is written
/// once.
pub enum ShardStore {
    /// All segments resident (mid-scale and equivalence testing).
    Ram(ShardedCsr),
    /// Segments streamed one at a time (the 10⁸ tier).
    Disk(DiskShards),
}

impl ShardStore {
    /// The shard plan of the underlying store.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        match self {
            ShardStore::Ram(s) => s.plan(),
            ShardStore::Disk(d) => d.plan(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.plan().node_count()
    }

    /// A view of shard `s`, loading through `scratch` when the store is
    /// on disk (the RAM store ignores the scratch).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::SegmentIo`] if a disk segment cannot be
    /// read.
    pub fn view<'a>(
        &'a self,
        s: usize,
        scratch: &'a mut ShardScratch,
    ) -> Result<ShardView<'a>, ShardError> {
        match self {
            ShardStore::Ram(store) => Ok(store.view(s)),
            ShardStore::Disk(d) => d.load(s, scratch),
        }
    }
}

/// Positioned exact read: `pread` on unix (one syscall per coalesced
/// run, no shared cursor), seek + read elsewhere.
fn read_exact_at(file: &mut File, pos: u64, buf: &mut [u8]) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, pos)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::Start(pos))?;
        file.read_exact(buf)
    }
}

/// What the prefetch worker sends back: the segment it read and either
/// the filled scratch or the typed error the read produced.
type FetchResult = (usize, Result<ShardScratch, ShardError>);

/// The background half of the prefetch pipeline: one reader thread that
/// owns a clone of the segment catalog, a command channel carrying
/// `(segment, empty scratch)` requests, and a result channel carrying
/// the filled scratch back. Exactly two [`ShardScratch`] buffers
/// circulate (`cur` + the one in flight or `spare`), so the pipeline's
/// RSS contribution is two segments — the double-buffering the
/// out-of-core budget story is built on.
struct Pipe {
    catalog: SegmentCatalog,
    cmd: Option<mpsc::Sender<(usize, ShardScratch)>>,
    res: mpsc::Receiver<FetchResult>,
    worker: Option<thread::JoinHandle<()>>,
    /// Holds the most recently served segment (what live views point
    /// into between `view` calls).
    cur: ShardScratch,
    /// The idle second buffer, handed to the worker on the next
    /// prefetch command.
    spare: Option<ShardScratch>,
    /// Segment the worker is currently reading, if any.
    inflight: Option<usize>,
    /// Segments the current pass will still ask for, in order.
    queue: VecDeque<usize>,
}

impl Pipe {
    fn recv(&mut self) -> Result<FetchResult, ShardError> {
        let got = self
            .res
            .recv()
            .map_err(|_| ShardError::Io(io::Error::other("segment prefetch worker exited")))?;
        self.inflight = None;
        Ok(got)
    }

    /// Issues the next announced segment to the worker if it is idle
    /// and a buffer is free.
    fn pump(&mut self) {
        if self.inflight.is_some() {
            return;
        }
        let Some(&next) = self.queue.front() else {
            return;
        };
        let Some(buf) = self.spare.take() else {
            return;
        };
        match &self.cmd {
            Some(cmd) if cmd.send((next, buf)).is_ok() => {
                self.inflight = Some(next);
            }
            // A dead worker degrades to synchronous loads in `view`.
            _ => {}
        }
    }

    fn view(&mut self, s: usize) -> Result<ShardView<'_>, ShardError> {
        if self.queue.front() == Some(&s) {
            self.queue.pop_front();
        }
        if self.inflight == Some(s) {
            let (_seg, res) = self.recv()?;
            let filled = res?;
            let old = mem::replace(&mut self.cur, filled);
            self.spare = Some(old);
        } else {
            if self.inflight.is_some() {
                // Misprediction: retire the in-flight read, keep its
                // buffer. A speculative read's error is dropped here —
                // if the segment is genuinely unreadable the on-demand
                // load below surfaces the same typed error.
                let (_seg, res) = self.recv()?;
                if let Ok(buf) = res {
                    self.spare = Some(buf);
                }
            }
            self.catalog.load(s, &mut self.cur).map(|_| ())?;
        }
        self.pump();
        let (start, end) = self.catalog.plan.range(s);
        Ok(ShardView::from_parts(
            start,
            end,
            &self.cur.offsets,
            0,
            &self.cur.targets,
        ))
    }
}

impl Drop for Pipe {
    fn drop(&mut self) {
        // Closing the command channel ends the worker's recv loop; the
        // join waits out any read still in flight.
        drop(self.cmd.take());
        while self.res.try_recv().is_ok() {}
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A pipelined reader over a [`ShardStore`]: segment reads for disk
/// stores overlap the caller's compute pass on the previous segment.
///
/// The caller announces each pass's segment sequence up front with
/// [`begin_pass`](Self::begin_pass); [`view`](Self::view) then serves
/// announced segments from the background reader (blocking only for
/// the part of the read that has not finished yet) and anything else
/// by a synchronous load. Prefetching is pure plumbing: the views
/// returned are byte-identical to [`ShardStore::view`]'s for every
/// request sequence, announced or not, so the `--prefetch` knob cannot
/// change outcomes. RAM stores and `enabled = false` degrade to the
/// plain synchronous path with no worker thread.
///
/// Typed [`ShardError`]s cross the thread boundary intact: a truncated
/// or corrupt segment read in the background surfaces from the `view`
/// call that asks for that segment.
pub struct PrefetchingStore<'s> {
    store: &'s ShardStore,
    pipe: Option<Pipe>,
    /// Scratch for the passthrough path (RAM store, prefetch off, or
    /// unannounced requests after a worker death).
    sync_scratch: ShardScratch,
}

impl<'s> PrefetchingStore<'s> {
    /// Wraps `store`, spawning the background reader only when
    /// `enabled` holds and the store is on disk.
    #[must_use]
    pub fn new(store: &'s ShardStore, enabled: bool) -> Self {
        let pipe = match store {
            ShardStore::Disk(d) if enabled => {
                let catalog = d.catalog.clone();
                let worker_catalog = catalog.clone();
                let (cmd_tx, cmd_rx) = mpsc::channel::<(usize, ShardScratch)>();
                let (res_tx, res_rx) = mpsc::channel();
                let worker = thread::Builder::new()
                    .name("segment-prefetch".into())
                    .spawn(move || {
                        while let Ok((s, mut scratch)) = cmd_rx.recv() {
                            let loaded = worker_catalog.load(s, &mut scratch).map(|_| ());
                            let msg = match loaded {
                                Ok(()) => (s, Ok(scratch)),
                                Err(e) => (s, Err(e)),
                            };
                            if res_tx.send(msg).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn segment-prefetch worker");
                Some(Pipe {
                    catalog,
                    cmd: Some(cmd_tx),
                    res: res_rx,
                    worker: Some(worker),
                    cur: ShardScratch::new(),
                    spare: Some(ShardScratch::new()),
                    inflight: None,
                    queue: VecDeque::new(),
                })
            }
            _ => None,
        };
        PrefetchingStore {
            store,
            pipe,
            sync_scratch: ShardScratch::new(),
        }
    }

    /// The wrapped store.
    #[must_use]
    pub fn store(&self) -> &'s ShardStore {
        self.store
    }

    /// The shard plan of the wrapped store.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        self.store.plan()
    }

    /// Whether a background reader is running (disk store with
    /// prefetch enabled).
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipe.is_some()
    }

    /// Announces the segments the upcoming pass will `view`, in order.
    /// Replaces any previous announcement; a no-op without a pipeline.
    pub fn begin_pass(&mut self, upcoming: &[usize]) {
        if let Some(pipe) = &mut self.pipe {
            pipe.queue.clear();
            pipe.queue.extend(upcoming.iter().copied());
            pipe.pump();
        }
    }

    /// A view of shard `s` — from the background reader when `s` was
    /// announced and is in flight, by synchronous load otherwise.
    ///
    /// # Errors
    ///
    /// Exactly [`ShardStore::view`]'s errors, including those raised on
    /// the reader thread.
    pub fn view(&mut self, s: usize) -> Result<ShardView<'_>, ShardError> {
        let store = self.store;
        match &mut self.pipe {
            None => store.view(s, &mut self.sync_scratch),
            Some(pipe) => pipe.view(s),
        }
    }
}

/// A borrowed window over an explicitly requested row subset of one
/// shard, produced by [`SparseLoader::load_rows`]. Target lists are
/// packed in ascending row order; lookup is by binary search over the
/// requested row list, so callers may iterate rows in any order.
#[derive(Clone, Copy, Debug)]
pub struct RowSetView<'a> {
    rows: &'a [u32],
    offsets: &'a [u32],
    targets: &'a [u32],
}

impl RowSetView<'_> {
    /// The adjacency of requested row `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not in the requested row set.
    #[must_use]
    pub fn targets_of(&self, v: u32) -> &[u32] {
        match self.rows.binary_search(&v) {
            Ok(i) => &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => panic!("row {v} was not requested from the sparse loader"),
        }
    }

    /// Total packed adjacency entries.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }
}

/// Byte gap (in `u32` words) below which adjacent row reads are merged
/// into one positioned read. 4096 words = 16 KiB — around the point
/// where skipping ahead beats decoding through.
const COALESCE_GAP_WORDS: u32 = 4096;

/// Sparse row reads from disk segments: when a pass touches a small
/// fraction of a shard, reading exactly the touched rows' target
/// ranges (coalesced into few positioned reads) beats decoding the
/// whole multi-hundred-megabyte segment.
///
/// The loader caches each shard's row-offset index on first touch —
/// `4 · (rows + 1)` bytes per touched shard, one sequential read each,
/// kept for the loader's lifetime. That cache is the price of skipping
/// full-segment loads and is counted in the RSS budget (DESIGN.md).
pub struct SparseLoader<'s> {
    store: &'s ShardStore,
    index: Vec<Option<Vec<u32>>>,
    files: Vec<Option<File>>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    buf: Vec<u8>,
}

impl<'s> SparseLoader<'s> {
    /// A loader over `store` with no indexes resident yet.
    #[must_use]
    pub fn new(store: &'s ShardStore) -> Self {
        let k = store.plan().shard_count();
        SparseLoader {
            store,
            index: (0..k).map(|_| None).collect(),
            files: (0..k).map(|_| None).collect(),
            offsets: Vec::new(),
            targets: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// Loads the adjacency of `rows` (sorted ascending, unique, all in
    /// shard `s`) and returns a view over exactly those rows.
    ///
    /// # Errors
    ///
    /// The same typed [`ShardError`]s as a full segment load.
    ///
    /// # Panics
    ///
    /// Panics on a RAM store (callers gate on
    /// [`PassLoader::use_sparse`]), or if `rows` is unsorted or out of
    /// the shard's range.
    pub fn load_rows<'a>(
        &'a mut self,
        s: usize,
        rows: &'a [u32],
    ) -> Result<RowSetView<'a>, ShardError> {
        let ShardStore::Disk(d) = self.store else {
            panic!("sparse row loads are a disk-store path");
        };
        let (start, end) = d.plan().range(s);
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
        if let (Some(&first), Some(&last)) = (rows.first(), rows.last()) {
            assert!(first >= start && last < end, "rows outside shard range");
        }
        if self.index[s].is_none() {
            let (mut file, seg_rows, _entries) = d.catalog.open_segment(s)?;
            let mut idx = Vec::new();
            read_words(&mut file, &mut idx, seg_rows as usize + 1, &mut self.buf)
                .map_err(|e| segment_read_err(&d.catalog, s, e))?;
            self.index[s] = Some(idx);
            self.files[s] = Some(file);
        }
        let idx = self.index[s].as_ref().expect("index resident");
        let file = self.files[s].as_mut().expect("file open");
        // Payload layout: 16-byte header, (rows + 1) offset words, then
        // the target words the offsets index into.
        let target_base = 16 + (idx.len() as u64) * 4;
        self.offsets.clear();
        self.targets.clear();
        self.offsets.push(0);
        let local = |v: u32| (v - start) as usize;
        let mut i = 0;
        while i < rows.len() {
            let lo = idx[local(rows[i])];
            let mut hi = idx[local(rows[i]) + 1];
            let mut j = i + 1;
            while j < rows.len() {
                let next_lo = idx[local(rows[j])];
                if next_lo - hi <= COALESCE_GAP_WORDS {
                    hi = idx[local(rows[j]) + 1];
                    j += 1;
                } else {
                    break;
                }
            }
            let bytes = ((hi - lo) as usize) * 4;
            if self.buf.len() < bytes {
                self.buf.resize(bytes, 0);
            }
            read_exact_at(
                file,
                target_base + u64::from(lo) * 4,
                &mut self.buf[..bytes],
            )
            .map_err(|e| segment_read_err(&d.catalog, s, e))?;
            for r in i..j {
                let (rlo, rhi) = (idx[local(rows[r])], idx[local(rows[r]) + 1]);
                let span = &self.buf[((rlo - lo) as usize) * 4..((rhi - lo) as usize) * 4];
                self.targets.extend(
                    span.chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
                );
                self.offsets.push(self.targets.len() as u32);
            }
            i = j;
        }
        Ok(RowSetView {
            rows,
            offsets: &self.offsets,
            targets: &self.targets,
        })
    }
}

/// Maps a payload-read IO failure on segment `s` to the typed error a
/// full load would raise.
fn segment_read_err(catalog: &SegmentCatalog, s: usize, e: io::Error) -> ShardError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ShardError::SegmentTruncated {
            shard: s,
            path: catalog.seg_path(s),
        }
    } else {
        ShardError::SegmentIo {
            shard: s,
            path: catalog.seg_path(s),
            source: e,
        }
    }
}

/// A pass touching fewer than `rows / SPARSE_RATIO` rows of a disk
/// shard is served by coalesced row reads instead of a full segment
/// load. A full load costs ~32 bytes of sequential decode per shard
/// row (average degree 8); a sparse row costs roughly one positioned
/// read, ~2 orders of magnitude more per row — hence the ratio.
const SPARSE_RATIO: usize = 256;

/// The engines' per-pass segment reader: a [`PrefetchingStore`] for
/// full-segment passes plus a [`SparseLoader`] for passes that touch a
/// small fraction of a shard, behind one adaptive threshold.
///
/// Both paths return exactly the bytes [`ShardStore::view`] would, so
/// the full/sparse choice — like prefetching and like the shard count —
/// is invisible in outcomes.
pub struct PassLoader<'s> {
    store: &'s ShardStore,
    prefetch: PrefetchingStore<'s>,
    sparse: SparseLoader<'s>,
}

impl<'s> PassLoader<'s> {
    /// A loader over `store`; `prefetch` spawns the background segment
    /// reader (disk stores only).
    #[must_use]
    pub fn new(store: &'s ShardStore, prefetch: bool) -> Self {
        PassLoader {
            store,
            prefetch: PrefetchingStore::new(store, prefetch),
            sparse: SparseLoader::new(store),
        }
    }

    /// The underlying store's plan.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        self.store.plan()
    }

    /// Whether a pass touching `requested` rows of shard `s` should use
    /// sparse row loads. Always false for RAM stores (everything is
    /// already resident) and for empty requests (the caller skips the
    /// shard outright).
    #[must_use]
    pub fn use_sparse(&self, s: usize, requested: usize) -> bool {
        if !matches!(self.store, ShardStore::Disk(_)) || requested == 0 {
            return false;
        }
        let (start, end) = self.store.plan().range(s);
        requested.saturating_mul(SPARSE_RATIO) < (end - start) as usize
    }

    /// Announces the upcoming pass's *full-view* segment sequence to
    /// the prefetcher (sparse shards are not announced — they never
    /// cost a segment read).
    pub fn begin_pass(&mut self, full: &[usize]) {
        self.prefetch.begin_pass(full);
    }

    /// A full view of shard `s` through the prefetch pipeline.
    ///
    /// # Errors
    ///
    /// Exactly [`ShardStore::view`]'s errors.
    pub fn view_full(&mut self, s: usize) -> Result<ShardView<'_>, ShardError> {
        self.prefetch.view(s)
    }

    /// A sparse view over `rows` (sorted, unique, within shard `s`).
    ///
    /// # Errors
    ///
    /// Exactly [`ShardStore::view`]'s errors.
    pub fn view_rows<'a>(
        &'a mut self,
        s: usize,
        rows: &'a [u32],
    ) -> Result<RowSetView<'a>, ShardError> {
        self.sparse.load_rows(s, rows)
    }

    /// One pass view of shard `s`: the sparse row view over
    /// `rows_sorted` when `sparse` holds, the full prefetched segment
    /// otherwise. `rows_sorted` is ignored on the full path, so callers
    /// only pay for sorting when the shard actually goes sparse.
    ///
    /// # Errors
    ///
    /// Exactly [`ShardStore::view`]'s errors.
    pub fn view_pass<'a>(
        &'a mut self,
        s: usize,
        rows_sorted: &'a [u32],
        sparse: bool,
    ) -> Result<PassView<'a>, ShardError> {
        if sparse {
            Ok(PassView::Rows(self.sparse.load_rows(s, rows_sorted)?))
        } else {
            Ok(PassView::Full(self.prefetch.view(s)?))
        }
    }
}

/// Either kind of per-pass shard view — full segment or explicit row
/// subset — behind the one accessor the engine passes use. Both kinds
/// serve exactly the bytes the plain [`ShardStore::view`] would, so
/// which one a pass got is invisible in outcomes.
pub enum PassView<'a> {
    /// A full segment view (prefetched or synchronously loaded).
    Full(ShardView<'a>),
    /// A sparse row-subset view.
    Rows(RowSetView<'a>),
}

impl PassView<'_> {
    /// The adjacency of row `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view (or, for a sparse view, was
    /// not in the requested row set).
    #[must_use]
    pub fn targets_of(&self, v: u32) -> &[u32] {
        match self {
            PassView::Full(view) => view.targets_of(v),
            PassView::Rows(view) => view.targets_of(v),
        }
    }
}

/// The BFS spanning structure of one source component, built
/// out-of-core from a sharded adjacency store: the level-order
/// enumeration (in RAM, `4` bytes per reachable node) plus the child
/// lists as directed [`DiskShards`] segments — the inputs the fast
/// Simple kernel needs, at `n = 10⁸` scale.
///
/// The builder reproduces [`CsrGraph::bfs_tree`] **exactly**:
///
/// * In FIFO BFS every discoverer of a level-`L + 1` node is a level-`L`
///   node, and the recorded parent is the *first* FIFO discoverer —
///   equivalently, the level-`L` neighbor of minimum FIFO rank. The
///   level-synchronous sharded sweep keeps per-node FIFO ranks and
///   resolves each discovered node's parent to the minimum-rank
///   discoverer across all shard passes, which is order-independent.
/// * The FIFO order of level `L + 1` is "nodes grouped by their
///   parent's FIFO rank, ascending id within a group" (CSR rows are
///   sorted), so ranks for the next level are assigned by sorting the
///   discovered set by `(rank(parent), id)`.
/// * The final enumeration sorts each level by id, and the per-parent
///   child lists come out ascending — exactly what
///   [`SpillSink::finalize`]'s per-row sort produces from the directed
///   `(parent, child)` spill.
///
/// `crates/graph` pins the equivalence against [`CsrGraph::bfs_tree`]
/// on random graphs for both store backends.
pub struct ShardedBfsTree {
    order: Vec<u32>,
    children: DiskShards,
    reachable: usize,
}

impl ShardedBfsTree {
    /// Runs the sharded BFS over `store`'s adjacency from `source` and
    /// finalizes the child lists into directed segments under `dir`.
    ///
    /// Peak RSS during the build is two `u32` words per node (parent
    /// and FIFO rank, dropped on return) plus the order, one shard's
    /// adjacency, and the current level's frontier.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if an adjacency segment cannot be read or
    /// the child spill fails.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn build(
        store: &ShardStore,
        source: u32,
        dir: impl AsRef<Path>,
    ) -> Result<Self, ShardError> {
        let plan = store.plan().clone();
        let n = plan.node_count();
        assert!((source as usize) < n, "source out of range");
        let k = plan.shard_count();
        const UNSET: u32 = u32::MAX;

        let mut sink = SpillSink::create_directed(dir, plan.clone())?;
        let mut scratch = ShardScratch::new();
        let mut parent = vec![UNSET; n];
        let mut rank = vec![UNSET; n];
        parent[source as usize] = source;
        rank[source as usize] = 0;
        let mut next_rank = 1u32;
        let mut order: Vec<u32> = vec![source];

        let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); k];
        frontier[plan.shard_of(source)].push(source);
        let mut discovered: Vec<u32> = Vec::new();

        while frontier.iter().any(|l| !l.is_empty()) {
            discovered.clear();
            for (s, list) in frontier.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let view = store.view(s, &mut scratch)?;
                for &u in list {
                    for &v in view.targets_of(u) {
                        let vi = v as usize;
                        if rank[vi] != UNSET {
                            continue; // settled at this level or above
                        }
                        if parent[vi] == UNSET {
                            parent[vi] = u;
                            discovered.push(v);
                        } else if rank[parent[vi] as usize] > rank[u as usize] {
                            parent[vi] = u;
                        }
                    }
                }
            }
            for list in &mut frontier {
                list.clear();
            }
            if discovered.is_empty() {
                break;
            }
            // FIFO order of the next level: discoverers ascend by rank,
            // ids ascend within one discoverer's sorted adjacency row.
            discovered.sort_unstable_by_key(|&v| (rank[parent[v as usize] as usize], v));
            for &v in &discovered {
                rank[v as usize] = next_rank;
                next_rank += 1;
                sink.push(u64::from(parent[v as usize]), u64::from(v))?;
                frontier[plan.shard_of(v)].push(v);
            }
            let level_start = order.len();
            order.extend_from_slice(&discovered);
            order[level_start..].sort_unstable();
        }

        drop(parent);
        drop(rank);
        let children = sink.finalize()?;
        let reachable = order.len();
        Ok(ShardedBfsTree {
            order,
            children,
            reachable,
        })
    }

    /// The source component in nondecreasing-level order (ties by node
    /// id) — equal to [`CsrTree::order`](crate::CsrTree::order) of the
    /// in-RAM tree.
    #[must_use]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of nodes reachable from the source.
    #[must_use]
    pub fn reachable(&self) -> usize {
        self.reachable
    }

    /// The directed child-list segments.
    #[must_use]
    pub fn children(&self) -> &DiskShards {
        &self.children
    }

    /// Consumes the tree into its order and child segments.
    #[must_use]
    pub fn into_parts(self) -> (Vec<u32>, DiskShards) {
        (self.order, self.children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_edges(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|v| (v, (v + 1) % n)).collect()
    }

    #[test]
    fn uniform_plan_covers_and_balances() {
        for (n, k) in [(10, 3), (7, 7), (1, 4), (100, 1), (31, 8)] {
            let plan = ShardPlan::uniform(n, k);
            assert_eq!(plan.node_count(), n);
            assert_eq!(plan.shard_count(), k.min(n));
            let mut seen = 0usize;
            for s in 0..plan.shard_count() {
                let (start, end) = plan.range(s);
                assert!(start < end, "empty shard {s} for n={n} k={k}");
                for v in start..end {
                    assert_eq!(plan.shard_of(v), s);
                    seen += 1;
                }
            }
            assert_eq!(seen, n);
        }
    }

    #[test]
    fn budget_plan_shrinks_the_largest_shard() {
        let plan = ShardPlan::for_budget(1000, 8000, 4 * 1200);
        assert!(plan.shard_count() > 1);
        let one = ShardPlan::for_budget(1000, 8000, u64::MAX);
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn split_views_reproduce_the_monolith() {
        let n = 100u32;
        let csr = CsrGraph::from_edges(n as usize, &ring_edges(n));
        for k in [1, 2, 3, 7] {
            let sharded = ShardedCsr::split(&csr, ShardPlan::uniform(n as usize, k));
            assert_eq!(sharded.edge_count(), csr.edge_count());
            for s in 0..sharded.plan().shard_count() {
                let view = sharded.view(s);
                for v in view.start()..view.end() {
                    assert!(view.contains(v));
                    assert_eq!(view.targets_of(v), csr.neighbors_of(v as usize));
                    assert_eq!(view.degree(v), csr.degree(v as usize));
                }
            }
        }
    }

    #[test]
    fn over_and_split_views_agree() {
        let n = 64u32;
        let csr = CsrGraph::from_edges(n as usize, &ring_edges(n));
        let plan = ShardPlan::uniform(n as usize, 5);
        let sharded = ShardedCsr::split(&csr, plan.clone());
        for s in 0..plan.shard_count() {
            let (start, end) = plan.range(s);
            let direct = ShardView::over(csr.offsets(), csr.targets(), start, end);
            let owned = sharded.view(s);
            assert_eq!(direct.entry_count(), owned.entry_count());
            for v in start..end {
                assert_eq!(direct.targets_of(v), owned.targets_of(v));
            }
        }
    }

    #[test]
    fn cut_edges_are_exactly_the_cross_shard_adjacency() {
        let n = 60u32;
        let csr = CsrGraph::from_edges(n as usize, &ring_edges(n));
        let plan = ShardPlan::uniform(n as usize, 4);
        let sharded = ShardedCsr::split(&csr, plan.clone());
        let mut listed = 0usize;
        for s in 0..4 {
            for d in 0..4 {
                for &(u, v) in sharded.cut_edges(s, d) {
                    assert_eq!(plan.shard_of(u), s);
                    assert_eq!(plan.shard_of(v), d);
                    assert_ne!(s, d, "own-shard cut bucket must be empty");
                    assert!(csr.neighbors_of(u as usize).contains(&v));
                    listed += 1;
                }
            }
            assert_eq!(
                sharded.cut_degree(s),
                (0..4).map(|d| sharded.cut_edges(s, d).len()).sum::<usize>()
            );
        }
        let expect: usize = (0..n)
            .map(|v| {
                csr.neighbors_of(v as usize)
                    .iter()
                    .filter(|&&t| plan.shard_of(t) != plan.shard_of(v))
                    .count()
            })
            .sum();
        assert_eq!(listed, expect);
    }

    #[test]
    fn spill_pipeline_matches_from_edges() {
        let n = 120usize;
        // Ring plus chords, with duplicates and both orientations.
        let mut edges: Vec<(u32, u32)> = ring_edges(n as u32);
        for v in 0..(n as u32) / 2 {
            edges.push((v, v + (n as u32) / 2));
            edges.push((v + (n as u32) / 2, v));
        }
        let reference = CsrGraph::from_edges(n, &edges);
        let dir = default_scratch_dir();
        let plan = ShardPlan::uniform(n, 3);
        let mut sink = SpillSink::create(&dir, plan).expect("create sink");
        for &(u, v) in &edges {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = sink.finalize().expect("finalize");
        assert_eq!(disk.node_count(), n);
        assert_eq!(disk.edge_count() as usize, reference.edge_count());
        assert!(disk.max_shard_entries() > 0);
        let mut scratch = ShardScratch::new();
        for s in 0..disk.plan().shard_count() {
            let view = disk.load(s, &mut scratch).expect("load");
            for v in view.start()..view.end() {
                assert_eq!(view.targets_of(v), reference.neighbors_of(v as usize));
            }
        }
        let kept = disk.catalog.dir.clone();
        drop(disk);
        assert!(!kept.exists(), "scratch dir must be removed on drop");
    }

    #[test]
    fn spill_sink_rejects_bad_edges_with_typed_errors() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(10, 2)).expect("create sink");
        match sink.push(0, 1u64 << 40) {
            Err(ShardError::Graph(CsrError::EndpointOverflow { endpoint, .. })) => {
                assert_eq!(endpoint, 1u64 << 40);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
        assert!(matches!(
            sink.push(0, 10),
            Err(ShardError::Graph(CsrError::OutOfRange { .. }))
        ));
        assert!(matches!(
            sink.push(3, 3),
            Err(ShardError::Graph(CsrError::SelfLoop { node: 3 }))
        ));
        sink.push(0, 1).expect("valid edge");
        let disk = sink.finalize().expect("finalize");
        let mut scratch = ShardScratch::new();
        let store = ShardStore::Disk(disk);
        let view = store.view(0, &mut scratch).expect("view");
        assert_eq!(view.targets_of(0), &[1]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A deterministic irregular graph: ring plus long-range chords,
    /// giving multi-parent discovery races at every level.
    fn chord_edges(n: u32) -> Vec<(u32, u32)> {
        let mut edges = ring_edges(n);
        for v in 0..n {
            let w = (v * v + 3 * v + 7) % n;
            if w != v {
                edges.push((v, w));
            }
        }
        edges
    }

    #[test]
    fn sharded_bfs_tree_matches_in_ram_bfs_tree() {
        let n = 150usize;
        let edges = chord_edges(n as u32);
        let csr = CsrGraph::from_edges(n, &edges);
        let reference = csr.bfs_tree(0);
        let (ref_offsets, ref_children) = reference.clone().into_children_csr();
        for k in [1usize, 2, 3, 7] {
            let plan = ShardPlan::uniform(n, k);
            let ram = ShardStore::Ram(ShardedCsr::split(&csr, plan.clone()));
            let tree = ShardedBfsTree::build(&ram, 0, default_scratch_dir()).expect("build");
            assert_eq!(tree.order(), reference.order(), "order diverged at k={k}");
            assert_eq!(tree.reachable(), reference.order().len());
            let mut scratch = ShardScratch::new();
            for s in 0..plan.shard_count() {
                let view = tree.children().load(s, &mut scratch).expect("load");
                for v in view.start()..view.end() {
                    let lo = ref_offsets[v as usize] as usize;
                    let hi = ref_offsets[v as usize + 1] as usize;
                    assert_eq!(
                        view.targets_of(v),
                        &ref_children[lo..hi],
                        "children of {v} diverged at k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_bfs_tree_from_disk_adjacency_and_disconnected_source() {
        // Two components: the chord graph on 0..100 plus an isolated
        // ring on 100..120 — the tree must cover only the source's.
        let n = 120usize;
        let mut edges: Vec<(u32, u32)> = chord_edges(100)
            .into_iter()
            .filter(|&(u, v)| u < 100 && v < 100)
            .collect();
        for v in 100..(n as u32) {
            edges.push((v, if v + 1 < n as u32 { v + 1 } else { 100 }));
        }
        let csr = CsrGraph::from_edges(n, &edges);
        let reference = csr.bfs_tree(0);
        let plan = ShardPlan::uniform(n, 5);
        let mut sink = SpillSink::create(default_scratch_dir(), plan).expect("sink");
        for &(u, v) in &edges {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = ShardStore::Disk(sink.finalize().expect("finalize"));
        let tree = ShardedBfsTree::build(&disk, 0, default_scratch_dir()).expect("build");
        assert_eq!(tree.order(), reference.order());
        assert_eq!(tree.reachable(), 100);
    }

    #[test]
    fn directed_sink_keeps_one_orientation() {
        let dir = default_scratch_dir();
        let mut sink =
            SpillSink::create_directed(&dir, ShardPlan::uniform(6, 2)).expect("create sink");
        sink.push(0, 4).expect("push");
        sink.push(4, 2).expect("push");
        let disk = sink.finalize().expect("finalize");
        assert_eq!(disk.entry_count(), 2);
        let mut scratch = ShardScratch::new();
        let v0 = disk.load(0, &mut scratch).expect("load");
        assert_eq!(v0.targets_of(0), &[4]);
        assert_eq!(v0.targets_of(2), &[] as &[u32]);
        let v1 = disk.load(1, &mut scratch).expect("load");
        assert_eq!(v1.targets_of(4), &[2]);
    }

    #[test]
    fn truncated_segment_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(40, 2)).expect("create sink");
        for &(u, v) in &ring_edges(40) {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = sink.finalize().expect("finalize");
        // Cut the payload short (keep the 16-byte header intact).
        let seg = disk.catalog.seg_path(0);
        let len = fs::metadata(&seg).expect("metadata").len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open")
            .set_len(len - 8)
            .expect("truncate");
        let mut scratch = ShardScratch::new();
        match disk.load(0, &mut scratch) {
            Err(ShardError::SegmentTruncated { shard: 0, path }) => {
                assert_eq!(path, seg);
            }
            other => panic!("expected SegmentTruncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_segment_header_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(40, 2)).expect("create sink");
        for &(u, v) in &ring_edges(40) {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = sink.finalize().expect("finalize");
        // Overwrite the row count in the header.
        let seg = disk.catalog.seg_path(1);
        let mut bytes = fs::read(&seg).expect("read");
        bytes[..8].copy_from_slice(&999u64.to_le_bytes());
        fs::write(&seg, &bytes).expect("write");
        let mut scratch = ShardScratch::new();
        match disk.load(1, &mut scratch) {
            Err(ShardError::SegmentCorrupt {
                shard: 1,
                found: 999,
                ..
            }) => {}
            other => panic!("expected SegmentCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn vanished_scratch_dir_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(20, 2)).expect("create sink");
        sink.push(0, 1).expect("push");
        let disk = sink.finalize().expect("finalize");
        fs::remove_dir_all(&dir).expect("remove scratch dir");
        let mut scratch = ShardScratch::new();
        match disk.load(0, &mut scratch) {
            Err(ShardError::SegmentIo {
                shard: 0,
                path,
                source,
            }) => {
                assert_eq!(source.kind(), io::ErrorKind::NotFound);
                assert!(path.ends_with("segment_0.bin"));
            }
            other => panic!("expected SegmentIo(NotFound), got {other:?}"),
        }
    }

    #[test]
    fn torn_spill_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(10, 1)).expect("create sink");
        sink.push(0, 1).expect("push");
        // Tear the bucket: append half a record.
        sink.writers[0].write_all(&[0u8; 4]).expect("tear");
        match sink.finalize().map(|_| ()) {
            Err(ShardError::TornSpill {
                shard: 0,
                path,
                trailing: 4,
            }) => {
                assert!(path.ends_with("spill_0.bin"));
            }
            other => panic!("expected TornSpill, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bucket_overflow_in_finalize_is_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(10, 2)).expect("create sink");
        sink.push(0, 1).expect("push");
        // Fake an overflowing bucket count: writing 2^32 real edges in
        // a unit test is not an option.
        sink.half_edges[0] = <u32 as CsrWidth>::MAX_INDEX + 1;
        match sink.finalize().map(|_| ()) {
            Err(ShardError::Graph(CsrError::AdjacencyOverflow { .. })) => {}
            other => panic!("expected AdjacencyOverflow, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    fn disk_store(n: u32, shards: usize) -> ShardStore {
        let dir = default_scratch_dir();
        let mut sink =
            SpillSink::create(&dir, ShardPlan::uniform(n as usize, shards)).expect("create sink");
        for &(u, v) in &chord_edges(n) {
            sink.push(u as u64, v as u64).expect("push");
        }
        ShardStore::Disk(sink.finalize().expect("finalize"))
    }

    #[test]
    fn prefetching_store_matches_direct_views() {
        let store = disk_store(120, 4);
        let mut direct = ShardScratch::new();
        // Announced in-order pass, an unannounced (mispredicted)
        // request, a re-announced pass, and a request after the
        // announcement ran dry — every path must serve the same bytes.
        let sequences: &[(&[usize], &[usize])] = &[
            (&[0, 1, 2, 3], &[0, 1, 2, 3]),
            (&[0, 1, 2, 3], &[0, 3, 1]),
            (&[2, 0], &[2, 0, 1, 3]),
            (&[], &[3, 0]),
        ];
        for enabled in [true, false] {
            let mut pf = PrefetchingStore::new(&store, enabled);
            assert_eq!(pf.is_pipelined(), enabled);
            for &(announce, requests) in sequences {
                pf.begin_pass(announce);
                for &s in requests {
                    let got = pf.view(s).expect("prefetch view");
                    let want = store.view(s, &mut direct).expect("direct view");
                    assert_eq!(got.start(), want.start());
                    assert_eq!(got.end(), want.end());
                    for v in want.start()..want.end() {
                        assert_eq!(got.targets_of(v), want.targets_of(v));
                    }
                }
            }
        }
    }

    #[test]
    fn prefetch_thread_surfaces_typed_error_without_hanging() {
        let store = disk_store(120, 3);
        let ShardStore::Disk(d) = &store else {
            unreachable!()
        };
        // Truncate segment 1 before announcing it, so the *background*
        // read is the one that fails.
        let seg = d.catalog.seg_path(1);
        let len = fs::metadata(&seg).expect("metadata").len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open")
            .set_len(len - 4)
            .expect("truncate");
        let mut pf = PrefetchingStore::new(&store, true);
        pf.begin_pass(&[0, 1, 2]);
        pf.view(0).expect("segment 0 intact");
        match pf.view(1) {
            Err(ShardError::SegmentTruncated { shard: 1, path }) => {
                assert_eq!(path, seg);
            }
            other => panic!("expected SegmentTruncated from worker, got {other:?}"),
        }
        // The pipeline stays usable and shuts down cleanly.
        pf.view(2).expect("segment 2 intact");
        drop(pf);
    }

    #[test]
    fn sparse_rows_match_full_views() {
        let n = 200u32;
        let store = disk_store(n, 4);
        let mut scratch = ShardScratch::new();
        let mut loader = SparseLoader::new(&store);
        for s in 0..4 {
            let full = store.view(s, &mut scratch).expect("full view");
            let (start, end) = store.plan().range(s);
            // Subsets with gaps both below and above the coalescing
            // threshold, plus singletons and the full row range.
            let all: Vec<u32> = (start..end).collect();
            let sparse_rows: Vec<u32> = (start..end).step_by(7).collect();
            let single = vec![start];
            for rows in [&all, &sparse_rows, &single] {
                let view = loader.load_rows(s, rows).expect("sparse load");
                for &v in rows {
                    assert_eq!(view.targets_of(v), full.targets_of(v), "row {v}");
                }
            }
            assert!(loader.load_rows(s, &[]).expect("empty").entry_count() == 0);
        }
    }

    #[test]
    fn pass_loader_picks_sparse_only_for_small_disk_requests() {
        let n = 10_000u32;
        let store = disk_store(n, 2);
        let mut loader = PassLoader::new(&store, true);
        assert!(loader.use_sparse(0, 3));
        assert!(!loader.use_sparse(0, 3_000));
        assert!(!loader.use_sparse(0, 0));
        loader.begin_pass(&[0, 1]);
        let full_entries = loader.view_full(0).expect("full").entry_count();
        assert!(full_entries > 0);
        let rows = [0u32, 17, 290];
        let sparse = loader.view_rows(0, &rows).expect("sparse");
        assert!(sparse.entry_count() > 0);

        let edges = chord_edges(64);
        let csr = CsrGraph::from_edges(64, &edges);
        let ram = ShardStore::Ram(ShardedCsr::split(&csr, ShardPlan::uniform(64, 2)));
        let ram_loader = PassLoader::new(&ram, true);
        assert!(!ram_loader.use_sparse(0, 1));
    }

    #[test]
    fn ram_store_views_match_disk_store_views() {
        let n = 80usize;
        let edges = ring_edges(n as u32);
        let csr = CsrGraph::from_edges(n, &edges);
        let plan = ShardPlan::uniform(n, 4);
        let ram = ShardStore::Ram(ShardedCsr::split(&csr, plan.clone()));
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, plan).expect("create sink");
        for &(u, v) in &edges {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = ShardStore::Disk(sink.finalize().expect("finalize"));
        let mut s1 = ShardScratch::new();
        let mut s2 = ShardScratch::new();
        for s in 0..4 {
            let a = ram.view(s, &mut s1).expect("ram view");
            let b = disk.view(s, &mut s2).expect("disk view");
            assert_eq!(a.start(), b.start());
            assert_eq!(a.end(), b.end());
            for v in a.start()..a.end() {
                assert_eq!(a.targets_of(v), b.targets_of(v));
            }
        }
    }
}
