//! Node-range sharding of the CSR substrate, in RAM and out of core.
//!
//! A [`ShardPlan`] cuts the node range `0..n` into contiguous shards.
//! Three consumers build on it:
//!
//! * [`ShardView`] — a borrowed window over one shard's CSR rows. The
//!   same view type serves slices of a monolithic in-RAM [`CsrGraph`]
//!   (offsets kept absolute, `base = offsets[start]`) and rebased
//!   segments streamed back from disk (`base = 0`), so the engine
//!   frontier passes are written once against it.
//! * [`ShardedCsr`] — an owned in-RAM split of a [`CsrGraph`]: each
//!   shard owns its rebased offsets/targets slice plus the cut-edge
//!   lists into every other shard (edges whose source is in the shard
//!   and whose target is not, bucketed by destination shard).
//! * [`SpillSink`] / [`DiskShards`] — the out-of-core path. Generators
//!   stream `(u64, u64)` edge runs into per-shard spill files under a
//!   scratch directory (each undirected edge written once per endpoint
//!   shard, so cross-shard edges appear in both buckets — the on-disk
//!   cut-edge lists); `finalize` counting-sorts each bucket into a
//!   rebased CSR segment file, shard by shard in ascending index order,
//!   and [`DiskShards::load`] reads one segment at a time into a
//!   reusable [`ShardScratch`] so peak RSS stays near one shard.
//!
//! Sharding never changes outcomes: the engines' coin tapes address
//! coins by `(site, lane)` — pure functions of the trial seed — so the
//! order in which shards replay a round's frontier cannot change any
//! draw. See DESIGN.md for the full argument.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::csr::{CsrError, CsrGraph, CsrWidth};

/// A failure while building or reading sharded adjacency: either the
/// edge stream was invalid (typed [`CsrError`]) or the spill/segment IO
/// failed.
#[derive(Debug)]
pub enum ShardError {
    /// The edge stream violated the CSR invariants.
    Graph(CsrError),
    /// Spill or segment file IO failed.
    Io(io::Error),
    /// A segment file's header disagreed with the plan or with the
    /// metadata recorded at finalize time — the file is truncated,
    /// overwritten, or from another run.
    SegmentCorrupt {
        /// Shard whose segment failed validation.
        shard: usize,
        /// Which header field disagreed.
        what: &'static str,
        /// The value the plan/metadata requires.
        expected: u64,
        /// The value found in the file.
        found: u64,
    },
    /// A segment file ended before its header-declared payload.
    SegmentTruncated {
        /// Shard whose segment ended early.
        shard: usize,
    },
    /// A spill bucket's byte length was not a whole number of 8-byte
    /// edge records — the spill was torn mid-write.
    TornSpill {
        /// Residual bytes past the last whole record.
        trailing: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Graph(e) => write!(f, "{e}"),
            ShardError::Io(e) => write!(f, "shard spill IO: {e}"),
            ShardError::SegmentCorrupt {
                shard,
                what,
                expected,
                found,
            } => write!(
                f,
                "segment {shard}: {what} mismatch (expected {expected}, found {found})"
            ),
            ShardError::SegmentTruncated { shard } => {
                write!(f, "segment {shard}: file ended before declared payload")
            }
            ShardError::TornSpill { trailing } => {
                write!(f, "spill bucket torn: {trailing} trailing bytes")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<CsrError> for ShardError {
    fn from(e: CsrError) -> Self {
        ShardError::Graph(e)
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// A contiguous partition of the node range `0..n` into shards.
///
/// Shard `s` owns nodes `bounds[s]..bounds[s + 1]`; ranges are balanced
/// to within one node. The plan is tiny (one `u32` per shard) and is
/// shared by every sharded structure and pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardPlan {
    bounds: Vec<u32>,
}

impl ShardPlan {
    /// Cuts `0..n` into `shards` balanced contiguous ranges. `shards`
    /// is clamped to `1..=n`, so every shard is non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the usable `u32` range.
    #[must_use]
    pub fn uniform(n: usize, shards: usize) -> Self {
        assert!(n > 0, "graph must have at least one node");
        assert!(
            n as u64 <= <u32 as CsrWidth>::MAX_INDEX,
            "node count exceeds u32"
        );
        let k = shards.clamp(1, n);
        let mut bounds = Vec::with_capacity(k + 1);
        for s in 0..=k {
            bounds.push((s as u64 * n as u64 / k as u64) as u32);
        }
        ShardPlan { bounds }
    }

    /// The smallest uniform plan whose largest shard fits
    /// `budget_bytes` of resident CSR data (`4` bytes per adjacency
    /// entry plus `4` per row offset), given an estimate of the total
    /// directed adjacency volume. Capped at 1024 shards.
    #[must_use]
    pub fn for_budget(n: usize, adjacency_entries: u64, budget_bytes: u64) -> Self {
        let mut k = 1usize;
        while k < 1024 {
            let rows = (n as u64).div_ceil(k as u64);
            let entries = adjacency_entries.div_ceil(k as u64);
            if entries * 4 + (rows + 1) * 4 <= budget_bytes {
                break;
            }
            k *= 2;
        }
        ShardPlan::uniform(n, k)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of nodes `n` covered by the plan.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.bounds[self.bounds.len() - 1] as usize
    }

    /// The `[start, end)` node range of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shard_count()`.
    #[must_use]
    pub fn range(&self, s: usize) -> (u32, u32) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// The shard owning node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn shard_of(&self, v: u32) -> usize {
        assert!((v as usize) < self.node_count(), "node out of range");
        self.bounds.partition_point(|&b| b <= v) - 1
    }

    /// The shard boundaries (`shard_count() + 1` entries, first `0`,
    /// last `n`).
    #[must_use]
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }
}

/// A borrowed window over one shard's CSR rows.
///
/// `offsets` has one entry per row plus one; entry values are absolute
/// positions minus `base`, so the same accessor body serves a slice of
/// a monolithic graph (`base = offsets[start]`, targets sliced to the
/// shard) and a rebased disk segment (`base = 0`). Target ids remain
/// **global**: a row may name nodes in other shards (the cut edges).
#[derive(Clone, Copy, Debug)]
pub struct ShardView<'a> {
    start: u32,
    end: u32,
    offsets: &'a [u32],
    base: u32,
    targets: &'a [u32],
}

impl<'a> ShardView<'a> {
    /// A view of rows `start..end` from explicit parts. `offsets` must
    /// hold `end - start + 1` entries; `targets` must span exactly the
    /// shard's adjacency (`offsets[last] - base` entries).
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent.
    #[must_use]
    pub fn from_parts(
        start: u32,
        end: u32,
        offsets: &'a [u32],
        base: u32,
        targets: &'a [u32],
    ) -> Self {
        assert_eq!(offsets.len(), (end - start) as usize + 1, "offsets length");
        assert_eq!(offsets[0], base, "first offset must equal the base");
        assert_eq!(
            (offsets[offsets.len() - 1] - base) as usize,
            targets.len(),
            "targets length"
        );
        ShardView {
            start,
            end,
            offsets,
            base,
            targets,
        }
    }

    /// A view of rows `start..end` of a monolithic CSR array pair — the
    /// in-RAM sharding path, no copies.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn over(offsets: &'a [u32], targets: &'a [u32], start: u32, end: u32) -> Self {
        let base = offsets[start as usize];
        ShardView::from_parts(
            start,
            end,
            &offsets[start as usize..=end as usize],
            base,
            &targets[base as usize..offsets[end as usize] as usize],
        )
    }

    /// First node id in the shard (inclusive).
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last node id in the shard.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Number of rows in the shard.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the shard holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether node `v` belongs to this shard.
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        self.start <= v && v < self.end
    }

    /// The sorted neighbor list of node `v` (global ids — may leave the
    /// shard).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the shard.
    #[must_use]
    pub fn targets_of(&self, v: u32) -> &'a [u32] {
        let local = (v - self.start) as usize;
        let lo = (self.offsets[local] - self.base) as usize;
        let hi = (self.offsets[local + 1] - self.base) as usize;
        &self.targets[lo..hi]
    }

    /// The degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the shard.
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        self.targets_of(v).len()
    }

    /// Total adjacency entries in the shard.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }
}

/// One owned shard of a [`ShardedCsr`]: rebased CSR rows plus the
/// cut-edge lists into every other shard.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Segment {
    /// Rebased row boundaries (`rows + 1` entries, first `0`).
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists (global ids).
    targets: Vec<u32>,
    /// `shard_count + 1` boundaries into `cut_edges`, bucketing by
    /// destination shard (own-shard bucket is empty).
    cut_offsets: Vec<usize>,
    /// `(source, target)` pairs with the source in this shard and the
    /// target elsewhere, grouped by the target's shard.
    cut_edges: Vec<(u32, u32)>,
}

/// An owned in-RAM node-range split of a [`CsrGraph`]: each shard owns
/// its rebased offsets/targets slice plus the cut-edge lists into the
/// other shards. Views are handed out as [`ShardView`]s, identical in
/// shape to what the out-of-core path streams from disk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardedCsr {
    plan: ShardPlan,
    segments: Vec<Segment>,
    edge_count: usize,
}

impl ShardedCsr {
    /// Splits a monolithic CSR graph along `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count.
    #[must_use]
    pub fn split(csr: &CsrGraph, plan: ShardPlan) -> Self {
        assert_eq!(plan.node_count(), csr.node_count(), "plan/graph mismatch");
        let k = plan.shard_count();
        let mut segments = Vec::with_capacity(k);
        for s in 0..k {
            let (start, end) = plan.range(s);
            let base = csr.offsets()[start as usize];
            let offsets: Vec<u32> = csr.offsets()[start as usize..=end as usize]
                .iter()
                .map(|&o| o - base)
                .collect();
            let targets: Vec<u32> =
                csr.targets()[base as usize..csr.offsets()[end as usize] as usize].to_vec();
            // Bucket the out-going cut edges by destination shard.
            let mut counts = vec![0usize; k];
            for v in start..end {
                for &t in csr.neighbors_of(v as usize) {
                    let d = plan.shard_of(t);
                    if d != s {
                        counts[d] += 1;
                    }
                }
            }
            let mut cut_offsets = Vec::with_capacity(k + 1);
            let mut acc = 0usize;
            cut_offsets.push(0);
            for &c in &counts {
                acc += c;
                cut_offsets.push(acc);
            }
            let mut cut_edges = vec![(0u32, 0u32); acc];
            let mut cursor = cut_offsets.clone();
            for v in start..end {
                for &t in csr.neighbors_of(v as usize) {
                    let d = plan.shard_of(t);
                    if d != s {
                        cut_edges[cursor[d]] = (v, t);
                        cursor[d] += 1;
                    }
                }
            }
            segments.push(Segment {
                offsets,
                targets,
                cut_offsets,
                cut_edges,
            });
        }
        ShardedCsr {
            plan,
            segments,
            edge_count: csr.edge_count(),
        }
    }

    /// The shard plan this split follows.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of nodes across all shards.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.plan.node_count()
    }

    /// Number of undirected edges across all shards.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// A borrowed view of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shard_count()`.
    #[must_use]
    pub fn view(&self, s: usize) -> ShardView<'_> {
        let (start, end) = self.plan.range(s);
        let seg = &self.segments[s];
        ShardView::from_parts(start, end, &seg.offsets, 0, &seg.targets)
    }

    /// The cut edges leaving shard `s` for shard `dest`: `(source,
    /// target)` pairs, source in `s`, target in `dest`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn cut_edges(&self, s: usize, dest: usize) -> &[(u32, u32)] {
        let seg = &self.segments[s];
        &seg.cut_edges[seg.cut_offsets[dest]..seg.cut_offsets[dest + 1]]
    }

    /// Total cut edges leaving shard `s` (both directions of an
    /// undirected cross-shard edge count once from each side).
    #[must_use]
    pub fn cut_degree(&self, s: usize) -> usize {
        self.segments[s].cut_edges.len()
    }
}

/// Reusable buffers for streaming one disk segment at a time: one
/// shard's rebased offsets and targets plus a bounded byte buffer for
/// IO decoding. Reusing the scratch across shard loads keeps peak RSS
/// at roughly the largest shard.
#[derive(Default)]
pub struct ShardScratch {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    buf: Vec<u8>,
}

impl ShardScratch {
    /// An empty scratch; buffers grow to the largest shard loaded.
    #[must_use]
    pub fn new() -> Self {
        ShardScratch::default()
    }
}

/// Bounded decode buffer: stream `words` little-endian `u32`s from
/// `reader` into `out` without buffering the whole payload.
fn read_words(
    reader: &mut impl Read,
    out: &mut Vec<u32>,
    words: usize,
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    const CHUNK: usize = 1 << 20;
    out.clear();
    out.reserve(words);
    let mut left = words;
    while left > 0 {
        let take = left.min(CHUNK / 4);
        buf.resize(take * 4, 0);
        reader.read_exact(buf)?;
        out.extend(
            buf.chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        left -= take;
    }
    Ok(())
}

fn read_u64(reader: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// A consumer of streamed undirected edges — the seam between the
/// random-graph generators and whatever holds the edges: an in-RAM
/// `(u32, u32)` list for the buffered `_csr` path, or a [`SpillSink`]
/// for the out-of-core path. Generators emit each unordered pair
/// exactly once (duplicates from overlaying families are allowed and
/// merge downstream).
pub trait EdgeSink {
    /// Consumes one undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if the edge is invalid for the sink or
    /// spilling it fails; in-RAM sinks are infallible.
    fn edge(&mut self, u: u64, v: u64) -> Result<(), ShardError>;
}

impl EdgeSink for SpillSink {
    fn edge(&mut self, u: u64, v: u64) -> Result<(), ShardError> {
        self.push(u, v)
    }
}

/// Monotonic suffix so concurrent sinks in one process never share a
/// scratch directory.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique scratch directory under `out/` for spill and
/// segment files (not created yet). Spill artifacts are transient: the
/// whole `out/` tree is gitignored.
#[must_use]
pub fn default_scratch_dir() -> PathBuf {
    let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    PathBuf::from(format!(
        "out/shard-scratch/pid{}-{}",
        std::process::id(),
        seq
    ))
}

/// The streaming edge collector of the out-of-core path.
///
/// `push(u, v)` validates each endpoint against the `u32` word (typed
/// [`CsrError`]s — never a silent truncation) and appends the directed
/// half-edge to the spill bucket of each endpoint's shard, so a
/// cross-shard edge lands in both buckets: the buckets *are* the
/// cut-edge lists of the on-disk format. `finalize` then counting-sorts
/// each bucket into a rebased CSR segment file, in ascending shard
/// order, holding only one shard's adjacency in RAM at a time.
pub struct SpillSink {
    plan: ShardPlan,
    dir: PathBuf,
    writers: Vec<BufWriter<File>>,
    half_edges: Vec<u64>,
    /// Directed sinks record each `(u, v)` push once, in `u`'s bucket
    /// only — the tree-segment layout, where row `u` lists `u`'s
    /// children.
    directed: bool,
}

impl SpillSink {
    /// Opens one spill bucket per shard under `dir` (created if
    /// missing).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Io`] if the directory or bucket files
    /// cannot be created.
    pub fn create(dir: impl AsRef<Path>, plan: ShardPlan) -> Result<Self, ShardError> {
        Self::create_inner(dir, plan, false)
    }

    /// Opens a *directed* sink: each pushed `(u, v)` lands only in
    /// `u`'s shard bucket, so the finalized segments form a directed
    /// CSR (row `u` = the targets pushed from `u`, sorted, deduped) —
    /// the on-disk layout of a BFS tree's child lists.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Io`] if the directory or bucket files
    /// cannot be created.
    pub fn create_directed(dir: impl AsRef<Path>, plan: ShardPlan) -> Result<Self, ShardError> {
        Self::create_inner(dir, plan, true)
    }

    fn create_inner(
        dir: impl AsRef<Path>,
        plan: ShardPlan,
        directed: bool,
    ) -> Result<Self, ShardError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let k = plan.shard_count();
        let mut writers = Vec::with_capacity(k);
        for s in 0..k {
            let file = File::create(dir.join(format!("spill_{s}.bin")))?;
            writers.push(BufWriter::new(file));
        }
        Ok(SpillSink {
            plan,
            dir,
            writers,
            half_edges: vec![0; k],
            directed,
        })
    }

    /// The shard plan the sink spills along.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Streams one undirected edge into the spill buckets.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CsrError`] for endpoints past the `u32` word,
    /// out-of-range endpoints, or self-loops; [`ShardError::Io`] if a
    /// bucket write fails.
    pub fn push(&mut self, u: u64, v: u64) -> Result<(), ShardError> {
        let n = self.plan.node_count() as u64;
        for e in [u, v] {
            if e > <u32 as CsrWidth>::MAX_INDEX {
                return Err(CsrError::EndpointOverflow {
                    endpoint: e,
                    max: <u32 as CsrWidth>::MAX_INDEX,
                }
                .into());
            }
            if e >= n {
                return Err(CsrError::OutOfRange { endpoint: e, n }.into());
            }
        }
        if u == v {
            return Err(CsrError::SelfLoop { node: u }.into());
        }
        let (u, v) = (u as u32, v as u32);
        let orientations: &[(u32, u32)] = if self.directed {
            &[(u, v)]
        } else {
            &[(u, v), (v, u)]
        };
        for &(src, dst) in orientations {
            let s = self.plan.shard_of(src);
            let mut rec = [0u8; 8];
            rec[..4].copy_from_slice(&src.to_le_bytes());
            rec[4..].copy_from_slice(&dst.to_le_bytes());
            self.writers[s].write_all(&rec)?;
            self.half_edges[s] += 1;
        }
        Ok(())
    }

    /// Counting-sorts every spill bucket into its rebased CSR segment
    /// file (ascending shard order — the fixed merge order the readers
    /// rely on), deleting each bucket once consumed. Duplicate pushed
    /// edges merge, exactly like [`CsrGraph::from_edges`].
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] on IO failure or if a shard's adjacency
    /// overflows the `u32` offset range.
    pub fn finalize(self) -> Result<DiskShards, ShardError> {
        let SpillSink {
            plan,
            dir,
            writers,
            half_edges,
            directed: _,
        } = self;
        for w in writers {
            w.into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?
                .sync_all()?;
        }
        let k = plan.shard_count();
        let mut metas = Vec::with_capacity(k);
        let mut scratch = ShardScratch::new();
        let mut total_entries = 0u64;
        for (s, &shard_half_edges) in half_edges.iter().enumerate().take(k) {
            let (start, end) = plan.range(s);
            let rows = (end - start) as usize;
            let spill = dir.join(format!("spill_{s}.bin"));
            if shard_half_edges > <u32 as CsrWidth>::MAX_INDEX {
                return Err(CsrError::AdjacencyOverflow {
                    max: <u32 as CsrWidth>::MAX_INDEX,
                }
                .into());
            }
            // Pass 1: per-row degree from the bucket stream.
            let mut degree = vec![0u32; rows];
            stream_records(&spill, &mut scratch.buf, |src, _| {
                degree[(src - start) as usize] += 1;
            })?;
            let mut offsets = Vec::with_capacity(rows + 1);
            let mut acc = 0u32;
            offsets.push(0u32);
            for &d in &degree {
                acc += d;
                offsets.push(acc);
            }
            drop(degree);
            // Pass 2: scatter targets, then sort + dedup per row.
            let mut targets = vec![0u32; acc as usize];
            let mut cursor = offsets.clone();
            stream_records(&spill, &mut scratch.buf, |src, dst| {
                let c = &mut cursor[(src - start) as usize];
                targets[*c as usize] = dst;
                *c += 1;
            })?;
            drop(cursor);
            let mut write = 0usize;
            let mut compact = Vec::with_capacity(rows + 1);
            compact.push(0u32);
            for r in 0..rows {
                let (lo, hi) = (offsets[r] as usize, offsets[r + 1] as usize);
                targets[lo..hi].sort_unstable();
                let mut prev = None;
                for i in lo..hi {
                    let t = targets[i];
                    if prev != Some(t) {
                        targets[write] = t;
                        write += 1;
                        prev = Some(t);
                    }
                }
                compact.push(write as u32);
            }
            targets.truncate(write);
            total_entries += write as u64;
            // Segment file: [rows u64][entries u64][offsets][targets].
            let seg_path = dir.join(format!("segment_{s}.bin"));
            let mut out = BufWriter::new(File::create(&seg_path)?);
            out.write_all(&(rows as u64).to_le_bytes())?;
            out.write_all(&(write as u64).to_le_bytes())?;
            for &o in &compact {
                out.write_all(&o.to_le_bytes())?;
            }
            for &t in &targets {
                out.write_all(&t.to_le_bytes())?;
            }
            out.into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?
                .sync_all()?;
            metas.push(SegmentMeta {
                rows: rows as u64,
                entries: write as u64,
            });
            fs::remove_file(&spill)?;
        }
        Ok(DiskShards {
            plan,
            dir,
            metas,
            entry_count: total_entries,
        })
    }
}

/// Streams the 8-byte `(src, dst)` records of one spill bucket through
/// `f`, using `buf` as the bounded decode buffer.
fn stream_records(
    path: &Path,
    buf: &mut Vec<u8>,
    mut f: impl FnMut(u32, u32),
) -> Result<(), ShardError> {
    const CHUNK: usize = 1 << 20;
    let mut file = File::open(path)?;
    buf.resize(CHUNK, 0);
    loop {
        let mut filled = 0usize;
        while filled < CHUNK {
            let got = file.read(&mut buf[filled..])?;
            if got == 0 {
                break;
            }
            filled += got;
        }
        if filled == 0 {
            return Ok(());
        }
        if !filled.is_multiple_of(8) {
            return Err(ShardError::TornSpill {
                trailing: filled % 8,
            });
        }
        for rec in buf[..filled].chunks_exact(8) {
            let src = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
            let dst = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
            f(src, dst);
        }
        if filled < CHUNK {
            return Ok(());
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct SegmentMeta {
    rows: u64,
    entries: u64,
}

/// The finalized out-of-core CSR: one rebased segment file per shard
/// under the scratch directory. Segments are loaded one at a time into
/// a caller-owned [`ShardScratch`]; the whole directory is removed on
/// drop.
pub struct DiskShards {
    plan: ShardPlan,
    dir: PathBuf,
    metas: Vec<SegmentMeta>,
    entry_count: u64,
}

impl DiskShards {
    /// The shard plan the segments follow.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of nodes across all shards.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.plan.node_count()
    }

    /// Number of undirected edges after dedup. Meaningful only for
    /// stores finalized from an undirected sink ([`SpillSink::create`]);
    /// directed tree stores count each child edge once — use
    /// [`entry_count`](Self::entry_count).
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.entry_count / 2
    }

    /// Total adjacency entries across all segments after dedup.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Adjacency entries of the largest shard — the resident-set
    /// high-water contribution of shard streaming.
    #[must_use]
    pub fn max_shard_entries(&self) -> u64 {
        self.metas.iter().map(|m| m.entries).max().unwrap_or(0)
    }

    /// Reads segment `s` into `scratch` and returns its view.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Io`] if the segment cannot be opened or
    /// read (e.g. the scratch directory vanished mid-trial),
    /// [`ShardError::SegmentCorrupt`] if the header disagrees with the
    /// plan or the finalize-time metadata, and
    /// [`ShardError::SegmentTruncated`] if the file ends before its
    /// declared payload.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shard_count()`.
    pub fn load<'a>(
        &self,
        s: usize,
        scratch: &'a mut ShardScratch,
    ) -> Result<ShardView<'a>, ShardError> {
        let (start, end) = self.plan.range(s);
        let truncated = |e: ShardError| match e {
            ShardError::Io(ref io) if io.kind() == io::ErrorKind::UnexpectedEof => {
                ShardError::SegmentTruncated { shard: s }
            }
            other => other,
        };
        let mut file = File::open(self.dir.join(format!("segment_{s}.bin")))?;
        let rows = read_u64(&mut file).map_err(|e| truncated(e.into()))?;
        let entries = read_u64(&mut file).map_err(|e| truncated(e.into()))?;
        for (what, expected, found) in [
            ("plan rows", (end - start) as u64, rows),
            ("meta rows", self.metas[s].rows, rows),
            ("meta entries", self.metas[s].entries, entries),
        ] {
            if found != expected {
                return Err(ShardError::SegmentCorrupt {
                    shard: s,
                    what,
                    expected,
                    found,
                });
            }
        }
        read_words(
            &mut file,
            &mut scratch.offsets,
            rows as usize + 1,
            &mut scratch.buf,
        )
        .map_err(|e| truncated(e.into()))?;
        read_words(
            &mut file,
            &mut scratch.targets,
            entries as usize,
            &mut scratch.buf,
        )
        .map_err(|e| truncated(e.into()))?;
        Ok(ShardView::from_parts(
            start,
            end,
            &scratch.offsets,
            0,
            &scratch.targets,
        ))
    }
}

impl Drop for DiskShards {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Where sharded adjacency lives: split in RAM or streamed from disk.
/// One accessor serves both, so the out-of-core flood runner is written
/// once.
pub enum ShardStore {
    /// All segments resident (mid-scale and equivalence testing).
    Ram(ShardedCsr),
    /// Segments streamed one at a time (the 10⁸ tier).
    Disk(DiskShards),
}

impl ShardStore {
    /// The shard plan of the underlying store.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        match self {
            ShardStore::Ram(s) => s.plan(),
            ShardStore::Disk(d) => d.plan(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.plan().node_count()
    }

    /// A view of shard `s`, loading through `scratch` when the store is
    /// on disk (the RAM store ignores the scratch).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Io`] if a disk segment cannot be read.
    pub fn view<'a>(
        &'a self,
        s: usize,
        scratch: &'a mut ShardScratch,
    ) -> Result<ShardView<'a>, ShardError> {
        match self {
            ShardStore::Ram(store) => Ok(store.view(s)),
            ShardStore::Disk(d) => d.load(s, scratch),
        }
    }
}

/// The BFS spanning structure of one source component, built
/// out-of-core from a sharded adjacency store: the level-order
/// enumeration (in RAM, `4` bytes per reachable node) plus the child
/// lists as directed [`DiskShards`] segments — the inputs the fast
/// Simple kernel needs, at `n = 10⁸` scale.
///
/// The builder reproduces [`CsrGraph::bfs_tree`] **exactly**:
///
/// * In FIFO BFS every discoverer of a level-`L + 1` node is a level-`L`
///   node, and the recorded parent is the *first* FIFO discoverer —
///   equivalently, the level-`L` neighbor of minimum FIFO rank. The
///   level-synchronous sharded sweep keeps per-node FIFO ranks and
///   resolves each discovered node's parent to the minimum-rank
///   discoverer across all shard passes, which is order-independent.
/// * The FIFO order of level `L + 1` is "nodes grouped by their
///   parent's FIFO rank, ascending id within a group" (CSR rows are
///   sorted), so ranks for the next level are assigned by sorting the
///   discovered set by `(rank(parent), id)`.
/// * The final enumeration sorts each level by id, and the per-parent
///   child lists come out ascending — exactly what
///   [`SpillSink::finalize`]'s per-row sort produces from the directed
///   `(parent, child)` spill.
///
/// `crates/graph` pins the equivalence against [`CsrGraph::bfs_tree`]
/// on random graphs for both store backends.
pub struct ShardedBfsTree {
    order: Vec<u32>,
    children: DiskShards,
    reachable: usize,
}

impl ShardedBfsTree {
    /// Runs the sharded BFS over `store`'s adjacency from `source` and
    /// finalizes the child lists into directed segments under `dir`.
    ///
    /// Peak RSS during the build is two `u32` words per node (parent
    /// and FIFO rank, dropped on return) plus the order, one shard's
    /// adjacency, and the current level's frontier.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if an adjacency segment cannot be read or
    /// the child spill fails.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn build(
        store: &ShardStore,
        source: u32,
        dir: impl AsRef<Path>,
    ) -> Result<Self, ShardError> {
        let plan = store.plan().clone();
        let n = plan.node_count();
        assert!((source as usize) < n, "source out of range");
        let k = plan.shard_count();
        const UNSET: u32 = u32::MAX;

        let mut sink = SpillSink::create_directed(dir, plan.clone())?;
        let mut scratch = ShardScratch::new();
        let mut parent = vec![UNSET; n];
        let mut rank = vec![UNSET; n];
        parent[source as usize] = source;
        rank[source as usize] = 0;
        let mut next_rank = 1u32;
        let mut order: Vec<u32> = vec![source];

        let mut frontier: Vec<Vec<u32>> = vec![Vec::new(); k];
        frontier[plan.shard_of(source)].push(source);
        let mut discovered: Vec<u32> = Vec::new();

        while frontier.iter().any(|l| !l.is_empty()) {
            discovered.clear();
            for (s, list) in frontier.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let view = store.view(s, &mut scratch)?;
                for &u in list {
                    for &v in view.targets_of(u) {
                        let vi = v as usize;
                        if rank[vi] != UNSET {
                            continue; // settled at this level or above
                        }
                        if parent[vi] == UNSET {
                            parent[vi] = u;
                            discovered.push(v);
                        } else if rank[parent[vi] as usize] > rank[u as usize] {
                            parent[vi] = u;
                        }
                    }
                }
            }
            for list in &mut frontier {
                list.clear();
            }
            if discovered.is_empty() {
                break;
            }
            // FIFO order of the next level: discoverers ascend by rank,
            // ids ascend within one discoverer's sorted adjacency row.
            discovered.sort_unstable_by_key(|&v| (rank[parent[v as usize] as usize], v));
            for &v in &discovered {
                rank[v as usize] = next_rank;
                next_rank += 1;
                sink.push(u64::from(parent[v as usize]), u64::from(v))?;
                frontier[plan.shard_of(v)].push(v);
            }
            let level_start = order.len();
            order.extend_from_slice(&discovered);
            order[level_start..].sort_unstable();
        }

        drop(parent);
        drop(rank);
        let children = sink.finalize()?;
        let reachable = order.len();
        Ok(ShardedBfsTree {
            order,
            children,
            reachable,
        })
    }

    /// The source component in nondecreasing-level order (ties by node
    /// id) — equal to [`CsrTree::order`](crate::CsrTree::order) of the
    /// in-RAM tree.
    #[must_use]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of nodes reachable from the source.
    #[must_use]
    pub fn reachable(&self) -> usize {
        self.reachable
    }

    /// The directed child-list segments.
    #[must_use]
    pub fn children(&self) -> &DiskShards {
        &self.children
    }

    /// Consumes the tree into its order and child segments.
    #[must_use]
    pub fn into_parts(self) -> (Vec<u32>, DiskShards) {
        (self.order, self.children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_edges(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|v| (v, (v + 1) % n)).collect()
    }

    #[test]
    fn uniform_plan_covers_and_balances() {
        for (n, k) in [(10, 3), (7, 7), (1, 4), (100, 1), (31, 8)] {
            let plan = ShardPlan::uniform(n, k);
            assert_eq!(plan.node_count(), n);
            assert_eq!(plan.shard_count(), k.min(n));
            let mut seen = 0usize;
            for s in 0..plan.shard_count() {
                let (start, end) = plan.range(s);
                assert!(start < end, "empty shard {s} for n={n} k={k}");
                for v in start..end {
                    assert_eq!(plan.shard_of(v), s);
                    seen += 1;
                }
            }
            assert_eq!(seen, n);
        }
    }

    #[test]
    fn budget_plan_shrinks_the_largest_shard() {
        let plan = ShardPlan::for_budget(1000, 8000, 4 * 1200);
        assert!(plan.shard_count() > 1);
        let one = ShardPlan::for_budget(1000, 8000, u64::MAX);
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn split_views_reproduce_the_monolith() {
        let n = 100u32;
        let csr = CsrGraph::from_edges(n as usize, &ring_edges(n));
        for k in [1, 2, 3, 7] {
            let sharded = ShardedCsr::split(&csr, ShardPlan::uniform(n as usize, k));
            assert_eq!(sharded.edge_count(), csr.edge_count());
            for s in 0..sharded.plan().shard_count() {
                let view = sharded.view(s);
                for v in view.start()..view.end() {
                    assert!(view.contains(v));
                    assert_eq!(view.targets_of(v), csr.neighbors_of(v as usize));
                    assert_eq!(view.degree(v), csr.degree(v as usize));
                }
            }
        }
    }

    #[test]
    fn over_and_split_views_agree() {
        let n = 64u32;
        let csr = CsrGraph::from_edges(n as usize, &ring_edges(n));
        let plan = ShardPlan::uniform(n as usize, 5);
        let sharded = ShardedCsr::split(&csr, plan.clone());
        for s in 0..plan.shard_count() {
            let (start, end) = plan.range(s);
            let direct = ShardView::over(csr.offsets(), csr.targets(), start, end);
            let owned = sharded.view(s);
            assert_eq!(direct.entry_count(), owned.entry_count());
            for v in start..end {
                assert_eq!(direct.targets_of(v), owned.targets_of(v));
            }
        }
    }

    #[test]
    fn cut_edges_are_exactly_the_cross_shard_adjacency() {
        let n = 60u32;
        let csr = CsrGraph::from_edges(n as usize, &ring_edges(n));
        let plan = ShardPlan::uniform(n as usize, 4);
        let sharded = ShardedCsr::split(&csr, plan.clone());
        let mut listed = 0usize;
        for s in 0..4 {
            for d in 0..4 {
                for &(u, v) in sharded.cut_edges(s, d) {
                    assert_eq!(plan.shard_of(u), s);
                    assert_eq!(plan.shard_of(v), d);
                    assert_ne!(s, d, "own-shard cut bucket must be empty");
                    assert!(csr.neighbors_of(u as usize).contains(&v));
                    listed += 1;
                }
            }
            assert_eq!(
                sharded.cut_degree(s),
                (0..4).map(|d| sharded.cut_edges(s, d).len()).sum::<usize>()
            );
        }
        let expect: usize = (0..n)
            .map(|v| {
                csr.neighbors_of(v as usize)
                    .iter()
                    .filter(|&&t| plan.shard_of(t) != plan.shard_of(v))
                    .count()
            })
            .sum();
        assert_eq!(listed, expect);
    }

    #[test]
    fn spill_pipeline_matches_from_edges() {
        let n = 120usize;
        // Ring plus chords, with duplicates and both orientations.
        let mut edges: Vec<(u32, u32)> = ring_edges(n as u32);
        for v in 0..(n as u32) / 2 {
            edges.push((v, v + (n as u32) / 2));
            edges.push((v + (n as u32) / 2, v));
        }
        let reference = CsrGraph::from_edges(n, &edges);
        let dir = default_scratch_dir();
        let plan = ShardPlan::uniform(n, 3);
        let mut sink = SpillSink::create(&dir, plan).expect("create sink");
        for &(u, v) in &edges {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = sink.finalize().expect("finalize");
        assert_eq!(disk.node_count(), n);
        assert_eq!(disk.edge_count() as usize, reference.edge_count());
        assert!(disk.max_shard_entries() > 0);
        let mut scratch = ShardScratch::new();
        for s in 0..disk.plan().shard_count() {
            let view = disk.load(s, &mut scratch).expect("load");
            for v in view.start()..view.end() {
                assert_eq!(view.targets_of(v), reference.neighbors_of(v as usize));
            }
        }
        let kept = disk.dir.clone();
        drop(disk);
        assert!(!kept.exists(), "scratch dir must be removed on drop");
    }

    #[test]
    fn spill_sink_rejects_bad_edges_with_typed_errors() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(10, 2)).expect("create sink");
        match sink.push(0, 1u64 << 40) {
            Err(ShardError::Graph(CsrError::EndpointOverflow { endpoint, .. })) => {
                assert_eq!(endpoint, 1u64 << 40);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
        assert!(matches!(
            sink.push(0, 10),
            Err(ShardError::Graph(CsrError::OutOfRange { .. }))
        ));
        assert!(matches!(
            sink.push(3, 3),
            Err(ShardError::Graph(CsrError::SelfLoop { node: 3 }))
        ));
        sink.push(0, 1).expect("valid edge");
        let disk = sink.finalize().expect("finalize");
        let mut scratch = ShardScratch::new();
        let store = ShardStore::Disk(disk);
        let view = store.view(0, &mut scratch).expect("view");
        assert_eq!(view.targets_of(0), &[1]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A deterministic irregular graph: ring plus long-range chords,
    /// giving multi-parent discovery races at every level.
    fn chord_edges(n: u32) -> Vec<(u32, u32)> {
        let mut edges = ring_edges(n);
        for v in 0..n {
            let w = (v * v + 3 * v + 7) % n;
            if w != v {
                edges.push((v, w));
            }
        }
        edges
    }

    #[test]
    fn sharded_bfs_tree_matches_in_ram_bfs_tree() {
        let n = 150usize;
        let edges = chord_edges(n as u32);
        let csr = CsrGraph::from_edges(n, &edges);
        let reference = csr.bfs_tree(0);
        let (ref_offsets, ref_children) = reference.clone().into_children_csr();
        for k in [1usize, 2, 3, 7] {
            let plan = ShardPlan::uniform(n, k);
            let ram = ShardStore::Ram(ShardedCsr::split(&csr, plan.clone()));
            let tree = ShardedBfsTree::build(&ram, 0, default_scratch_dir()).expect("build");
            assert_eq!(tree.order(), reference.order(), "order diverged at k={k}");
            assert_eq!(tree.reachable(), reference.order().len());
            let mut scratch = ShardScratch::new();
            for s in 0..plan.shard_count() {
                let view = tree.children().load(s, &mut scratch).expect("load");
                for v in view.start()..view.end() {
                    let lo = ref_offsets[v as usize] as usize;
                    let hi = ref_offsets[v as usize + 1] as usize;
                    assert_eq!(
                        view.targets_of(v),
                        &ref_children[lo..hi],
                        "children of {v} diverged at k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_bfs_tree_from_disk_adjacency_and_disconnected_source() {
        // Two components: the chord graph on 0..100 plus an isolated
        // ring on 100..120 — the tree must cover only the source's.
        let n = 120usize;
        let mut edges: Vec<(u32, u32)> = chord_edges(100)
            .into_iter()
            .filter(|&(u, v)| u < 100 && v < 100)
            .collect();
        for v in 100..(n as u32) {
            edges.push((v, if v + 1 < n as u32 { v + 1 } else { 100 }));
        }
        let csr = CsrGraph::from_edges(n, &edges);
        let reference = csr.bfs_tree(0);
        let plan = ShardPlan::uniform(n, 5);
        let mut sink = SpillSink::create(default_scratch_dir(), plan).expect("sink");
        for &(u, v) in &edges {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = ShardStore::Disk(sink.finalize().expect("finalize"));
        let tree = ShardedBfsTree::build(&disk, 0, default_scratch_dir()).expect("build");
        assert_eq!(tree.order(), reference.order());
        assert_eq!(tree.reachable(), 100);
    }

    #[test]
    fn directed_sink_keeps_one_orientation() {
        let dir = default_scratch_dir();
        let mut sink =
            SpillSink::create_directed(&dir, ShardPlan::uniform(6, 2)).expect("create sink");
        sink.push(0, 4).expect("push");
        sink.push(4, 2).expect("push");
        let disk = sink.finalize().expect("finalize");
        assert_eq!(disk.entry_count(), 2);
        let mut scratch = ShardScratch::new();
        let v0 = disk.load(0, &mut scratch).expect("load");
        assert_eq!(v0.targets_of(0), &[4]);
        assert_eq!(v0.targets_of(2), &[] as &[u32]);
        let v1 = disk.load(1, &mut scratch).expect("load");
        assert_eq!(v1.targets_of(4), &[2]);
    }

    #[test]
    fn truncated_segment_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(40, 2)).expect("create sink");
        for &(u, v) in &ring_edges(40) {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = sink.finalize().expect("finalize");
        // Cut the payload short (keep the 16-byte header intact).
        let seg = disk.dir.join("segment_0.bin");
        let len = fs::metadata(&seg).expect("metadata").len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open")
            .set_len(len - 8)
            .expect("truncate");
        let mut scratch = ShardScratch::new();
        match disk.load(0, &mut scratch) {
            Err(ShardError::SegmentTruncated { shard: 0 }) => {}
            other => panic!("expected SegmentTruncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_segment_header_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(40, 2)).expect("create sink");
        for &(u, v) in &ring_edges(40) {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = sink.finalize().expect("finalize");
        // Overwrite the row count in the header.
        let seg = disk.dir.join("segment_1.bin");
        let mut bytes = fs::read(&seg).expect("read");
        bytes[..8].copy_from_slice(&999u64.to_le_bytes());
        fs::write(&seg, &bytes).expect("write");
        let mut scratch = ShardScratch::new();
        match disk.load(1, &mut scratch) {
            Err(ShardError::SegmentCorrupt {
                shard: 1,
                found: 999,
                ..
            }) => {}
            other => panic!("expected SegmentCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn vanished_scratch_dir_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(20, 2)).expect("create sink");
        sink.push(0, 1).expect("push");
        let disk = sink.finalize().expect("finalize");
        fs::remove_dir_all(&dir).expect("remove scratch dir");
        let mut scratch = ShardScratch::new();
        match disk.load(0, &mut scratch) {
            Err(ShardError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }

    #[test]
    fn torn_spill_surfaces_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(10, 1)).expect("create sink");
        sink.push(0, 1).expect("push");
        // Tear the bucket: append half a record.
        sink.writers[0].write_all(&[0u8; 4]).expect("tear");
        match sink.finalize().map(|_| ()) {
            Err(ShardError::TornSpill { trailing: 4 }) => {}
            other => panic!("expected TornSpill, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bucket_overflow_in_finalize_is_a_typed_error() {
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, ShardPlan::uniform(10, 2)).expect("create sink");
        sink.push(0, 1).expect("push");
        // Fake an overflowing bucket count: writing 2^32 real edges in
        // a unit test is not an option.
        sink.half_edges[0] = <u32 as CsrWidth>::MAX_INDEX + 1;
        match sink.finalize().map(|_| ()) {
            Err(ShardError::Graph(CsrError::AdjacencyOverflow { .. })) => {}
            other => panic!("expected AdjacencyOverflow, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ram_store_views_match_disk_store_views() {
        let n = 80usize;
        let edges = ring_edges(n as u32);
        let csr = CsrGraph::from_edges(n, &edges);
        let plan = ShardPlan::uniform(n, 4);
        let ram = ShardStore::Ram(ShardedCsr::split(&csr, plan.clone()));
        let dir = default_scratch_dir();
        let mut sink = SpillSink::create(&dir, plan).expect("create sink");
        for &(u, v) in &edges {
            sink.push(u as u64, v as u64).expect("push");
        }
        let disk = ShardStore::Disk(sink.finalize().expect("finalize"));
        let mut s1 = ShardScratch::new();
        let mut s2 = ShardScratch::new();
        for s in 0..4 {
            let a = ram.view(s, &mut s1).expect("ram view");
            let b = disk.view(s, &mut s2).expect("disk view");
            assert_eq!(a.start(), b.start());
            assert_eq!(a.end(), b.end());
            for v in a.start()..a.end() {
                assert_eq!(a.targets_of(v), b.targets_of(v));
            }
        }
    }
}
