use std::fmt;

/// Identifier of a node in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices `0..n`; they are assigned by the
/// [`GraphBuilder`](crate::GraphBuilder) in construction order. The newtype
/// prevents accidental mixing of node ids with other integer quantities
/// (round numbers, hit counts, …).
///
/// # Example
///
/// ```
/// use randcast_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (graphs in this crate are
    /// bounded by `u32::MAX` nodes).
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(42).to_string(), "v42");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::from(7u32));
        assert_eq!(u32::from(NodeId::new(9)), 9);
    }
}
