//! Graphviz DOT export, for debugging and documentation figures.

use std::fmt::Write as _;

use crate::{Graph, NodeId};

/// Renders the graph in Graphviz DOT format.
///
/// `label` is applied to the graph; nodes are named `v0 … v{n−1}`.
///
/// # Example
///
/// ```
/// use randcast_graph::{dot, generators};
///
/// let g = generators::path(2);
/// let s = dot::to_dot(&g, "line");
/// assert!(s.contains("v0 -- v1"));
/// assert!(s.contains("graph line"));
/// ```
#[must_use]
pub fn to_dot(graph: &Graph, label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {label} {{");
    for v in graph.nodes() {
        let _ = writeln!(out, "    {v};");
    }
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "    {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

/// Renders the graph with nodes colored by a per-node class (e.g. BFS
/// layer, informed/uninformed) using a small fixed palette.
#[must_use]
pub fn to_dot_classed(graph: &Graph, label: &str, class: impl Fn(NodeId) -> usize) -> String {
    const PALETTE: [&str; 6] = [
        "lightblue",
        "lightgreen",
        "lightyellow",
        "lightpink",
        "lightgray",
        "orange",
    ];
    let mut out = String::new();
    let _ = writeln!(out, "graph {label} {{");
    let _ = writeln!(out, "    node [style=filled];");
    for v in graph.nodes() {
        let color = PALETTE[class(v) % PALETTE.len()];
        let _ = writeln!(out, "    {v} [fillcolor={color}];");
    }
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "    {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal;

    #[test]
    fn dot_lists_every_node_and_edge() {
        let g = generators::cycle(4);
        let s = to_dot(&g, "c4");
        for v in g.nodes() {
            assert!(s.contains(&format!("{v};")));
        }
        assert_eq!(s.matches(" -- ").count(), g.edge_count());
        assert!(s.starts_with("graph c4 {"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn classed_dot_colors_by_layer() {
        let g = generators::path(3);
        let d = traversal::bfs_distances(&g, g.node(0));
        let s = to_dot_classed(&g, "p3", |v| d[v.index()]);
        assert!(s.contains("v0 [fillcolor=lightblue];"));
        assert!(s.contains("v1 [fillcolor=lightgreen];"));
        assert!(s.contains("style=filled"));
    }
}
