use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while building a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// Number of nodes in the graph under construction.
        nodes: usize,
    },
    /// An edge connected a node to itself; the network model has no
    /// self-loops (a node always hears itself in neither model).
    SelfLoop {
        /// The node with the attempted self-loop.
        node: usize,
    },
    /// A graph must have at least one node (the source).
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "edge endpoint {node} out of range for {nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::Empty => write!(f, "graph must have at least one node"),
        }
    }
}

impl Error for GraphError {}

/// Incremental, validating builder for [`Graph`].
///
/// Duplicate edges are merged silently (the network model is a simple
/// graph); self-loops and out-of-range endpoints are rejected by
/// [`finish`](GraphBuilder::finish).
///
/// # Example
///
/// ```
/// use randcast_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1).edge(1, 2).edge(0, 1); // duplicate is fine
/// let g = b.finish().unwrap();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `nodes` nodes and no edges.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        GraphBuilder {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`. Returns `self` for chaining.
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge in `iter`.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for zero nodes,
    /// [`GraphError::SelfLoop`] for an edge `{u, u}` and
    /// [`GraphError::NodeOutOfRange`] for endpoints `>= nodes`.
    pub fn finish(&self) -> Result<Graph, GraphError> {
        if self.nodes == 0 {
            return Err(GraphError::Empty);
        }
        for &(u, v) in &self.edges {
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            for e in [u, v] {
                if e >= self.nodes {
                    return Err(GraphError::NodeOutOfRange {
                        node: e,
                        nodes: self.nodes,
                    });
                }
            }
        }
        // Deduplicate into sorted normalized edge list.
        let mut norm: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        norm.sort_unstable();
        norm.dedup();

        // CSR layout.
        let mut degree = vec![0usize; self.nodes];
        for &(u, v) in &norm {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.nodes + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![NodeId::default(); acc];
        for &(u, v) in &norm {
            adjacency[cursor[u]] = NodeId::new(v);
            cursor[u] += 1;
            adjacency[cursor[v]] = NodeId::new(u);
            cursor[v] += 1;
        }
        // Neighbor lists sorted for determinism.
        for u in 0..self.nodes {
            adjacency[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Ok(Graph {
            offsets,
            adjacency,
            edge_count: norm.len(),
        })
    }
}

/// An undirected simple graph in compressed sparse row (CSR) form.
///
/// Nodes are identified by dense [`NodeId`]s `0..n`. The representation is
/// immutable after construction via [`GraphBuilder`], which keeps every
/// simulation run free of accidental topology mutation.
///
/// # Example
///
/// ```
/// use randcast_graph::generators;
///
/// let g = generators::star(4); // center v0 plus 4 leaves
/// assert_eq!(g.node_count(), 5);
/// assert_eq!(g.degree(g.node(0)), 4);
/// assert_eq!(g.max_degree(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    /// `offsets[u]..offsets[u+1]` indexes `adjacency` for node `u`.
    offsets: Vec<usize>,
    adjacency: Vec<NodeId>,
    edge_count: usize,
}

impl Graph {
    /// Assembles a graph from already-validated CSR parts: `offsets`
    /// has `n + 1` entries, `adjacency` rows are sorted, deduplicated,
    /// self-loop free and symmetric, and `edge_count` is the undirected
    /// edge count. Used by the lossless [`CsrGraph`](crate::CsrGraph)
    /// conversion, which upholds those invariants by construction.
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        adjacency: Vec<NodeId>,
        edge_count: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), adjacency.len());
        Graph {
            offsets,
            adjacency,
            edge_count,
        }
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The [`NodeId`] for dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.node_count()`.
    #[must_use]
    pub fn node(&self, index: usize) -> NodeId {
        assert!(index < self.node_count(), "node index out of range");
        NodeId::new(index)
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// The sorted neighbor list of `v`.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.adjacency[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The degree of `v`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// The maximum degree `Δ` of the graph — the parameter of the radio
    /// feasibility threshold `p < (1 − p)^{Δ+1}` (Theorem 2.4).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|i| self.offsets[i + 1] - self.offsets[i])
            .max()
            .unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(GraphBuilder::new(0).finish(), Err(GraphError::Empty));
    }

    #[test]
    fn builder_rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.edge(1, 1);
        assert_eq!(b.finish(), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 2);
        assert_eq!(
            b.finish(),
            Err(GraphError::NodeOutOfRange { node: 2, nodes: 2 })
        );
    }

    #[test]
    fn duplicate_and_reversed_edges_merge() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).edge(1, 0).edge(0, 1).edge(2, 1);
        let g = b.finish().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(g.node(1)), 2);
        assert!(g.has_edge(g.node(0), g.node(1)));
        assert!(!g.has_edge(g.node(0), g.node(2)));
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(5);
        b.edge(2, 4).edge(2, 0).edge(2, 3).edge(2, 1);
        let g = b.finish().unwrap();
        let nb: Vec<usize> = g.neighbors(g.node(2)).iter().map(|v| v.index()).collect();
        assert_eq!(nb, vec![0, 1, 3, 4]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(1, 2).edge(2, 3).edge(3, 0);
        let g = b.finish().unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn single_node_graph_is_valid() {
        let g = GraphBuilder::new(1).finish().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, nodes: 3 };
        assert!(e.to_string().contains('9'));
        assert!(GraphError::SelfLoop { node: 2 }.to_string().contains('2'));
        assert!(!GraphError::Empty.to_string().is_empty());
    }
}
