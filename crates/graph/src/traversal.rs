//! Breadth-first traversal utilities: distances, radius, diameter,
//! connectivity.
//!
//! The paper measures broadcast time against `D`, "the radius of `G` with
//! respect to `s`, namely the largest distance from `s` to any node in `G`"
//! — that quantity is [`radius_from`].

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Distance marker for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: usize = usize::MAX;

/// Single-source BFS distances from `source`.
///
/// Returns a vector indexed by node id; unreachable nodes get
/// [`UNREACHABLE`].
///
/// # Example
///
/// ```
/// use randcast_graph::{generators, traversal};
///
/// let g = generators::path(5); // v0 - v1 - ... - v5
/// let d = traversal::bfs_distances(&g, g.node(0));
/// assert_eq!(d[5], 5);
/// ```
#[must_use]
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in graph.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The paper's `D`: the largest distance from `source` to any node.
///
/// # Panics
///
/// Panics if some node is unreachable from `source`; the broadcast problem
/// is only defined on graphs connected to the source.
#[must_use]
pub fn radius_from(graph: &Graph, source: NodeId) -> usize {
    bfs_distances(graph, source)
        .into_iter()
        .inspect(|&d| {
            assert_ne!(d, UNREACHABLE, "graph is not connected to the source");
        })
        .max()
        .expect("graph has at least one node")
}

/// The largest distance from `source` to any node *reachable* from it.
///
/// Unlike [`radius_from`], this is defined on disconnected graphs (the
/// almost-complete broadcast regime runs on the source's component and
/// measures the informed fraction); on connected graphs the two agree.
#[must_use]
pub fn reachable_radius(graph: &Graph, source: NodeId) -> usize {
    bfs_distances(graph, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .expect("graph has at least one node")
}

/// Number of nodes reachable from `source` (including `source` itself).
#[must_use]
pub fn reachable_count(graph: &Graph, source: NodeId) -> usize {
    bfs_distances(graph, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .count()
}

/// Whether every node is reachable from node 0 (and hence, by symmetry of
/// undirected graphs, the graph is connected).
#[must_use]
pub fn is_connected(graph: &Graph) -> bool {
    bfs_distances(graph, graph.node(0))
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// The diameter: the maximum over sources of [`radius_from`].
///
/// Runs one BFS per node (`O(n · m)`); intended for the moderate graph
/// sizes used in experiments.
///
/// # Panics
///
/// Panics if the graph is disconnected.
#[must_use]
pub fn diameter(graph: &Graph) -> usize {
    graph
        .nodes()
        .map(|s| radius_from(graph, s))
        .max()
        .expect("graph has at least one node")
}

/// Nodes grouped by BFS distance from `source`: `layers()[d]` holds every
/// node at distance exactly `d`, each layer sorted by node id.
///
/// Layer 0 is `[source]`. Unreachable nodes are absent.
#[must_use]
pub fn bfs_layers(graph: &Graph, source: NodeId) -> Vec<Vec<NodeId>> {
    let dist = bfs_distances(graph, source);
    let depth = dist
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .max()
        .copied()
        .unwrap_or(0);
    let mut layers = vec![Vec::new(); depth + 1];
    for (i, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE {
            layers[d].push(NodeId::new(i));
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn path_distances() {
        let g = generators::path(4);
        let d = bfs_distances(&g, g.node(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(radius_from(&g, g.node(0)), 4);
        assert_eq!(radius_from(&g, g.node(2)), 2);
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn cycle_radius() {
        let g = generators::cycle(6);
        assert_eq!(radius_from(&g, g.node(0)), 3);
        assert_eq!(diameter(&g), 3);
    }

    #[test]
    fn star_is_radius_one_from_center() {
        let g = generators::star(7);
        assert_eq!(radius_from(&g, g.node(0)), 1);
        assert_eq!(radius_from(&g, g.node(1)), 2);
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(2, 3);
        let g = b.finish().unwrap();
        assert!(!is_connected(&g));
        let d = bfs_distances(&g, g.node(0));
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn radius_panics_on_disconnected() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1);
        let g = b.finish().unwrap();
        let _ = radius_from(&g, g.node(0));
    }

    #[test]
    fn reachable_radius_on_disconnected_graph() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2).edge(3, 4);
        let g = b.finish().unwrap();
        assert_eq!(reachable_radius(&g, g.node(0)), 2);
        assert_eq!(reachable_count(&g, g.node(0)), 3);
        assert_eq!(reachable_radius(&g, g.node(3)), 1);
        assert_eq!(reachable_count(&g, g.node(3)), 2);
        // Agrees with radius_from on connected graphs.
        let p = generators::path(6);
        assert_eq!(reachable_radius(&p, p.node(0)), radius_from(&p, p.node(0)));
        assert_eq!(reachable_count(&p, p.node(0)), 7);
    }

    #[test]
    fn layers_partition_nodes() {
        let g = generators::grid(3, 3);
        let layers = bfs_layers(&g, g.node(0));
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, g.node_count());
        assert_eq!(layers[0], vec![g.node(0)]);
        // Every node in layer d has a neighbor in layer d-1.
        let dist = bfs_distances(&g, g.node(0));
        for (d, layer) in layers.iter().enumerate().skip(1) {
            for &v in layer {
                assert!(g.neighbors(v).iter().any(|&u| dist[u.index()] == d - 1));
            }
        }
    }

    #[test]
    fn hypercube_radius_is_dimension() {
        let g = generators::hypercube(4);
        assert_eq!(radius_from(&g, g.node(0)), 4);
        assert_eq!(g.max_degree(), 4);
    }
}
