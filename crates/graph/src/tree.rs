use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// A spanning tree of a [`Graph`], rooted at the broadcast source.
///
/// The paper's algorithms (`Simple-Omission`, `Simple-Malicious`, the
/// flooding and Kučera-based schemes of Section 3) all operate on a
/// spanning tree "constructed centrally in a preprocessing stage". This
/// type captures that preprocessing output:
///
/// * `parent(v)` — the node from which `v` receives the source message,
/// * `children(v)` — the nodes `v` relays to,
/// * [`level_order`](SpanningTree::level_order) — the enumeration
///   `v1, …, vn` "ordered by nondecreasing distance from `s` in `T`"
///   (Section 2.1),
/// * [`branches`](SpanningTree::branches) — root-to-leaf paths, the "lines"
///   on which the Diks–Pelc and Kučera line algorithms run (Section 3).
///
/// # Example
///
/// ```
/// use randcast_graph::{generators, SpanningTree};
///
/// let g = generators::grid(3, 3);
/// let t = SpanningTree::bfs(&g, g.node(0));
/// assert_eq!(t.root(), g.node(0));
/// assert_eq!(t.parent(t.root()), None);
/// assert_eq!(t.depth(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanningTree {
    root: NodeId,
    /// `parent[v] == v` encodes the root.
    parent: Vec<NodeId>,
    children: Vec<Vec<NodeId>>,
    level: Vec<usize>,
    depth: usize,
}

impl SpanningTree {
    /// Builds the breadth-first spanning tree of `graph` rooted at `root`.
    ///
    /// BFS trees minimize every node's depth, so the tree's depth equals
    /// the paper's `D` (the radius of the graph w.r.t. the source).
    /// Neighbor exploration order is by node id, making the tree
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if some node is unreachable from `root`.
    #[must_use]
    pub fn bfs(graph: &Graph, root: NodeId) -> Self {
        let n = graph.node_count();
        let mut parent = vec![None::<NodeId>; n];
        let mut level = vec![usize::MAX; n];
        let mut children = vec![Vec::new(); n];
        let mut queue = VecDeque::new();
        level[root.index()] = 0;
        parent[root.index()] = Some(root);
        queue.push_back(root);
        let mut depth = 0;
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if parent[v.index()].is_none() {
                    parent[v.index()] = Some(u);
                    level[v.index()] = level[u.index()] + 1;
                    depth = depth.max(level[v.index()]);
                    children[u.index()].push(v);
                    queue.push_back(v);
                }
            }
        }
        let parent: Vec<NodeId> = parent
            .into_iter()
            .map(|p| p.expect("graph is not connected to the root"))
            .collect();
        SpanningTree {
            root,
            parent,
            children,
            level,
            depth,
        }
    }

    /// The root (broadcast source) of the tree.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// The parent of `v` in the tree; `None` for the root.
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.index()];
        (p != v).then_some(p)
    }

    /// The children of `v` (in node-id order).
    #[must_use]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// The depth (level) of `v`: distance from the root along the tree.
    #[must_use]
    pub fn level(&self, v: NodeId) -> usize {
        self.level[v.index()]
    }

    /// The tree depth: the maximum level; for a BFS tree this equals the
    /// paper's `D`.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether `v` is a leaf (no children).
    #[must_use]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children(v).is_empty()
    }

    /// The paper's enumeration `v1, …, vn`: all nodes ordered by
    /// nondecreasing level (ties broken by node id). `level_order()[0]` is
    /// the root.
    #[must_use]
    pub fn level_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.node_count()).map(NodeId::new).collect();
        order.sort_by_key(|v| (self.level[v.index()], v.index()));
        order
    }

    /// All root-to-leaf paths ("branches"), each starting at the root.
    ///
    /// The Section 3 algorithms run a line algorithm along every branch in
    /// parallel; adding dummy nodes to equalize branch lengths is the
    /// paper's analysis device and is not needed at execution time.
    #[must_use]
    pub fn branches(&self) -> Vec<Vec<NodeId>> {
        let mut result = Vec::new();
        let mut stack = vec![(self.root, vec![self.root])];
        while let Some((v, path)) = stack.pop() {
            if self.is_leaf(v) {
                result.push(path);
                continue;
            }
            for &c in self.children(v).iter().rev() {
                let mut next = path.clone();
                next.push(c);
                stack.push((c, next));
            }
        }
        result
    }

    /// The path from the root to `v`, inclusive.
    #[must_use]
    pub fn path_from_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_tree_on_path_is_the_path() {
        let g = generators::path(4);
        let t = SpanningTree::bfs(&g, g.node(0));
        assert_eq!(t.depth(), 4);
        for i in 1..=4 {
            assert_eq!(t.parent(g.node(i)), Some(g.node(i - 1)));
        }
        assert_eq!(t.children(g.node(2)), &[g.node(3)]);
        assert!(t.is_leaf(g.node(4)));
    }

    #[test]
    fn level_order_respects_levels() {
        let g = generators::grid(3, 3);
        let t = SpanningTree::bfs(&g, g.node(0));
        let order = t.level_order();
        assert_eq!(order[0], t.root());
        for w in order.windows(2) {
            assert!(t.level(w[0]) <= t.level(w[1]));
        }
        assert_eq!(order.len(), g.node_count());
    }

    #[test]
    fn path_from_root_is_consistent() {
        let g = generators::balanced_tree(2, 3);
        let t = SpanningTree::bfs(&g, g.node(0));
        for v in g.nodes() {
            let p = t.path_from_root(v);
            assert_eq!(p[0], t.root());
            assert_eq!(*p.last().unwrap(), v);
            assert_eq!(p.len(), t.level(v) + 1);
            for w in p.windows(2) {
                assert_eq!(t.parent(w[1]), Some(w[0]));
            }
        }
    }

    #[test]
    fn branches_cover_all_leaves() {
        let g = generators::balanced_tree(3, 2);
        let t = SpanningTree::bfs(&g, g.node(0));
        let branches = t.branches();
        let leaves: usize = g.nodes().filter(|&v| t.is_leaf(v)).count();
        assert_eq!(branches.len(), leaves);
        for b in &branches {
            assert_eq!(b[0], t.root());
            assert!(t.is_leaf(*b.last().unwrap()));
            for w in b.windows(2) {
                assert_eq!(t.parent(w[1]), Some(w[0]));
            }
        }
    }

    #[test]
    fn star_tree_depth_one() {
        let g = generators::star(5);
        let t = SpanningTree::bfs(&g, g.node(0));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.children(g.node(0)).len(), 5);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn bfs_panics_on_disconnected() {
        let mut b = crate::GraphBuilder::new(3);
        b.edge(0, 1);
        let g = b.finish().unwrap();
        let _ = SpanningTree::bfs(&g, g.node(0));
    }
}
