//! Graph substrate for the `randcast` project.
//!
//! This crate provides the (undirected, simple, connected) network graphs on
//! which the broadcasting protocols of Pelc & Peleg, *"Feasibility and
//! complexity of broadcasting with random transmission failures"*
//! (PODC 2005 / TCS 2007), operate:
//!
//! * [`Graph`] — a compact adjacency-list representation with a validating
//!   [`GraphBuilder`],
//! * [`CsrGraph`] / [`CsrTree`] — the flat `u32` CSR substrate shared by
//!   the large-`n` fast-path engines (width-parameterized as [`Csr`] over
//!   a [`CsrWidth`] word), with lossless `Graph ↔ CsrGraph` conversion
//!   and direct construction from edge lists (the memory-lean path the
//!   scalable generators use),
//! * [`shard`] — node-range shard plans, views, and the out-of-core
//!   spill/segment store that carry one trial to `n = 10⁸` under a fixed
//!   RAM budget,
//! * [`generators`] — the graph families used throughout the paper's analysis
//!   (paths, stars, grids, hypercubes, random trees, …) including the
//!   three-layer lower-bound construction of Theorem 3.3
//!   ([`generators::lower_bound_graph`]),
//! * [`traversal`] — BFS distances, source radius (the paper's `D`),
//!   diameter and connectivity,
//! * [`SpanningTree`] — rooted BFS spanning trees with the level-order
//!   enumeration `v1..vn` and root-to-leaf branches used by the algorithms
//!   of Sections 2 and 3,
//! * [`dot`] — Graphviz export for debugging and figures.
//!
//! # Example
//!
//! ```
//! use randcast_graph::{generators, traversal, SpanningTree};
//!
//! let g = generators::grid(4, 5);
//! let source = g.node(0);
//! assert!(traversal::is_connected(&g));
//!
//! let tree = SpanningTree::bfs(&g, source);
//! assert_eq!(tree.depth(), traversal::radius_from(&g, source));
//! // The paper's enumeration v1..vn respects BFS levels:
//! let order = tree.level_order();
//! assert_eq!(order[0], source);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod graph;
mod node;
mod tree;

pub mod dot;
pub mod generators;
pub mod shard;
pub mod traversal;

pub use csr::{Csr, CsrError, CsrGraph, CsrGraph64, CsrTree, CsrWidth};
pub use graph::{Graph, GraphBuilder, GraphError};
pub use node::NodeId;
pub use tree::SpanningTree;
