//! Flat `u32` compressed-sparse-row adjacency — the shared simulation
//! substrate of the large-`n` fast-path engines.
//!
//! [`Graph`] already stores CSR internally, but with `usize` offsets and
//! a validating, edge-list-buffering builder that was designed for
//! correctness at experiment sizes, not for `n = 10⁶` construction.
//! [`CsrGraph`] is the lean sibling: `u32` offsets and targets, built
//! either losslessly from a [`Graph`] (both directions preserve
//! adjacency exactly) or *directly* from a `(u32, u32)` edge list by
//! counting-sort — the path the scalable generators
//! ([`crate::generators::gnp_csr`] and friends) use to skip the
//! 16-byte-per-edge builder buffer and roughly halve peak build memory.
//!
//! [`CsrTree`] is the BFS spanning structure the kernels share: the
//! level order of the source's component plus per-parent child lists in
//! one flat CSR, computed without touching nodes outside the component
//! (so disconnected graphs are fine — the almost-complete broadcast
//! regime).

use crate::{Graph, NodeId};

/// An undirected simple graph as flat `u32` CSR arrays.
///
/// Node ids are dense `0..n`; `targets[offsets[v]..offsets[v+1]]` are
/// `v`'s neighbors in ascending order. Graphs are bounded by `u32`
/// node ids and `u32::MAX` adjacency entries (4 × 10⁹ directed edges —
/// far beyond every workload here).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CsrGraph {
    /// `n + 1` row boundaries into `targets`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists (each undirected edge appears
    /// twice).
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds the CSR adjacency for the undirected simple graph on `n`
    /// nodes with the given edges, by counting sort: degree pass,
    /// prefix sums, scatter, then per-row sort + dedup. Duplicate edges
    /// merge; peak memory is the 8-byte edge list plus the arrays
    /// themselves.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or doesn't fit `u32`, on self-loops, or on
    /// endpoints `>= n`.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        assert!(n >= 1, "graph must have at least one node");
        let n32 = u32::try_from(n).expect("node count exceeds u32::MAX");
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            assert!(u != v, "self-loop at node {u}");
            assert!(u < n32 && v < n32, "edge endpoint out of range");
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc = acc.checked_add(d).expect("adjacency exceeds u32::MAX");
            offsets.push(acc);
        }
        let mut targets = vec![0u32; acc as usize];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sort each row, drop duplicate edges, and compact in place.
        let mut write = 0usize;
        let mut compact_offsets = Vec::with_capacity(n + 1);
        compact_offsets.push(0u32);
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[start..end].sort_unstable();
            let mut prev: Option<u32> = None;
            for i in start..end {
                let t = targets[i];
                if prev != Some(t) {
                    targets[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            compact_offsets.push(write as u32);
        }
        targets.truncate(write);
        CsrGraph {
            offsets: compact_offsets,
            targets,
        }
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// The sorted neighbor list of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbors_of(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The degree of node `v`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors_of(v).len()
    }

    /// The row-boundary array (`n + 1` entries).
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The concatenated neighbor lists.
    #[must_use]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Consumes the graph into its `(offsets, targets)` CSR arrays, so
    /// engines that own their adjacency can take it without copying.
    #[must_use]
    pub fn into_raw_parts(self) -> (Vec<u32>, Vec<u32>) {
        (self.offsets, self.targets)
    }

    /// The BFS spanning structure rooted at `source`: level order and
    /// per-parent child lists over the source's component only, so the
    /// graph may be disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    #[must_use]
    pub fn bfs_tree(&self, source: u32) -> CsrTree {
        let n = self.node_count();
        assert!((source as usize) < n, "source out of range");
        const UNSET: u32 = u32::MAX;
        let mut parent = vec![UNSET; n];
        let mut level = vec![0u32; n];
        let mut order: Vec<u32> = Vec::new();
        parent[source as usize] = source;
        order.push(source);
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &v in self.neighbors_of(u as usize) {
                if parent[v as usize] == UNSET {
                    parent[v as usize] = u;
                    level[v as usize] = level[u as usize] + 1;
                    order.push(v);
                }
            }
        }
        // The paper's enumeration `v1..vn`: nondecreasing level, ties
        // broken by node id (matching `SpanningTree::level_order`).
        order.sort_unstable_by_key(|&v| (level[v as usize], v));
        let mut degree = vec![0u32; n];
        for (v, &p) in parent.iter().enumerate() {
            if p != UNSET && p as usize != v {
                degree[p as usize] += 1;
            }
        }
        let mut child_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        child_offsets.push(0);
        for &d in &degree {
            acc += d;
            child_offsets.push(acc);
        }
        let mut children = vec![0u32; acc as usize];
        let mut cursor = child_offsets.clone();
        // Children in BFS-discovery order (== ascending node id per
        // parent, since neighbor rows are sorted).
        for &v in &order {
            let p = parent[v as usize];
            if p != v {
                children[cursor[p as usize] as usize] = v;
                cursor[p as usize] += 1;
            }
        }
        CsrTree {
            order,
            child_offsets,
            children,
        }
    }
}

impl From<&Graph> for CsrGraph {
    /// Lossless structural copy — [`Graph`] is CSR internally with the
    /// same sorted-row invariant, so no re-sorting happens.
    fn from(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for v in graph.nodes() {
            targets.extend(graph.neighbors(v).iter().map(|&t| u32::from(t)));
            let len = u32::try_from(targets.len()).expect("adjacency exceeds u32::MAX");
            offsets.push(len);
        }
        CsrGraph { offsets, targets }
    }
}

impl From<&CsrGraph> for Graph {
    /// Lossless widening copy: adjacency rows are already sorted and
    /// deduplicated, so the conversion is two linear passes.
    fn from(csr: &CsrGraph) -> Self {
        let offsets: Vec<usize> = csr.offsets.iter().map(|&o| o as usize).collect();
        let adjacency: Vec<NodeId> = csr.targets.iter().map(|&t| NodeId::from(t)).collect();
        let edge_count = csr.edge_count();
        Graph::from_csr_parts(offsets, adjacency, edge_count)
    }
}

/// The BFS spanning structure of one source component: the paper's
/// `v1..vn` level-order enumeration plus flat per-parent child lists —
/// everything the fast broadcast kernels need from a spanning tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CsrTree {
    /// The source component in the paper's enumeration order:
    /// nondecreasing BFS level, ties broken by node id (`order[0]` is
    /// the source). Nodes outside the component do not appear.
    order: Vec<u32>,
    /// `n + 1` row boundaries into `children`, indexed by graph node id.
    child_offsets: Vec<u32>,
    /// Concatenated child lists, ascending per parent.
    children: Vec<u32>,
}

impl CsrTree {
    /// The source component in nondecreasing-level order (ties by node
    /// id) — the paper's `v1..vn` enumeration restricted to reachable
    /// nodes.
    #[must_use]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of nodes reachable from the source (component size).
    #[must_use]
    pub fn component_size(&self) -> usize {
        self.order.len()
    }

    /// The children of node `v` (empty for leaves and for nodes outside
    /// the source's component).
    #[must_use]
    pub fn children_of(&self, v: usize) -> &[u32] {
        &self.children[self.child_offsets[v] as usize..self.child_offsets[v + 1] as usize]
    }

    /// Consumes the tree into its `(child_offsets, children)` CSR
    /// arrays — the transmission-target structure of tree-based
    /// broadcast kernels.
    #[must_use]
    pub fn into_children_csr(self) -> (Vec<u32>, Vec<u32>) {
        (self.child_offsets, self.children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, SpanningTree};

    #[test]
    fn from_edges_sorts_and_merges_duplicates() {
        let csr = CsrGraph::from_edges(4, &[(2, 0), (0, 1), (1, 0), (3, 1), (0, 2)]);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(csr.neighbors_of(0), &[1, 2]);
        assert_eq!(csr.neighbors_of(1), &[0, 3]);
        assert_eq!(csr.neighbors_of(2), &[0]);
        assert_eq!(csr.neighbors_of(3), &[1]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_edges_rejects_self_loops() {
        let _ = CsrGraph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        let _ = CsrGraph::from_edges(3, &[(0, 3)]);
    }

    #[test]
    fn graph_round_trip_preserves_adjacency() {
        for g in [
            generators::grid(5, 7),
            generators::star(9),
            generators::lower_bound_graph(4),
            generators::path(0),
        ] {
            let csr = CsrGraph::from(&g);
            assert_eq!(csr.node_count(), g.node_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            for v in g.nodes() {
                let expect: Vec<u32> = g.neighbors(v).iter().map(|&t| u32::from(t)).collect();
                assert_eq!(csr.neighbors_of(v.index()), expect.as_slice());
            }
            let back = Graph::from(&csr);
            assert_eq!(back, g, "round trip must be lossless");
        }
    }

    #[test]
    fn bfs_tree_matches_spanning_tree() {
        let g = generators::grid(4, 6);
        let csr = CsrGraph::from(&g);
        let tree = csr.bfs_tree(0);
        let reference = SpanningTree::bfs(&g, g.node(0));
        let ref_order: Vec<u32> = reference
            .level_order()
            .iter()
            .map(|&v| u32::from(v))
            .collect();
        assert_eq!(tree.order(), ref_order.as_slice());
        assert_eq!(tree.component_size(), g.node_count());
        for v in g.nodes() {
            let expect: Vec<u32> = reference
                .children(v)
                .iter()
                .map(|&c| u32::from(c))
                .collect();
            assert_eq!(tree.children_of(v.index()), expect.as_slice(), "{v}");
        }
    }

    #[test]
    fn bfs_tree_covers_only_the_source_component() {
        // Triangle {0,1,2} plus the far edge {3,4}.
        let csr = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let tree = csr.bfs_tree(0);
        assert_eq!(tree.component_size(), 3);
        assert_eq!(tree.order(), &[0, 1, 2]);
        assert_eq!(tree.children_of(0), &[1, 2]);
        assert!(tree.children_of(3).is_empty());
        let far = csr.bfs_tree(3);
        assert_eq!(far.order(), &[3, 4]);
        assert_eq!(far.children_of(3), &[4]);
        let (offsets, children) = far.into_children_csr();
        assert_eq!(offsets.len(), 6);
        assert_eq!(children, vec![4]);
    }

    #[test]
    fn single_node_graph() {
        let csr = CsrGraph::from_edges(1, &[]);
        assert_eq!(csr.node_count(), 1);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.neighbors_of(0).is_empty());
        let tree = csr.bfs_tree(0);
        assert_eq!(tree.component_size(), 1);
    }
}
